//! The discrete-event simulated issue loop.
//!
//! Runs the full LoadGen rulebook against a [`SimSut`] under virtual time:
//! identical scheduling, seeding, recording, and validation logic as a
//! wall-clock run, but a 270,336-query server experiment completes in
//! milliseconds. This is what makes reproducing the paper's evaluation
//! tractable on a laptop (the original submissions ran for hours per result).

use crate::config::{TestMode, TestSettings};
use crate::instrument::Instruments;
use crate::journal::{
    settings_digest, Checkpoint, JournalConfig, JournaledRun, RunJournal, RunMeta,
};
use crate::qsl::QuerySampleLibrary;
use crate::query::{Query, QueryCompletion};
use crate::record::{LoggedResponse, QueryRecord, Recorder};
use crate::replay::ReplaySchedule;
use crate::results::{LatencyStats, ScenarioMetric, TestResult};
use crate::scenario::Scenario;
use crate::schedule::build_query;
use crate::sut::{SimSut, SutReaction};
use crate::time::Nanos;
use crate::validate::{check_run, overlatency_fraction, percentile_latency};
use crate::LoadGenError;
use mlperf_stats::dist::PoissonProcess;
use mlperf_stats::Rng64;
use mlperf_trace::profile_span;
use mlperf_trace::{MetricsRegistry, MetricsSnapshot, TimeSeriesSampler, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hard cap on processed events, guarding against runaway SUTs.
const MAX_EVENTS: u64 = 200_000_000;

/// Everything a run produces: the scored result plus raw logs.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scored, validity-checked result.
    pub result: TestResult,
    /// Per-query records in issue order.
    pub records: Vec<QueryRecord>,
    /// Logged response payloads (all of them in accuracy mode; a sampled
    /// subset in performance mode when enabled).
    pub accuracy_log: Vec<LoggedResponse>,
    /// Counters and latency histograms gathered while tracing; `None` when
    /// the run used the no-op sink.
    pub metrics: Option<MetricsSnapshot>,
}

#[derive(Debug)]
enum EventKind {
    Arrival,
    Wakeup,
    Completion(QueryCompletion),
}

#[derive(Debug)]
struct Event {
    at: Nanos,
    order: u8,
    seq: u64,
    kind: EventKind,
}

impl Event {
    fn key(&self) -> (Nanos, u8, u64) {
        (self.at, self.order, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct Sim<'a, S: SimSut + ?Sized> {
    sut: &'a mut S,
    heap: BinaryHeap<Reverse<Event>>,
    recorder: Recorder,
    acc_rng: Rng64,
    log_probability: f64,
    seq: u64,
    events_processed: u64,
    sink: &'a dyn TraceSink,
    metrics: Option<&'a MetricsRegistry>,
    sampler: Option<&'a TimeSeriesSampler>,
}

impl<'a, S: SimSut + ?Sized> Sim<'a, S> {
    fn new(
        settings: &TestSettings,
        sut: &'a mut S,
        sink: &'a dyn TraceSink,
        metrics: Option<&'a MetricsRegistry>,
        sampler: Option<&'a TimeSeriesSampler>,
    ) -> Self {
        let log_probability = match settings.mode {
            TestMode::AccuracyOnly => 1.0,
            TestMode::PerformanceOnly => settings.accuracy_log_probability,
        };
        Self {
            sut,
            heap: BinaryHeap::new(),
            recorder: Recorder::new(),
            acc_rng: Rng64::new(settings.seeds.accuracy_seed),
            log_probability,
            seq: 0,
            events_processed: 0,
            sink,
            metrics,
            sampler,
        }
    }

    fn push(&mut self, at: Nanos, order: u8, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            at,
            order,
            seq: self.seq,
            kind,
        }));
    }

    fn schedule_arrival(&mut self, at: Nanos) {
        self.push(at, 0, EventKind::Arrival);
    }

    fn pop(&mut self) -> Result<Option<Event>, LoadGenError> {
        self.events_processed += 1;
        if self.events_processed > MAX_EVENTS {
            return Err(LoadGenError::SutProtocol(format!(
                "event budget of {MAX_EVENTS} exhausted; SUT appears to loop"
            )));
        }
        let event = self.heap.pop().map(|Reverse(e)| e);
        // Sample *before* the event is processed, so each row reflects the
        // state strictly before its boundary.
        if let (Some(sampler), Some(metrics), Some(event)) =
            (self.sampler, self.metrics, event.as_ref())
        {
            sampler.advance_to(event.at.as_nanos(), metrics);
        }
        Ok(event)
    }

    fn issue(&mut self, query: Query) -> Result<(), LoadGenError> {
        profile_span!("loadgen/issue");
        let now = query.scheduled_at;
        self.recorder.record_issue(&query, now)?;
        if self.sink.enabled() {
            self.sink.record(
                now.as_nanos(),
                &TraceEvent::QueryIssued {
                    query_id: query.id,
                    sample_count: query.sample_count(),
                    // Simulated issue happens exactly on schedule.
                    delay_ns: 0,
                },
            );
        }
        if let Some(m) = self.metrics {
            m.incr("queries_issued", 1);
            m.incr("samples_issued", query.sample_count() as u64);
        }
        let reaction = self.sut.on_query(now, &query);
        if self.sink.enabled() {
            self.sink.record(
                now.as_nanos(),
                &TraceEvent::QuerySent { query_id: query.id },
            );
        }
        self.apply(now, reaction)
    }

    fn apply(&mut self, now: Nanos, reaction: SutReaction) -> Result<(), LoadGenError> {
        for completion in reaction.completions {
            if completion.finished_at < now {
                return Err(LoadGenError::SutProtocol(format!(
                    "query {} completion stamped {} in the past of {}",
                    completion.query_id, completion.finished_at, now
                )));
            }
            self.push(completion.finished_at, 2, EventKind::Completion(completion));
        }
        if let Some(at) = reaction.wakeup_at {
            if at < now {
                return Err(LoadGenError::SutProtocol(format!(
                    "wakeup requested at {at}, before now {now}"
                )));
            }
            self.push(at, 1, EventKind::Wakeup);
        }
        Ok(())
    }

    fn wakeup(&mut self, now: Nanos) -> Result<(), LoadGenError> {
        profile_span!("loadgen/wakeup");
        let reaction = self.sut.on_wakeup(now);
        self.apply(now, reaction)
    }

    /// Re-sends a checkpoint's outstanding query to the (reset) SUT
    /// without touching the recorder or the detail log: the issue already
    /// happened before the crash and is already recorded; only the SUT's
    /// side of it needs to run again.
    fn reissue(&mut self, query: Query) -> Result<(), LoadGenError> {
        let now = query.scheduled_at;
        // The resumed process's detail log starts empty, so the re-issue
        // is re-stamped: every completion the log will carry then has a
        // matching issue, keeping the TEST06 completeness audit green on
        // resumed logs.
        if self.sink.enabled() {
            self.sink.record(
                now.as_nanos(),
                &TraceEvent::QueryIssued {
                    query_id: query.id,
                    sample_count: query.sample_count(),
                    delay_ns: 0,
                },
            );
        }
        let reaction = self.sut.on_query(now, &query);
        self.apply(now, reaction)
    }

    /// Restores the checkpointed recorder and accuracy RNG, then
    /// re-issues every outstanding query (id order) so their completions
    /// re-enter the event heap.
    fn restore(&mut self, cp: &Checkpoint) -> Result<(), LoadGenError> {
        self.acc_rng = Rng64::from_state(cp.acc_rng);
        let snapshot = cp.recorder.clone();
        let outstanding = snapshot.outstanding_queries();
        self.recorder = Recorder::restore(snapshot);
        for query in outstanding {
            self.reissue(query)?;
        }
        Ok(())
    }

    fn complete(&mut self, completion: &QueryCompletion) -> Result<(), LoadGenError> {
        profile_span!("loadgen/complete");
        let p = self.log_probability;
        let rng = &mut self.acc_rng;
        let logged_before = self.recorder.accuracy_log().len();
        let latency = self
            .recorder
            .record_completion(completion, |_| p > 0.0 && rng.next_bool(p))?;
        if self.sink.enabled() {
            if completion.error {
                self.sink.record(
                    completion.finished_at.as_nanos(),
                    &TraceEvent::QueryErrored {
                        query_id: completion.query_id,
                        latency_ns: latency.as_nanos(),
                    },
                );
            } else {
                self.sink.record(
                    completion.finished_at.as_nanos(),
                    &TraceEvent::QueryCompleted {
                        query_id: completion.query_id,
                        latency_ns: latency.as_nanos(),
                    },
                );
            }
            let logged = self.recorder.accuracy_log().len() - logged_before;
            if logged > 0 {
                self.sink.record(
                    completion.finished_at.as_nanos(),
                    &TraceEvent::AccuracyLogged {
                        query_id: completion.query_id,
                        samples: logged,
                    },
                );
            }
        }
        if let Some(m) = self.metrics {
            if completion.error {
                // Errored latencies stay out of the latency histogram: it
                // summarizes service behaviour, not failure timing.
                m.incr("queries_errored", 1);
            } else {
                m.incr("queries_completed", 1);
                m.incr("samples_completed", completion.samples.len() as u64);
                m.observe("query_latency_ns", latency.as_nanos());
            }
        }
        Ok(())
    }
}

/// Runs one benchmark under simulated time.
///
/// In performance mode the scenario's arrival rules apply; in accuracy mode
/// the entire data set is processed once and every response payload is
/// logged (Section IV-B).
///
/// # Errors
///
/// Returns [`LoadGenError`] for inconsistent settings, an unusable QSL, or
/// an SUT protocol violation (wrong ids, time travel, missing completions).
pub fn run_simulated<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    run_instrumented(settings, qsl, sut, &Instruments::none())
}

/// [`run_simulated`] with a trace sink attached.
///
/// Every lifecycle event of the run flows into `sink`; when the sink is
/// enabled a [`MetricsRegistry`] also rides along and its snapshot lands in
/// [`RunOutcome::metrics`]. With [`mlperf_trace::NoopSink`] the overhead is
/// one branch per event.
///
/// # Errors
///
/// Same contract as [`run_simulated`].
pub fn run_simulated_traced<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    sink: &dyn TraceSink,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    run_instrumented(settings, qsl, sut, &Instruments::traced(sink))
}

/// The one real simulated issue loop; [`run_simulated`] and
/// [`run_simulated_traced`] are thin wrappers over it.
///
/// Beyond the PR 1 tracing contract, `instruments` may attach a
/// [`TimeSeriesSampler`] — snapshotted once per crossed interval boundary
/// as simulated time advances, then flushed to the final run duration —
/// and/or a caller-owned [`MetricsRegistry`] shared with device engines;
/// when a registry is active (owned or supplied) its snapshot lands in
/// [`RunOutcome::metrics`].
///
/// # Errors
///
/// Same contract as [`run_simulated`].
pub fn run_instrumented<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    instruments: &Instruments<'_>,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    run_sim(settings, qsl, sut, instruments, None)
}

/// The shared simulated run body. `replay` switches the performance-mode
/// issue loop from the scenario's generative arrival process to an
/// explicit recorded schedule (`crate::replay`); everything else —
/// seeding, recording, validation, scoring — is identical.
pub(crate) fn run_sim<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    instruments: &Instruments<'_>,
    replay: Option<&ReplaySchedule>,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    profile_span!("loadgen/run");
    let sink = instruments.sink;
    settings.validate()?;
    if qsl.total_sample_count() == 0 || qsl.performance_sample_count() == 0 {
        return Err(LoadGenError::BadQsl(format!(
            "QSL {} has no samples",
            qsl.name()
        )));
    }
    sut.reset();
    // Untimed sample loading (Figure 3, steps 1-4).
    let loaded: Vec<usize> = match settings.mode {
        TestMode::PerformanceOnly => (0..qsl.performance_sample_count()).collect(),
        TestMode::AccuracyOnly => (0..qsl.total_sample_count()).collect(),
    };
    {
        profile_span!("loadgen/load_samples");
        qsl.load_samples(&loaded);
    }

    let own_registry =
        (instruments.metrics.is_none() && instruments.wants_metrics()).then(MetricsRegistry::new);
    let registry = instruments.metrics.or(own_registry.as_ref());
    if sink.enabled() {
        sink.record(
            0,
            &TraceEvent::RunPhase {
                phase: "issue".into(),
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let mut sim = Sim::new(settings, sut, sink, registry, instruments.sampler);
    {
        profile_span!("loadgen/event_loop");
        match (settings.mode, replay) {
            (TestMode::AccuracyOnly, _) => run_accuracy(settings, &loaded, &mut sim)?,
            (TestMode::PerformanceOnly, Some(schedule)) => {
                run_replay(schedule, loaded.len(), &mut sim)?
            }
            (TestMode::PerformanceOnly, None) => match settings.scenario {
                Scenario::SingleStream => run_single_stream(settings, loaded.len(), &mut sim)?,
                Scenario::MultiStream => run_multi_stream(settings, loaded.len(), &mut sim)?,
                Scenario::Server => run_server(settings, loaded.len(), &mut sim)?,
                Scenario::Offline => run_offline(settings, loaded.len(), &mut sim)?,
            },
        }
    }

    qsl.unload_samples(&loaded);
    let recorder = std::mem::take(&mut sim.recorder);
    let outcome = {
        profile_span!("loadgen/score");
        finish_run(settings, sut.name(), qsl.name(), recorder, sink, registry)
    };
    if let (Some(sampler), Some(registry)) = (instruments.sampler, registry) {
        sampler.finish(outcome.result.duration.as_nanos(), registry);
    }
    sink.flush();
    Ok(outcome)
}

/// Scores a finished run: metric, latency stats, and validity checks.
/// Shared by the simulated and realtime issue loops.
pub(crate) fn finish_run(
    settings: &TestSettings,
    sut_name: &str,
    qsl_name: &str,
    recorder: Recorder,
    sink: &dyn TraceSink,
    metrics: Option<&MetricsRegistry>,
) -> RunOutcome {
    let outstanding = recorder.outstanding() as u64;
    let duration = recorder.last_completion();
    let (records, accuracy_log) = recorder.into_parts();
    let validity = match settings.mode {
        TestMode::PerformanceOnly => check_run(settings, &records, duration, outstanding),
        TestMode::AccuracyOnly => Vec::new(),
    };
    if sink.enabled() {
        sink.record(
            duration.as_nanos(),
            &TraceEvent::RunPhase {
                phase: "report".into(),
                scenario: settings.scenario.to_string(),
            },
        );
        for issue in &validity {
            sink.record(
                duration.as_nanos(),
                &TraceEvent::ValidityCheckFailed {
                    issue: issue.to_string(),
                },
            );
        }
    }
    let samples_completed: u64 = records
        .iter()
        .filter(|r| r.completed_at.is_some() && !r.error)
        .map(|r| r.sample_count as u64)
        .sum();
    let error_count = records.iter().filter(|r| r.error).count() as u64;
    let metric = compute_metric(settings, &records, duration, samples_completed);
    let latencies: Vec<Nanos> = records.iter().filter_map(QueryRecord::latency).collect();
    let result = TestResult {
        sut_name: sut_name.to_string(),
        qsl_name: qsl_name.to_string(),
        scenario: settings.scenario,
        performance_mode: matches!(settings.mode, TestMode::PerformanceOnly),
        metric,
        latency_stats: LatencyStats::from_latencies(&latencies),
        query_count: records.len() as u64,
        error_count,
        sample_count: samples_completed,
        duration,
        validity,
    };
    let metrics = metrics.map(|m| {
        m.incr("validity_issues", result.validity.len() as u64);
        m.set_gauge("metric_score", result.metric.score());
        m.set_gauge("duration_secs", duration.as_secs_f64());
        m.snapshot()
    });
    RunOutcome {
        result,
        records,
        accuracy_log,
        metrics,
    }
}

fn compute_metric(
    settings: &TestSettings,
    records: &[QueryRecord],
    duration: Nanos,
    samples_completed: u64,
) -> ScenarioMetric {
    match settings.scenario {
        Scenario::SingleStream => ScenarioMetric::SingleStream {
            p90_latency: percentile_latency(records, 0.90).unwrap_or(Nanos::MAX),
        },
        Scenario::MultiStream => {
            let skippers = records.iter().filter(|r| r.skipped_intervals > 0).count();
            ScenarioMetric::MultiStream {
                streams: settings.samples_per_query,
                skip_fraction: if records.is_empty() {
                    0.0
                } else {
                    skippers as f64 / records.len() as f64
                },
            }
        }
        Scenario::Server => ScenarioMetric::Server {
            qps: settings.server_target_qps,
            overlatency_fraction: overlatency_fraction(records, settings.target_latency),
        },
        Scenario::Offline => ScenarioMetric::Offline {
            samples_per_second: if duration == Nanos::ZERO {
                0.0
            } else {
                samples_completed as f64 / duration.as_secs_f64()
            },
        },
    }
}

/// Drains every remaining event; used once no further queries will issue.
fn drain<S: SimSut + ?Sized>(sim: &mut Sim<'_, S>) -> Result<(), LoadGenError> {
    while let Some(event) = sim.pop()? {
        match event.kind {
            EventKind::Arrival => {
                return Err(LoadGenError::SutProtocol(
                    "arrival event in drain phase".into(),
                ))
            }
            EventKind::Wakeup => sim.wakeup(event.at)?,
            EventKind::Completion(c) => sim.complete(&c)?,
        }
    }
    Ok(())
}

fn run_single_stream<S: SimSut + ?Sized>(
    settings: &TestSettings,
    population: usize,
    sim: &mut Sim<'_, S>,
) -> Result<(), LoadGenError> {
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    let issue_at = |sim: &mut Sim<'_, S>,
                    issued: &mut u64,
                    next_sample_id: &mut u64,
                    rng: &mut Rng64,
                    at: Nanos|
     -> Result<(), LoadGenError> {
        let indices = rng.sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(*issued, next_sample_id, &indices, at);
        *issued += 1;
        sim.issue(query)
    };
    issue_at(
        sim,
        &mut issued,
        &mut next_sample_id,
        &mut qsl_rng,
        Nanos::ZERO,
    )?;
    while let Some(event) = sim.pop()? {
        match event.kind {
            EventKind::Arrival => unreachable!("single-stream issues on completion"),
            EventKind::Wakeup => sim.wakeup(event.at)?,
            EventKind::Completion(c) => {
                let now = c.finished_at;
                sim.complete(&c)?;
                if issued < settings.min_query_count || now < settings.min_duration {
                    issue_at(sim, &mut issued, &mut next_sample_id, &mut qsl_rng, now)?;
                }
            }
        }
    }
    Ok(())
}

/// The server scenario's resumable issue cursor: everything the arrival
/// loop mutates, in a shape a [`Checkpoint`] can capture and restore.
pub(crate) struct ServerCursor {
    pub(crate) qsl_rng: Rng64,
    pub(crate) arrivals: PoissonProcess,
    pub(crate) next_sample_id: u64,
    pub(crate) issued: u64,
    pub(crate) pending_arrival: Option<Nanos>,
}

impl ServerCursor {
    pub(crate) fn fresh(settings: &TestSettings) -> Result<Self, LoadGenError> {
        let mut arrivals = PoissonProcess::new(
            settings.server_target_qps,
            Rng64::new(settings.seeds.schedule_seed),
        )
        .map_err(|e| LoadGenError::BadSettings(e.to_string()))?;
        let first = Nanos::from_secs_f64(arrivals.next().expect("poisson process is infinite"));
        Ok(Self {
            qsl_rng: Rng64::new(settings.seeds.qsl_seed),
            arrivals,
            next_sample_id: 0,
            issued: 0,
            pending_arrival: Some(first),
        })
    }

    pub(crate) fn restore(settings: &TestSettings, cp: &Checkpoint) -> Result<Self, LoadGenError> {
        let arrivals = PoissonProcess::resume(
            settings.server_target_qps,
            cp.sched_rng,
            f64::from_bits(cp.sched_now_bits),
        )
        .map_err(|e| LoadGenError::BadSettings(e.to_string()))?;
        Ok(Self {
            qsl_rng: Rng64::from_state(cp.qsl_rng),
            arrivals,
            next_sample_id: cp.next_sample_id,
            issued: cp.issued,
            pending_arrival: cp.pending_arrival,
        })
    }

    pub(crate) fn next_arrival(&mut self) -> Nanos {
        Nanos::from_secs_f64(self.arrivals.next().expect("poisson process is infinite"))
    }
}

fn run_server<S: SimSut + ?Sized>(
    settings: &TestSettings,
    population: usize,
    sim: &mut Sim<'_, S>,
) -> Result<(), LoadGenError> {
    let mut cursor = ServerCursor::fresh(settings)?;
    run_server_loop(settings, population, sim, &mut cursor, &mut None).map(|_| ())
}

/// The one server-scenario event loop, shared by plain and journaled runs.
/// With a journal tap attached, a checkpoint is captured every
/// `checkpoint_every` issued queries; returns `true` when the tap's armed
/// halt fired (the run stops at that boundary, as a killed process would).
fn run_server_loop<S: SimSut + ?Sized>(
    settings: &TestSettings,
    population: usize,
    sim: &mut Sim<'_, S>,
    cursor: &mut ServerCursor,
    journal: &mut Option<JournalTap<'_>>,
) -> Result<bool, LoadGenError> {
    if let Some(at) = cursor.pending_arrival {
        sim.schedule_arrival(at);
    }
    while let Some(event) = sim.pop()? {
        match event.kind {
            EventKind::Arrival => {
                let at = cursor
                    .pending_arrival
                    .take()
                    .expect("arrival event without pending arrival");
                debug_assert_eq!(at, event.at);
                let indices = cursor
                    .qsl_rng
                    .sample_with_replacement(population, settings.samples_per_query);
                let query = build_query(cursor.issued, &mut cursor.next_sample_id, &indices, at);
                cursor.issued += 1;
                sim.issue(query)?;
                let next = cursor.next_arrival();
                // Stop issuing once both Table V count and 60-s duration are
                // satisfied.
                if cursor.issued < settings.min_query_count || next < settings.min_duration {
                    cursor.pending_arrival = Some(next);
                    sim.schedule_arrival(next);
                }
                if let Some(tap) = journal.as_mut() {
                    if cursor.issued.is_multiple_of(tap.cfg.checkpoint_every) {
                        let sched = cursor.arrivals.state();
                        let halted = tap.capture(
                            sim,
                            cursor.issued,
                            cursor.next_sample_id,
                            at,
                            cursor.pending_arrival,
                            cursor.qsl_rng.state(),
                            sched,
                        )?;
                        if halted {
                            return Ok(true);
                        }
                    }
                }
            }
            EventKind::Wakeup => sim.wakeup(event.at)?,
            EventKind::Completion(c) => sim.complete(&c)?,
        }
    }
    Ok(false)
}

fn run_multi_stream<S: SimSut + ?Sized>(
    settings: &TestSettings,
    population: usize,
    sim: &mut Sim<'_, S>,
) -> Result<(), LoadGenError> {
    let interval = settings.multistream_arrival_interval;
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    let issue = |sim: &mut Sim<'_, S>,
                 issued: &mut u64,
                 next_sample_id: &mut u64,
                 rng: &mut Rng64,
                 at: Nanos|
     -> Result<u64, LoadGenError> {
        let indices = rng.sample_with_replacement(population, settings.samples_per_query);
        let id = *issued;
        let query = build_query(id, next_sample_id, &indices, at);
        *issued += 1;
        sim.issue(query)?;
        Ok(id)
    };
    // (query id, issue boundary) of the in-flight query.
    let mut in_flight: Option<(u64, Nanos)> = Some((
        issue(
            sim,
            &mut issued,
            &mut next_sample_id,
            &mut qsl_rng,
            Nanos::ZERO,
        )?,
        Nanos::ZERO,
    ));
    while let Some(event) = sim.pop()? {
        match event.kind {
            EventKind::Arrival => {
                let at = event.at;
                in_flight = Some((
                    issue(sim, &mut issued, &mut next_sample_id, &mut qsl_rng, at)?,
                    at,
                ));
            }
            EventKind::Wakeup => sim.wakeup(event.at)?,
            EventKind::Completion(c) => {
                let finished = c.finished_at;
                sim.complete(&c)?;
                if let Some((id, boundary)) = in_flight.take() {
                    if c.query_id != id {
                        return Err(LoadGenError::SutProtocol(format!(
                            "multistream completion for query {} while {} in flight",
                            c.query_id, id
                        )));
                    }
                    // Intervals consumed by this query; every one beyond the
                    // first was skipped and delays the remaining queries.
                    let elapsed = finished.saturating_sub(boundary).as_nanos();
                    let consumed = elapsed.div_ceil(interval.as_nanos()).max(1);
                    let skips = (consumed - 1) as u32;
                    if skips > 0 {
                        sim.recorder.record_skips(id, skips);
                        if sim.sink.enabled() {
                            sim.sink.record(
                                finished.as_nanos(),
                                &TraceEvent::OverloadDropped {
                                    query_id: id,
                                    intervals: u64::from(skips),
                                },
                            );
                        }
                        if let Some(m) = sim.metrics {
                            m.incr("skipped_intervals", u64::from(skips));
                        }
                    }
                    let next_boundary = boundary + interval.mul(consumed);
                    if issued < settings.min_query_count || next_boundary < settings.min_duration {
                        sim.schedule_arrival(next_boundary);
                    }
                }
            }
        }
    }
    Ok(())
}

fn run_offline<S: SimSut + ?Sized>(
    settings: &TestSettings,
    population: usize,
    sim: &mut Sim<'_, S>,
) -> Result<(), LoadGenError> {
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let count = settings.offline_min_sample_count as usize;
    let indices = qsl_rng.sample_with_replacement(population, count);
    let mut next_sample_id = 0u64;
    let query = build_query(0, &mut next_sample_id, &indices, Nanos::ZERO);
    sim.issue(query)?;
    drain(sim)
}

/// The journal attachment a journaled run threads through its issue loop.
struct JournalTap<'a> {
    journal: RunJournal,
    cfg: &'a JournalConfig,
}

impl JournalTap<'_> {
    /// Captures one checkpoint; returns `true` when the config's armed
    /// halt fired at this boundary (clean or torn, per `torn_halt`).
    #[allow(clippy::too_many_arguments)]
    fn capture<S: SimSut + ?Sized>(
        &mut self,
        sim: &Sim<'_, S>,
        issued: u64,
        next_sample_id: u64,
        wall: Nanos,
        pending_arrival: Option<Nanos>,
        qsl_rng: [u64; 4],
        sched: ([u64; 4], f64),
    ) -> Result<bool, LoadGenError> {
        let seq = self.journal.checkpoints;
        let epoch = self
            .cfg
            .epoch_source
            .as_ref()
            .map_or(0, |e| e.load(std::sync::atomic::Ordering::SeqCst));
        let (records_from, accuracy_from) = self.journal.flushed_marks();
        let cp = Checkpoint {
            seq,
            issued,
            next_sample_id,
            wall,
            pending_arrival,
            qsl_rng,
            sched_rng: sched.0,
            sched_now_bits: sched.1.to_bits(),
            acc_rng: sim.acc_rng.state(),
            epoch,
            recorder: sim.recorder.snapshot_suffix(records_from, accuracy_from),
        };
        self.journal.append_checkpoint(self.cfg, &cp)
    }
}

/// Offline journaled body: one query, one checkpoint right after its
/// issue, then the completion drain. Resume with a restored recorder
/// skips the issue entirely (the query is outstanding and was re-issued
/// during restore) and goes straight to the drain.
fn run_offline_journaled<S: SimSut + ?Sized>(
    settings: &TestSettings,
    population: usize,
    sim: &mut Sim<'_, S>,
    tap: &mut JournalTap<'_>,
    resumed: bool,
) -> Result<bool, LoadGenError> {
    if !resumed {
        let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
        let count = settings.offline_min_sample_count as usize;
        let indices = qsl_rng.sample_with_replacement(population, count);
        let mut next_sample_id = 0u64;
        let query = build_query(0, &mut next_sample_id, &indices, Nanos::ZERO);
        sim.issue(query)?;
        let sched_state = ([0u64; 4], 0.0);
        let halted = tap.capture(
            sim,
            1,
            next_sample_id,
            Nanos::ZERO,
            None,
            qsl_rng.state(),
            sched_state,
        )?;
        if halted {
            return Ok(true);
        }
    }
    drain(sim)?;
    Ok(false)
}

/// Runs a fresh crash-safe benchmark: identical to [`run_instrumented`],
/// plus a durable run journal at `cfg.path` capturing a [`Checkpoint`]
/// every `cfg.checkpoint_every` issued queries. A process killed mid-run
/// leaves a journal [`resume_journaled`] can continue from.
///
/// Journaled runs support the server and offline scenarios in performance
/// mode — the completion-driven scenarios (single-/multi-stream) have no
/// issue boundary independent of the SUT to checkpoint at.
///
/// # Errors
///
/// [`LoadGenError::Journal`] on journal I/O failure, plus the
/// [`run_simulated`] contract.
pub fn run_journaled<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    instruments: &Instruments<'_>,
    cfg: &JournalConfig,
) -> Result<JournaledRun, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    run_journaled_sim(settings, qsl, sut, instruments, cfg, false)
}

/// Resumes a crash-interrupted run from its journal: rolls back to the
/// last complete checkpoint (a torn tail is truncated), restores the
/// scenario cursor, RNG streams, and recorder, re-issues the queries that
/// were outstanding at the checkpoint, and continues the run — appending
/// further checkpoints to the same journal.
///
/// The resumed run's *logical* detail log (ids, schedule, sample counts,
/// error flags) is identical to an uninterrupted run's whenever the SUT's
/// per-query outcome is a function of the query alone; post-crash
/// latencies are re-derived against the reset SUT and may differ for
/// stateful (queueing) SUTs.
///
/// # Errors
///
/// [`LoadGenError::Journal`] when the journal is unreadable or belongs to
/// a different run (settings/QSL digest mismatch), plus the
/// [`run_simulated`] contract.
pub fn resume_journaled<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    instruments: &Instruments<'_>,
    cfg: &JournalConfig,
) -> Result<JournaledRun, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    run_journaled_sim(settings, qsl, sut, instruments, cfg, true)
}

fn run_journaled_sim<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    instruments: &Instruments<'_>,
    cfg: &JournalConfig,
    resume: bool,
) -> Result<JournaledRun, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    profile_span!("loadgen/run_journaled");
    let sink = instruments.sink;
    settings.validate()?;
    if !matches!(settings.mode, TestMode::PerformanceOnly) {
        return Err(LoadGenError::BadSettings(
            "journaled runs are performance-mode only".into(),
        ));
    }
    if !matches!(settings.scenario, Scenario::Server | Scenario::Offline) {
        return Err(LoadGenError::BadSettings(format!(
            "journaled runs support the server and offline scenarios, not {}",
            settings.scenario
        )));
    }
    if qsl.total_sample_count() == 0 || qsl.performance_sample_count() == 0 {
        return Err(LoadGenError::BadQsl(format!(
            "QSL {} has no samples",
            qsl.name()
        )));
    }
    sut.reset();
    let loaded: Vec<usize> = (0..qsl.performance_sample_count()).collect();
    qsl.load_samples(&loaded);
    let population = loaded.len();

    let meta = RunMeta {
        scenario: settings.scenario.to_string(),
        digest: settings_digest(settings, population as u64),
        qsl_size: population as u64,
    };
    let (journal, restored) = RunJournal::attach(cfg, &meta, resume)?;

    let own_registry =
        (instruments.metrics.is_none() && instruments.wants_metrics()).then(MetricsRegistry::new);
    let registry = instruments.metrics.or(own_registry.as_ref());
    if sink.enabled() {
        sink.record(
            0,
            &TraceEvent::RunPhase {
                phase: if restored.is_some() {
                    "resume".into()
                } else {
                    "issue".into()
                },
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let mut sim = Sim::new(settings, sut, sink, registry, instruments.sampler);
    let resumed = restored.is_some();
    if let Some(cp) = &restored {
        sim.restore(cp)?;
    }
    let mut tap = JournalTap { journal, cfg };
    let halted = match settings.scenario {
        Scenario::Server => {
            let mut cursor = match &restored {
                Some(cp) => ServerCursor::restore(settings, cp)?,
                None => ServerCursor::fresh(settings)?,
            };
            let mut journal = Some(tap);
            let halted =
                run_server_loop(settings, population, &mut sim, &mut cursor, &mut journal)?;
            tap = journal.expect("journal tap survives the loop");
            halted
        }
        Scenario::Offline => {
            run_offline_journaled(settings, population, &mut sim, &mut tap, resumed)?
        }
        _ => unreachable!("scenario gate above"),
    };
    qsl.unload_samples(&loaded);
    if halted {
        sink.flush();
        return Ok(JournaledRun::Halted {
            // A torn halt's frame is not counted (it is not a complete
            // checkpoint), so the boundary seq is `checkpoints` itself.
            checkpoint: tap
                .journal
                .checkpoints
                .saturating_sub(if cfg.torn_halt { 0 } else { 1 }),
        });
    }
    tap.journal.sync()?;
    let recorder = std::mem::take(&mut sim.recorder);
    let outcome = finish_run(settings, sut.name(), qsl.name(), recorder, sink, registry);
    if let (Some(sampler), Some(registry)) = (instruments.sampler, registry) {
        sampler.finish(outcome.result.duration.as_nanos(), registry);
    }
    sink.flush();
    Ok(JournaledRun::Finished(Box::new(outcome)))
}

/// Re-issues a recorded schedule: explicit arrival times and explicit
/// per-query sample indices, open loop. The scenario's generative rules
/// are bypassed — the schedule *is* the run — but recording, validity
/// checks, and scoring still follow `settings.scenario`.
fn run_replay<S: SimSut + ?Sized>(
    schedule: &ReplaySchedule,
    population: usize,
    sim: &mut Sim<'_, S>,
) -> Result<(), LoadGenError> {
    let mut next_sample_id = 0u64;
    let mut next = 0usize;
    if schedule.arrivals.is_empty() {
        return Ok(());
    }
    sim.schedule_arrival(schedule.arrivals[0]);
    while let Some(event) = sim.pop()? {
        match event.kind {
            EventKind::Arrival => {
                let at = schedule.arrivals[next];
                debug_assert_eq!(at, event.at);
                // A recorded trace may index a larger QSL than the one it
                // replays against; fold indices into the population rather
                // than rejecting the run.
                let indices: Vec<usize> = schedule.indices[next]
                    .iter()
                    .map(|&i| i % population)
                    .collect();
                let query = build_query(next as u64, &mut next_sample_id, &indices, at);
                next += 1;
                sim.issue(query)?;
                if next < schedule.arrivals.len() {
                    sim.schedule_arrival(schedule.arrivals[next]);
                }
            }
            EventKind::Wakeup => sim.wakeup(event.at)?,
            EventKind::Completion(c) => sim.complete(&c)?,
        }
    }
    Ok(())
}

fn run_accuracy<S: SimSut + ?Sized>(
    _settings: &TestSettings,
    loaded: &[usize],
    sim: &mut Sim<'_, S>,
) -> Result<(), LoadGenError> {
    // Accuracy mode goes through the entire data set, once, as one batch.
    let mut next_sample_id = 0u64;
    let query = build_query(0, &mut next_sample_id, loaded, Nanos::ZERO);
    sim.issue(query)?;
    drain(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qsl::MemoryQsl;
    use crate::sut::FixedLatencySut;

    fn small(settings: TestSettings) -> TestSettings {
        settings
            .with_min_duration(Nanos::from_millis(1))
            .with_min_query_count(64)
    }

    #[test]
    fn metrics_histogram_agrees_with_results_percentiles() {
        use mlperf_trace::RingBufferSink;
        // A queueing server run: Poisson arrivals against a serial SUT at
        // ~60% utilization spread completion latencies over a wide range, so
        // the log-bucketed histogram and the exact percentile selection in
        // results.rs are compared on a non-trivial distribution.
        let settings = TestSettings::server(2_000.0, Nanos::from_millis(50))
            .with_min_query_count(2_000)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(300));
        let sink = RingBufferSink::unbounded();
        let out = run_simulated_traced(&settings, &mut qsl, &mut sut, &sink).unwrap();
        let metrics = out.metrics.expect("traced run snapshots metrics");
        let h = metrics.histogram("query_latency_ns").expect("histogram");
        assert_eq!(h.count(), out.result.query_count);
        let stats = out.result.latency_stats.expect("per-query latencies");
        for (q, exact) in [
            (0.50, stats.p50),
            (0.90, stats.p90),
            (0.97, stats.p97),
            (0.99, stats.p99),
        ] {
            let approx = h.quantile(q);
            let width = h.quantile_resolution(q);
            // Both sides use nearest-rank selection, so the exact percentile
            // falls inside the bucket whose upper bound the histogram
            // reports: within one bucket width.
            assert!(
                approx >= exact.as_nanos() && approx - exact.as_nanos() <= width,
                "q={q}: histogram {approx} vs exact {exact} (bucket width {width})"
            );
        }
    }

    #[test]
    fn single_stream_counts_and_metric() {
        let settings = small(TestSettings::single_stream());
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert_eq!(out.result.query_count, 64);
        match out.result.metric {
            ScenarioMetric::SingleStream { p90_latency } => {
                assert_eq!(p90_latency, Nanos::from_micros(100));
            }
            ref m => panic!("wrong metric {m:?}"),
        }
        // Sequential: duration = 64 * 100us.
        assert_eq!(out.result.duration, Nanos::from_micros(6_400));
    }

    #[test]
    fn single_stream_runs_until_min_duration() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(1)
            .with_min_duration(Nanos::from_millis(5));
        let mut qsl = MemoryQsl::new("q", 8, 8);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out.result.duration >= Nanos::from_millis(5));
        assert_eq!(out.result.query_count, 50);
    }

    #[test]
    fn server_meets_bound_when_fast() {
        let settings =
            small(TestSettings::server(1_000.0, Nanos::from_millis(10))).with_min_query_count(500);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        // Service 50us at 1000 qps: utilization 5%, no queueing to speak of.
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        match out.result.metric {
            ScenarioMetric::Server {
                qps,
                overlatency_fraction,
            } => {
                assert_eq!(qps, 1_000.0);
                assert!(overlatency_fraction < 0.01);
            }
            ref m => panic!("wrong metric {m:?}"),
        }
    }

    #[test]
    fn server_overloaded_is_invalid() {
        // Service 2ms at 1000 qps: rho = 2, queue diverges, p99 blows up.
        let settings =
            small(TestSettings::server(1_000.0, Nanos::from_millis(10))).with_min_query_count(500);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(2));
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(!out.result.is_valid());
    }

    #[test]
    fn multistream_no_skips_when_fast() {
        let settings = small(TestSettings::multi_stream(4, Nanos::from_millis(50)));
        let mut qsl = MemoryQsl::new("q", 32, 32);
        // 4 samples * 1ms = 4ms per 50ms interval.
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(1));
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        match out.result.metric {
            ScenarioMetric::MultiStream {
                streams,
                skip_fraction,
            } => {
                assert_eq!(streams, 4);
                assert_eq!(skip_fraction, 0.0);
            }
            ref m => panic!("wrong metric {m:?}"),
        }
        // Queries pace at exactly one interval.
        assert_eq!(
            out.records[1].scheduled_at,
            Nanos::from_millis(50),
            "second query at the second boundary"
        );
    }

    #[test]
    fn multistream_slow_sut_skips_intervals() {
        let settings = small(TestSettings::multi_stream(4, Nanos::from_millis(50)));
        let mut qsl = MemoryQsl::new("q", 32, 32);
        // 4 * 30ms = 120ms per query: overruns two intervals every time.
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(30));
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(!out.result.is_valid());
        assert!(out.records.iter().all(|r| r.skipped_intervals == 2));
        // Next query lands on the delayed boundary: 150ms.
        assert_eq!(out.records[1].scheduled_at, Nanos::from_millis(150));
    }

    #[test]
    fn offline_throughput() {
        let settings = TestSettings::offline()
            .with_min_duration(Nanos::from_millis(1))
            .with_offline_min_sample_count(1_000);
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10));
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        match out.result.metric {
            ScenarioMetric::Offline { samples_per_second } => {
                // 1000 samples * 10us = 10ms -> 100k samples/s.
                assert!((samples_per_second - 100_000.0).abs() < 1.0);
            }
            ref m => panic!("wrong metric {m:?}"),
        }
        assert_eq!(out.result.sample_count, 1_000);
    }

    #[test]
    fn accuracy_mode_covers_dataset_and_logs_everything() {
        let settings = TestSettings::offline().with_mode(TestMode::AccuracyOnly);
        let mut qsl = MemoryQsl::new("q", 200, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(1)).with_class_payloads(7);
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert_eq!(out.accuracy_log.len(), 200);
        // Every dataset index present exactly once.
        let mut seen: Vec<usize> = out.accuracy_log.iter().map(|l| l.sample_index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
        assert!(out.result.is_valid());
        assert!(!out.result.performance_mode);
    }

    #[test]
    fn performance_mode_samples_accuracy_log() {
        let settings = small(TestSettings::single_stream())
            .with_min_query_count(500)
            .with_accuracy_log_probability(0.1);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10)).with_class_payloads(3);
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        let logged = out.accuracy_log.len();
        assert!((20..120).contains(&logged), "logged={logged}");
    }

    fn journal_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mlperf_des_journal_{}_{name}.mlpj",
            std::process::id()
        ));
        p
    }

    #[test]
    fn journaled_run_without_halt_matches_plain_run() {
        let settings =
            small(TestSettings::server(2_000.0, Nanos::from_millis(10))).with_min_query_count(60);
        let plain = {
            let mut qsl = MemoryQsl::new("q", 32, 32);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
            run_simulated(&settings, &mut qsl, &mut sut).unwrap()
        };
        let path = journal_path("no_halt");
        let cfg = JournalConfig::new(&path).with_checkpoint_every(8);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
        let out = run_journaled(&settings, &mut qsl, &mut sut, &Instruments::none(), &cfg)
            .unwrap()
            .finished()
            .expect("no halt armed");
        assert_eq!(out.records, plain.records);
        assert_eq!(out.result, plain.result);
        let loaded = crate::journal::load_run_journal(&path).unwrap();
        assert!(
            loaded.checkpoints >= 3,
            "{} checkpoints",
            loaded.checkpoints
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn server_resume_at_every_checkpoint_matches_uninterrupted() {
        let settings =
            small(TestSettings::server(2_000.0, Nanos::from_millis(10))).with_min_query_count(60);
        let baseline = {
            let mut qsl = MemoryQsl::new("q", 32, 32);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
            run_simulated(&settings, &mut qsl, &mut sut).unwrap()
        };
        // Discover how many checkpoints a full run writes.
        let path = journal_path("server_sweep");
        let cfg = JournalConfig::new(&path).with_checkpoint_every(8);
        {
            let mut qsl = MemoryQsl::new("q", 32, 32);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
            run_journaled(&settings, &mut qsl, &mut sut, &Instruments::none(), &cfg).unwrap();
        }
        let total = crate::journal::load_run_journal(&path).unwrap().checkpoints;
        assert!(total >= 3, "need a real sweep, got {total} checkpoints");
        // Kill at every checkpoint boundary, resume, and demand the exact
        // uninterrupted records (the stateless SUT re-derives identical
        // latencies too).
        for kill_at in 0..total {
            let halt_cfg = cfg.clone().with_halt_after(kill_at);
            let mut qsl = MemoryQsl::new("q", 32, 32);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
            match run_journaled(
                &settings,
                &mut qsl,
                &mut sut,
                &Instruments::none(),
                &halt_cfg,
            )
            .unwrap()
            {
                JournaledRun::Halted { checkpoint } => assert_eq!(checkpoint, kill_at),
                JournaledRun::Finished(_) => panic!("halt {kill_at} did not fire"),
            }
            let mut qsl = MemoryQsl::new("q", 32, 32);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
            let out = resume_journaled(&settings, &mut qsl, &mut sut, &Instruments::none(), &cfg)
                .unwrap()
                .finished()
                .expect("resume runs to completion");
            assert_eq!(
                out.records, baseline.records,
                "kill at checkpoint {kill_at}"
            );
            assert_eq!(out.result, baseline.result, "kill at checkpoint {kill_at}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn server_resume_survives_torn_checkpoint() {
        let settings =
            small(TestSettings::server(2_000.0, Nanos::from_millis(10))).with_min_query_count(60);
        let baseline = {
            let mut qsl = MemoryQsl::new("q", 32, 32);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
            run_simulated(&settings, &mut qsl, &mut sut).unwrap()
        };
        let path = journal_path("torn");
        let cfg = JournalConfig::new(&path).with_checkpoint_every(8);
        // Kill *during* the write of checkpoint 2: the frame tears, resume
        // must roll back to checkpoint 1 and still converge.
        let halt_cfg = cfg.clone().with_halt_after(2).with_torn_halt();
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
        run_journaled(
            &settings,
            &mut qsl,
            &mut sut,
            &Instruments::none(),
            &halt_cfg,
        )
        .unwrap();
        let loaded = crate::journal::load_run_journal(&path).unwrap();
        assert!(loaded.torn.is_some(), "torn halt must leave a torn tail");
        assert_eq!(loaded.checkpoints, 2);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
        let out = resume_journaled(&settings, &mut qsl, &mut sut, &Instruments::none(), &cfg)
            .unwrap()
            .finished()
            .expect("resume after tear");
        assert_eq!(out.records, baseline.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn offline_resume_after_checkpoint_matches() {
        let settings = TestSettings::offline()
            .with_min_duration(Nanos::from_millis(1))
            .with_offline_min_sample_count(500);
        let baseline = {
            let mut qsl = MemoryQsl::new("q", 64, 64);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10));
            run_simulated(&settings, &mut qsl, &mut sut).unwrap()
        };
        let path = journal_path("offline");
        let cfg = JournalConfig::new(&path);
        let halt_cfg = cfg.clone().with_halt_after(0);
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10));
        match run_journaled(
            &settings,
            &mut qsl,
            &mut sut,
            &Instruments::none(),
            &halt_cfg,
        )
        .unwrap()
        {
            JournaledRun::Halted { checkpoint } => assert_eq!(checkpoint, 0),
            JournaledRun::Finished(_) => panic!("halt did not fire"),
        }
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10));
        let out = resume_journaled(&settings, &mut qsl, &mut sut, &Instruments::none(), &cfg)
            .unwrap()
            .finished()
            .expect("offline resume");
        assert_eq!(out.records, baseline.records);
        assert_eq!(out.result, baseline.result);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_foreign_journal() {
        let settings =
            small(TestSettings::server(2_000.0, Nanos::from_millis(10))).with_min_query_count(40);
        let path = journal_path("foreign");
        let cfg = JournalConfig::new(&path).with_checkpoint_every(8);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
        run_journaled(&settings, &mut qsl, &mut sut, &Instruments::none(), &cfg).unwrap();
        // Same journal, different run parameters: digest mismatch.
        let other = settings.clone().with_min_query_count(41);
        let err =
            resume_journaled(&other, &mut qsl, &mut sut, &Instruments::none(), &cfg).unwrap_err();
        assert!(matches!(err, LoadGenError::Journal(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journaled_rejects_completion_driven_scenarios() {
        let settings = small(TestSettings::single_stream());
        let path = journal_path("reject");
        let cfg = JournalConfig::new(&path);
        let mut qsl = MemoryQsl::new("q", 8, 8);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10));
        let err =
            run_journaled(&settings, &mut qsl, &mut sut, &Instruments::none(), &cfg).unwrap_err();
        assert!(matches!(err, LoadGenError::BadSettings(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deterministic_given_seeds() {
        let settings =
            small(TestSettings::server(500.0, Nanos::from_millis(10))).with_min_query_count(200);
        let run = || {
            let mut qsl = MemoryQsl::new("q", 32, 32);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(100));
            run_simulated(&settings, &mut qsl, &mut sut).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.result, b.result);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn rejects_empty_qsl_settings() {
        let settings = TestSettings::server(0.0, Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 8, 8);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(1));
        assert!(matches!(
            run_simulated(&settings, &mut qsl, &mut sut),
            Err(LoadGenError::BadSettings(_))
        ));
    }

    #[test]
    fn time_traveling_sut_rejected() {
        struct TimeTraveler;
        impl SimSut for TimeTraveler {
            fn name(&self) -> &str {
                "tt"
            }
            fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
                SutReaction::complete(QueryCompletion::ok(
                    query.id,
                    now.saturating_sub(Nanos::from_micros(1)),
                    vec![],
                ))
            }
        }
        let settings = TestSettings::single_stream()
            .with_min_query_count(1)
            .with_min_duration(Nanos::ZERO);
        let mut qsl = MemoryQsl::new("q", 8, 8);
        // scheduled_at 0, so finished_at saturates to 0 == now: use an issue
        // at a later time by running a couple of queries.
        let mut sut = TimeTraveler;
        // First query at t=0 finishes at t=0 with empty samples: that is a
        // sample-count protocol violation.
        let err = run_simulated(&settings, &mut qsl, &mut sut).unwrap_err();
        assert!(matches!(err, LoadGenError::SutProtocol(_)));
    }
}

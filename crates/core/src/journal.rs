//! Run checkpoints and the typed run journal.
//!
//! The durable layer under crash-safe runs. `mlperf_trace::journal` owns
//! the *bytes* (the `MLPJ` append-only WAL: CRC-framed records, batched
//! `fsync`, torn-tail salvage); this module owns the *meaning*: what a
//! LoadGen run writes into that WAL so a fresh process can pick the run
//! back up after a `kill -9`.
//!
//! A run journal holds one [`RunMeta`] record (frame 0) followed by
//! [`Checkpoint`] records at deterministic issued-query boundaries. A
//! checkpoint is a complete image of the issue loop at a boundary:
//!
//! * the scenario cursor — queries issued, next sample id, the pending
//!   arrival, elapsed run clock;
//! * every RNG mid-stream state (QSL sampling, Poisson schedule, accuracy
//!   sampling), so the resumed run draws the *same* remaining schedule and
//!   sample indices the uninterrupted run would have;
//! * the recorder snapshot — records, outstanding queries (re-issuable),
//!   accuracy log, counters;
//! * the wire session epoch in force, so a resumed client reconnects with
//!   an epoch bump and the daemon's exactly-once replay machinery engages.
//!
//! Resume semantics are **roll back and re-execute**: the run restarts
//! from the last complete checkpoint; queries issued after it are re-drawn
//! (identically, from the checkpointed RNG states) and re-issued; queries
//! outstanding *at* the checkpoint are re-issued without re-recording.
//! Against a journaled wire daemon, re-issued known queries are answered
//! from the daemon's own journal, keeping execution effects exactly-once.

use crate::config::TestSettings;
use crate::record::RecorderSnapshot;
use crate::time::Nanos;
use crate::LoadGenError;
use mlperf_trace::journal::{read_journal, JournalWriter, TornTail};
use mlperf_trace::{FromJson, JsonError, JsonValue, ToJson};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU32;
use std::sync::Arc;

/// FNV-1a 64-bit, for the settings digest. Same constants as the detail
/// log's logical hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of everything about a run's configuration that resume
/// correctness depends on. A journal may only resume a run whose settings
/// and QSL produce the same digest — anything else would silently splice
/// two different schedules together.
pub fn settings_digest(settings: &TestSettings, qsl_size: u64) -> u64 {
    let text = format!(
        "{};{:?};{};{};{};{};{};{};{};{};{}",
        settings.scenario,
        settings.mode,
        settings.seeds.qsl_seed,
        settings.seeds.schedule_seed,
        settings.seeds.accuracy_seed,
        settings.min_query_count,
        settings.min_duration.as_nanos(),
        settings.server_target_qps.to_bits(),
        settings.samples_per_query,
        settings.offline_min_sample_count,
        qsl_size,
    );
    fnv1a64(text.as_bytes())
}

/// Frame 0 of every run journal: what run this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// The scenario, as its display string.
    pub scenario: String,
    /// [`settings_digest`] of the run's settings + QSL size.
    pub digest: u64,
    /// Performance-sample population the schedule draws from.
    pub qsl_size: u64,
}

impl ToJson for RunMeta {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("kind", "meta".to_json_value()),
            ("scenario", self.scenario.to_json_value()),
            ("digest", self.digest.to_json_value()),
            ("qsl_size", self.qsl_size.to_json_value()),
        ])
    }
}

impl FromJson for RunMeta {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(RunMeta {
            scenario: value.field("scenario")?.as_str()?.to_string(),
            digest: value.field("digest")?.as_u64()?,
            qsl_size: value.field("qsl_size")?.as_u64()?,
        })
    }
}

fn rng_state_json(s: &[u64; 4]) -> JsonValue {
    JsonValue::Array(s.iter().map(|w| w.to_json_value()).collect())
}

fn rng_state_from(value: &JsonValue) -> Result<[u64; 4], JsonError> {
    let words = value.as_array()?;
    if words.len() != 4 {
        return Err(JsonError::new(format!(
            "RNG state needs 4 words, got {}",
            words.len()
        )));
    }
    Ok([
        words[0].as_u64()?,
        words[1].as_u64()?,
        words[2].as_u64()?,
        words[3].as_u64()?,
    ])
}

/// A complete image of the issue loop at one issued-query boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Checkpoint index (0-based, in journal order).
    pub seq: u64,
    /// Queries issued so far.
    pub issued: u64,
    /// Next sample (response) id to assign.
    pub next_sample_id: u64,
    /// Elapsed run clock at capture (virtual time in the DES; wall time
    /// since origin in realtime runs).
    pub wall: Nanos,
    /// The already-drawn arrival not yet issued, if any (server scenario).
    pub pending_arrival: Option<Nanos>,
    /// QSL sampling RNG state.
    pub qsl_rng: [u64; 4],
    /// Poisson schedule RNG state (server scenario; zeroes otherwise).
    pub sched_rng: [u64; 4],
    /// The Poisson process clock, as `f64` bits (server scenario).
    pub sched_now_bits: u64,
    /// Accuracy-sampling RNG state.
    pub acc_rng: [u64; 4],
    /// Wire session epoch in force at capture; 0 for purely local runs.
    pub epoch: u32,
    /// The recorder: records, outstanding queries, accuracy log, counters.
    pub recorder: RecorderSnapshot,
}

impl ToJson for Checkpoint {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("kind", "checkpoint".to_json_value()),
            ("seq", self.seq.to_json_value()),
            ("issued", self.issued.to_json_value()),
            ("next_sample_id", self.next_sample_id.to_json_value()),
            ("wall", self.wall.to_json_value()),
            ("pending_arrival", self.pending_arrival.to_json_value()),
            ("qsl_rng", rng_state_json(&self.qsl_rng)),
            ("sched_rng", rng_state_json(&self.sched_rng)),
            ("sched_now_bits", self.sched_now_bits.to_json_value()),
            ("acc_rng", rng_state_json(&self.acc_rng)),
            ("epoch", self.epoch.to_json_value()),
            ("recorder", self.recorder.to_json_value()),
        ])
    }
}

impl FromJson for Checkpoint {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Checkpoint {
            seq: value.field("seq")?.as_u64()?,
            issued: value.field("issued")?.as_u64()?,
            next_sample_id: value.field("next_sample_id")?.as_u64()?,
            wall: Nanos::from_json_value(value.field("wall")?)?,
            pending_arrival: Option::from_json_value(value.field("pending_arrival")?)?,
            qsl_rng: rng_state_from(value.field("qsl_rng")?)?,
            sched_rng: rng_state_from(value.field("sched_rng")?)?,
            sched_now_bits: value.field("sched_now_bits")?.as_u64()?,
            acc_rng: rng_state_from(value.field("acc_rng")?)?,
            epoch: value.field("epoch")?.as_u32()?,
            recorder: RecorderSnapshot::from_json_value(value.field("recorder")?)?,
        })
    }
}

/// How a journaled run checkpoints, and the chaos hooks that halt it.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Where the journal lives.
    pub path: PathBuf,
    /// Checkpoint every this many issued queries.
    pub checkpoint_every: u64,
    /// `fsync` batching window for journal appends (0 = every append).
    pub fsync_every: u32,
    /// Chaos hook: stop the run cleanly right after writing checkpoint
    /// with this `seq`, as if the process died at that boundary.
    pub halt_after: Option<u64>,
    /// Chaos hook: make the `halt_after` checkpoint a *torn* write — only
    /// a prefix of the frame lands on disk, exactly what a kill during the
    /// append leaves behind.
    pub torn_halt: bool,
    /// Live wire-session epoch, mirrored by the remote SUT client; each
    /// checkpoint captures its current value so a resumed run reconnects
    /// one epoch up. `None` for purely local runs.
    pub epoch_source: Option<Arc<AtomicU32>>,
}

impl JournalConfig {
    /// A journal at `path` with the defaults: checkpoint every 16 queries,
    /// `fsync` on every append, no chaos hooks.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            checkpoint_every: 16,
            fsync_every: 0,
            halt_after: None,
            torn_halt: false,
            epoch_source: None,
        }
    }

    /// Overrides the checkpoint interval (issued queries per checkpoint).
    pub fn with_checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Overrides the `fsync` batching window.
    pub fn with_fsync_every(mut self, n: u32) -> Self {
        self.fsync_every = n;
        self
    }

    /// Arms the clean-halt chaos hook at checkpoint `seq`.
    pub fn with_halt_after(mut self, seq: u64) -> Self {
        self.halt_after = Some(seq);
        self
    }

    /// Makes the armed halt a torn checkpoint write.
    pub fn with_torn_halt(mut self) -> Self {
        self.torn_halt = true;
        self
    }

    /// Attaches the wire client's live epoch mirror.
    pub fn with_epoch_source(mut self, source: Arc<AtomicU32>) -> Self {
        self.epoch_source = Some(source);
        self
    }
}

/// Everything a journal load recovers.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Frame 0.
    pub meta: RunMeta,
    /// The last complete checkpoint, if any was written.
    pub last: Option<Checkpoint>,
    /// Complete checkpoints on disk.
    pub checkpoints: u64,
    /// The torn tail, when the file ends in a partial frame (the resumed
    /// run rolled back to `last`, dropping the torn write).
    pub torn: Option<TornTail>,
}

fn journal_err(context: &str, e: impl std::fmt::Display) -> LoadGenError {
    LoadGenError::Journal(format!("{context}: {e}"))
}

/// Reads and validates a run journal without opening it for writing.
///
/// # Errors
///
/// Returns [`LoadGenError::Journal`] when the file is unreadable, is not a
/// run journal, or its frames do not decode.
pub fn load_run_journal(path: impl AsRef<Path>) -> Result<LoadedJournal, LoadGenError> {
    let path = path.as_ref();
    let scan = read_journal(path).map_err(|e| journal_err(&path.display().to_string(), e))?;
    parse_scan(path, scan.records, scan.torn)
}

fn parse_scan(
    path: &Path,
    records: Vec<Vec<u8>>,
    torn: Option<TornTail>,
) -> Result<LoadedJournal, LoadGenError> {
    let ctx = path.display().to_string();
    let mut frames = records.into_iter();
    let meta_bytes = frames
        .next()
        .ok_or_else(|| journal_err(&ctx, "journal has no meta frame"))?;
    let meta_text =
        String::from_utf8(meta_bytes).map_err(|e| journal_err(&ctx, format!("meta frame: {e}")))?;
    let meta = RunMeta::from_json_str(&meta_text).map_err(|e| journal_err(&ctx, e))?;
    let mut last: Option<Checkpoint> = None;
    let mut checkpoints = 0u64;
    // Checkpoint frames are deltas: each carries only the records past the
    // previous frame's *stable prefix* — records below the lowest
    // outstanding position, which can never be rewritten — plus the
    // accuracy entries appended since (so the journal grows with the run
    // plus the outstanding window, not quadratically). Fold the history
    // back together as we pass it: roll the mutable suffix back to the
    // prior stable mark, then splice in this frame's copy.
    let mut folded_records = Vec::new();
    let mut folded_accuracy = Vec::new();
    let mut stable = 0usize;
    for frame in frames {
        let text = String::from_utf8(frame)
            .map_err(|e| journal_err(&ctx, format!("checkpoint frame: {e}")))?;
        let mut cp = Checkpoint::from_json_str(&text).map_err(|e| journal_err(&ctx, e))?;
        folded_records.truncate(stable);
        folded_records.append(&mut cp.recorder.records);
        folded_accuracy.append(&mut cp.recorder.accuracy_log);
        stable = stable_prefix(&cp.recorder.outstanding, folded_records.len());
        checkpoints += 1;
        last = Some(cp);
    }
    if let Some(cp) = last.as_mut() {
        cp.recorder.records = folded_records;
        cp.recorder.accuracy_log = folded_accuracy;
    }
    Ok(LoadedJournal {
        meta,
        last,
        checkpoints,
        torn,
    })
}

/// The index below which a snapshot's records can never change again:
/// everything before the lowest outstanding position is completed and
/// immutable, while records at or past it may still be rewritten in place
/// when their query completes. Delta frames must re-send that mutable
/// suffix.
fn stable_prefix(outstanding: &[crate::record::OutstandingEntry], records: usize) -> usize {
    outstanding.iter().map(|e| e.pos).min().unwrap_or(records)
}

/// The typed writer a journaled run appends through.
#[derive(Debug)]
pub struct RunJournal {
    writer: JournalWriter,
    /// Complete checkpoints written (including any recovered on reopen).
    pub checkpoints: u64,
    /// Records durably journaled *and immutable* (the stable prefix of
    /// the last frame written); the next frame carries only records past
    /// this mark. Callers read the mark back via
    /// [`flushed_marks`](RunJournal::flushed_marks) and snapshot only the
    /// suffix; [`load_run_journal`] folds the deltas back together.
    records_flushed: usize,
    /// Same high-water mark for the accuracy log.
    accuracy_flushed: usize,
}

impl RunJournal {
    /// Creates a fresh journal for a run: header plus the meta frame,
    /// synced to disk before any query issues.
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::Journal`] on I/O failure.
    pub fn create(cfg: &JournalConfig, meta: &RunMeta) -> Result<Self, LoadGenError> {
        let ctx = cfg.path.display().to_string();
        let mut writer =
            JournalWriter::create(&cfg.path, cfg.fsync_every).map_err(|e| journal_err(&ctx, e))?;
        writer
            .append(meta.to_json_string().as_bytes())
            .and_then(|()| writer.sync())
            .map_err(|e| journal_err(&ctx, e))?;
        Ok(Self {
            writer,
            checkpoints: 0,
            records_flushed: 0,
            accuracy_flushed: 0,
        })
    }

    /// Reopens an existing journal for resumption: truncates any torn
    /// tail, parses the history, and returns the writer positioned after
    /// the last complete frame alongside what was recovered.
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::Journal`] when the file is unreadable or
    /// its frames do not decode.
    pub fn open_resume(cfg: &JournalConfig) -> Result<(Self, LoadedJournal), LoadGenError> {
        let ctx = cfg.path.display().to_string();
        let (writer, scan) = JournalWriter::open_append(&cfg.path, cfg.fsync_every)
            .map_err(|e| journal_err(&ctx, e))?;
        let loaded = parse_scan(&cfg.path, scan.records, scan.torn)?;
        let (records_flushed, accuracy_flushed) = loaded.last.as_ref().map_or((0, 0), |cp| {
            (
                stable_prefix(&cp.recorder.outstanding, cp.recorder.records.len()),
                cp.recorder.accuracy_log.len(),
            )
        });
        Ok((
            Self {
                writer,
                checkpoints: loaded.checkpoints,
                records_flushed,
                accuracy_flushed,
            },
            loaded,
        ))
    }

    /// Creates a fresh journal or reopens one for resumption, validating
    /// the meta digest on resume. Returns the journal plus the checkpoint
    /// to restore from (`None` on a fresh run, or when a resumed journal
    /// holds no complete checkpoint yet — the run then restarts from the
    /// beginning, which is exactly roll-back-and-re-execute to seq -1).
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::Journal`] on I/O failure or when a resumed
    /// journal's digest does not match `meta` (a different run's journal).
    pub fn attach(
        cfg: &JournalConfig,
        meta: &RunMeta,
        resume: bool,
    ) -> Result<(Self, Option<Checkpoint>), LoadGenError> {
        if !resume {
            return Ok((Self::create(cfg, meta)?, None));
        }
        let (journal, history) = Self::open_resume(cfg)?;
        if history.meta.digest != meta.digest {
            return Err(LoadGenError::Journal(format!(
                "journal {} was written by a different run (digest {:016x}, expected {:016x})",
                cfg.path.display(),
                history.meta.digest,
                meta.digest
            )));
        }
        Ok((journal, history.last))
    }

    /// Appends one checkpoint, honouring the config's armed chaos halt:
    /// returns `true` when this boundary is `cfg.halt_after` (after
    /// writing the frame cleanly — or tearing it, under `torn_halt` —
    /// and syncing), meaning the run must stop here as a killed process
    /// would.
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::Journal`] on I/O failure.
    pub fn append_checkpoint(
        &mut self,
        cfg: &JournalConfig,
        cp: &Checkpoint,
    ) -> Result<bool, LoadGenError> {
        if cfg.halt_after == Some(cp.seq) {
            if cfg.torn_halt {
                self.checkpoint_torn(cp)?;
            } else {
                self.checkpoint(cp)?;
                self.sync()?;
            }
            return Ok(true);
        }
        self.checkpoint(cp)?;
        Ok(false)
    }

    /// The `(records, accuracy)` high-water marks already journaled by
    /// earlier frames. Callers capture the next checkpoint's recorder
    /// with [`crate::record::Recorder::snapshot_suffix`] from exactly
    /// these marks, so building and serializing a checkpoint costs the
    /// delta — the window since the last frame plus the still-mutable
    /// outstanding suffix — not the whole run so far.
    pub fn flushed_marks(&self) -> (usize, usize) {
        (self.records_flushed, self.accuracy_flushed)
    }

    /// Appends one checkpoint frame. `cp.recorder` must be a suffix
    /// snapshot taken from this journal's [`flushed_marks`]; the frame is
    /// written as-is and [`load_run_journal`] folds the deltas back into
    /// a complete image on reload.
    ///
    /// [`flushed_marks`]: RunJournal::flushed_marks
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::Journal`] on I/O failure.
    pub fn checkpoint(&mut self, cp: &Checkpoint) -> Result<(), LoadGenError> {
        let payload = cp.to_json_string();
        self.writer
            .append(payload.as_bytes())
            .map_err(|e| journal_err("checkpoint append", e))?;
        let total = self.records_flushed + cp.recorder.records.len();
        self.records_flushed = stable_prefix(&cp.recorder.outstanding, total);
        self.accuracy_flushed += cp.recorder.accuracy_log.len();
        self.checkpoints += 1;
        Ok(())
    }

    /// The torn-halt chaos hook: writes only a prefix of the checkpoint
    /// frame — byte-for-byte what a kill mid-append leaves — and syncs it.
    /// Takes the same suffix snapshot as [`checkpoint`].
    ///
    /// [`checkpoint`]: RunJournal::checkpoint
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::Journal`] on I/O failure.
    pub fn checkpoint_torn(&mut self, cp: &Checkpoint) -> Result<(), LoadGenError> {
        let payload = cp.to_json_string();
        self.writer
            .append_torn(payload.as_bytes(), payload.len() / 2)
            .map_err(|e| journal_err("torn checkpoint append", e))
    }

    /// Forces all appended frames onto disk.
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::Journal`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), LoadGenError> {
        self.writer
            .sync()
            .map_err(|e| journal_err("journal sync", e))
    }
}

/// What a journaled run returned: either it finished, or a chaos hook
/// halted it at a checkpoint boundary (simulating process death there).
#[derive(Debug)]
pub enum JournaledRun {
    /// The run completed; the outcome is scored as usual.
    Finished(Box<crate::des::RunOutcome>),
    /// The armed halt fired right after the named checkpoint was written.
    Halted {
        /// `seq` of the checkpoint the run halted at.
        checkpoint: u64,
    },
}

impl JournaledRun {
    /// The outcome, when the run finished.
    pub fn finished(self) -> Option<crate::des::RunOutcome> {
        match self {
            JournaledRun::Finished(outcome) => Some(*outcome),
            JournaledRun::Halted { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Recorder;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mlperf_runjournal_{}_{name}.mlpj",
            std::process::id()
        ));
        p
    }

    fn sample_checkpoint(seq: u64) -> Checkpoint {
        Checkpoint {
            seq,
            issued: 32 * (seq + 1),
            next_sample_id: 64,
            wall: Nanos::from_millis(5),
            pending_arrival: Some(Nanos::from_millis(6)),
            qsl_rng: [1, 2, 3, 4],
            sched_rng: [5, 6, 7, 8],
            sched_now_bits: 0.25f64.to_bits(),
            acc_rng: [9, 10, 11, 12],
            epoch: 2,
            recorder: Recorder::new().snapshot(),
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let cp = sample_checkpoint(3);
        let back = Checkpoint::from_json_str(&cp.to_json_string()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn create_checkpoint_load_roundtrip() {
        let path = tmp("roundtrip");
        let cfg = JournalConfig::new(&path);
        let meta = RunMeta {
            scenario: "server".into(),
            digest: 0xDEAD_BEEF,
            qsl_size: 64,
        };
        let mut j = RunJournal::create(&cfg, &meta).unwrap();
        for seq in 0..3 {
            j.checkpoint(&sample_checkpoint(seq)).unwrap();
        }
        j.sync().unwrap();
        let loaded = load_run_journal(&path).unwrap();
        assert_eq!(loaded.meta, meta);
        assert_eq!(loaded.checkpoints, 3);
        assert_eq!(loaded.last.unwrap().seq, 2);
        assert!(loaded.torn.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_checkpoint_rolls_back_to_previous() {
        let path = tmp("torn");
        let cfg = JournalConfig::new(&path);
        let meta = RunMeta {
            scenario: "server".into(),
            digest: 1,
            qsl_size: 8,
        };
        let mut j = RunJournal::create(&cfg, &meta).unwrap();
        j.checkpoint(&sample_checkpoint(0)).unwrap();
        j.checkpoint_torn(&sample_checkpoint(1)).unwrap();
        let loaded = load_run_journal(&path).unwrap();
        assert_eq!(loaded.checkpoints, 1);
        assert_eq!(loaded.last.as_ref().unwrap().seq, 0);
        assert!(loaded.torn.is_some());
        // Reopen-for-resume truncates the tear and continues cleanly.
        let (mut j, _) = RunJournal::open_resume(&cfg).unwrap();
        assert_eq!(j.checkpoints, 1);
        j.checkpoint(&sample_checkpoint(1)).unwrap();
        j.sync().unwrap();
        let loaded = load_run_journal(&path).unwrap();
        assert_eq!(loaded.checkpoints, 2);
        assert!(loaded.torn.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn digest_distinguishes_runs() {
        let a = TestSettings::server(100.0, Nanos::from_millis(10)).with_min_query_count(40);
        let b = a.clone().with_min_query_count(41);
        assert_ne!(settings_digest(&a, 64), settings_digest(&b, 64));
        assert_ne!(settings_digest(&a, 64), settings_digest(&a, 65));
        assert_eq!(settings_digest(&a, 64), settings_digest(&a.clone(), 64));
    }
}

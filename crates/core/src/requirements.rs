//! Table V: query and sample requirements per task and scenario.
//!
//! The minimum query counts derive from the Table IV confidence math: the
//! scenario's QoS percentile determines the rounded query count. Vision
//! tasks guarantee the 99th percentile (270,336 queries); translation
//! guarantees the 97th (90,112, "90K"); single-stream always runs 1,024
//! queries; offline runs one query of at least 24,576 samples.

use crate::scenario::Scenario;
use mlperf_stats::confidence::{QueryCountPlan, TailLatency};

/// The QoS tail-latency class of a task (vision vs translation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Vision tasks: 99th-percentile guarantee, ≤1% overlatency.
    Vision,
    /// Translation: 97th-percentile guarantee, ≤3% overlatency.
    Translation,
}

impl QosClass {
    /// The tail-latency percentile guaranteed for this class.
    pub fn tail_latency(&self) -> TailLatency {
        match self {
            QosClass::Vision => TailLatency::P99,
            QosClass::Translation => TailLatency::P97,
        }
    }

    /// Maximum fraction of queries allowed over the bound.
    pub fn max_overlatency_fraction(&self) -> f64 {
        1.0 - self.tail_latency().fraction()
    }
}

/// Minimum queries for a task class in a scenario (Table V, left of "/").
pub fn min_query_count(scenario: Scenario, qos: QosClass) -> u64 {
    match scenario {
        Scenario::SingleStream => 1_024,
        Scenario::MultiStream | Scenario::Server => {
            QueryCountPlan::paper_default(qos.tail_latency()).rounded_queries()
        }
        Scenario::Offline => 1,
    }
}

/// Minimum samples in the single offline query (Table V, right of "/").
pub const OFFLINE_MIN_SAMPLES: u64 = 24_576;

/// Minimum run duration for every benchmark (Section III-D).
pub const MIN_DURATION_SECS: u64 = 60;

/// Number of repetitions required per scenario (Section III-D): five for
/// server (result is the minimum), one elsewhere.
pub fn required_runs(scenario: Scenario) -> u32 {
    match scenario {
        Scenario::Server => 5,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_vision_row() {
        assert_eq!(
            min_query_count(Scenario::SingleStream, QosClass::Vision),
            1_024
        );
        assert_eq!(
            min_query_count(Scenario::MultiStream, QosClass::Vision),
            270_336
        );
        assert_eq!(min_query_count(Scenario::Server, QosClass::Vision), 270_336);
        assert_eq!(min_query_count(Scenario::Offline, QosClass::Vision), 1);
    }

    #[test]
    fn table_v_translation_row() {
        assert_eq!(
            min_query_count(Scenario::Server, QosClass::Translation),
            90_112
        );
        assert_eq!(
            min_query_count(Scenario::MultiStream, QosClass::Translation),
            90_112
        );
    }

    #[test]
    fn overlatency_budgets() {
        assert!((QosClass::Vision.max_overlatency_fraction() - 0.01).abs() < 1e-12);
        assert!((QosClass::Translation.max_overlatency_fraction() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn five_server_runs() {
        assert_eq!(required_runs(Scenario::Server), 5);
        assert_eq!(required_runs(Scenario::Offline), 1);
        assert_eq!(required_runs(Scenario::SingleStream), 1);
        assert_eq!(required_runs(Scenario::MultiStream), 1);
    }

    #[test]
    fn offline_constant() {
        assert_eq!(OFFLINE_MIN_SAMPLES, 24_576);
        assert_eq!(MIN_DURATION_SECS, 60);
    }
}

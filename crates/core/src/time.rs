//! Simulation time.
//!
//! All LoadGen timestamps and durations are [`Nanos`] — unsigned nanoseconds
//! from the start of the run. The same type serves as both instant and
//! duration (the benchmark never needs negative time, and saturating
//! subtraction makes misuse loud in tests rather than undefined).

use mlperf_trace::{FromJson, JsonError, JsonValue, ToJson};

/// A timestamp or duration in nanoseconds.
///
/// # Examples
///
/// ```
/// use mlperf_loadgen::time::Nanos;
///
/// let t = Nanos::from_millis(2) + Nanos::from_micros(500);
/// assert_eq!(t.as_nanos(), 2_500_000);
/// assert!((t.as_secs_f64() - 0.0025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl ToJson for Nanos {
    fn to_json_value(&self) -> JsonValue {
        // Newtype transparency: a bare nanosecond count, as serde would emit.
        JsonValue::Int(i128::from(self.0))
    }
}

impl FromJson for Nanos {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Nanos(value.as_u64()?))
    }
}

impl Nanos {
    /// Zero time.
    pub const ZERO: Nanos = Nanos(0);
    /// One second.
    pub const SECOND: Nanos = Nanos(1_000_000_000);
    /// The farthest representable instant.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// From fractional seconds, rounding to the nearest nanosecond and
    /// clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction, `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// Multiplies a duration by an integer count (saturating, unlike a
    /// `std::ops::Mul` impl, which is why this stays an inherent method).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, count: u64) -> Nanos {
        Nanos(self.0.saturating_mul(count))
    }

    /// Converts to [`std::time::Duration`].
    pub fn to_duration(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl std::ops::Add for Nanos {
    type Output = Nanos;

    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for Nanos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<std::time::Duration> for Nanos {
    fn from(d: std::time::Duration) -> Self {
        Nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_micros(4).as_nanos(), 4_000);
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos::from_millis(500));
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_millis(5);
        let b = Nanos::from_millis(3);
        assert_eq!(a + b, Nanos::from_millis(8));
        assert_eq!(a.saturating_sub(b), Nanos::from_millis(2));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.mul(3), Nanos::from_millis(15));
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos::from_millis(8));
    }

    #[test]
    fn ordering() {
        assert!(Nanos::from_millis(1) < Nanos::from_millis(2));
        assert!(Nanos::MAX > Nanos::SECOND);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn duration_roundtrip() {
        let n = Nanos::from_millis(7);
        assert_eq!(Nanos::from(n.to_duration()), n);
    }

    #[test]
    fn json_roundtrip() {
        let n = Nanos::from_micros(1234);
        let json = n.to_json_string();
        assert_eq!(json, "1234000");
        assert_eq!(Nanos::from_json_str(&json).unwrap(), n);
    }
}

//! Structured run logs.
//!
//! The LoadGen "records queries and responses from the SUT, and at the end
//! of the run ... reports statistics, summarizes the results, and determines
//! whether the run was valid" (Section IV-B). [`RunLog`] is that artifact:
//! serializable to JSON for the submission package, with the per-query
//! detail needed for peer review and the accuracy log the accuracy script
//! consumes.

use crate::des::RunOutcome;
use crate::record::{LoggedResponse, QueryRecord};
use crate::results::TestResult;
use serde::{Deserialize, Serialize};

/// A complete, serializable record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// The scored result (also embedded in submission packages).
    pub result: TestResult,
    /// Per-query issue/completion detail.
    pub records: Vec<QueryRecord>,
    /// Logged response payloads for accuracy checking.
    pub accuracy_log: Vec<LoggedResponse>,
}

impl RunLog {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`serde_json::Error`] on serialization failure (practically
    /// impossible for these types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a previously serialized log.
    ///
    /// # Errors
    ///
    /// Returns [`serde_json::Error`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The human-readable summary block, in the spirit of
    /// `mlperf_log_summary.txt`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("================================================\n");
        out.push_str("MLPerf Results Summary\n");
        out.push_str("================================================\n");
        out.push_str(&format!("SUT      : {}\n", self.result.sut_name));
        out.push_str(&format!("QSL      : {}\n", self.result.qsl_name));
        out.push_str(&format!("Scenario : {}\n", self.result.scenario));
        out.push_str(&format!(
            "Mode     : {}\n",
            if self.result.performance_mode {
                "PerformanceOnly"
            } else {
                "AccuracyOnly"
            }
        ));
        out.push_str(&format!("Metric   : {}\n", self.result.metric));
        out.push_str(&format!(
            "Validity : {}\n",
            if self.result.is_valid() { "VALID" } else { "INVALID" }
        ));
        for issue in &self.result.validity {
            out.push_str(&format!("  * {issue}\n"));
        }
        if let Some(stats) = self.result.latency_stats {
            out.push_str("Latency  :\n");
            out.push_str(&format!("  min  {}\n", stats.min));
            out.push_str(&format!("  mean {}\n", stats.mean));
            out.push_str(&format!("  p50  {}\n", stats.p50));
            out.push_str(&format!("  p90  {}\n", stats.p90));
            out.push_str(&format!("  p97  {}\n", stats.p97));
            out.push_str(&format!("  p99  {}\n", stats.p99));
            out.push_str(&format!("  max  {}\n", stats.max));
        }
        out.push_str(&format!(
            "Queries  : {} ({} samples) over {}\n",
            self.result.query_count, self.result.sample_count, self.result.duration
        ));
        out
    }
}

impl From<RunOutcome> for RunLog {
    fn from(outcome: RunOutcome) -> Self {
        Self {
            result: outcome.result,
            records: outcome.records,
            accuracy_log: outcome.accuracy_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestSettings;
    use crate::des::run_simulated;
    use crate::qsl::MemoryQsl;
    use crate::sut::FixedLatencySut;
    use crate::time::Nanos;

    fn outcome() -> RunOutcome {
        let settings = TestSettings::single_stream()
            .with_min_query_count(16)
            .with_min_duration(Nanos::from_micros(10));
        let mut qsl = MemoryQsl::new("toy", 8, 8);
        let mut sut = FixedLatencySut::new("fixed", Nanos::from_micros(20));
        run_simulated(&settings, &mut qsl, &mut sut).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let log = RunLog::from(outcome());
        let json = log.to_json().unwrap();
        let back = RunLog::from_json(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let log = RunLog::from(outcome());
        let s = log.summary();
        assert!(s.contains("MLPerf Results Summary"));
        assert!(s.contains("fixed"));
        assert!(s.contains("toy"));
        assert!(s.contains("VALID"));
        assert!(s.contains("p90"));
    }

    #[test]
    fn invalid_runs_list_issues() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(1_000_000)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("toy", 8, 8);
        let mut sut = FixedLatencySut::new("fixed", Nanos::from_micros(20));
        // Cap the run so it terminates quickly but below the requirement:
        // min_query_count drives issuance, so use a smaller count and then
        // tighten the requirement post hoc via a manual check instead.
        let settings = settings.with_min_query_count(4);
        let mut out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        out.result.validity.push(crate::validate::ValidityIssue::TooFewQueries {
            required: 1_000_000,
            observed: 4,
        });
        let log = RunLog::from(out);
        assert!(log.summary().contains("INVALID"));
        assert!(log.summary().contains("too few queries"));
    }
}

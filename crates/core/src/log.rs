//! Structured run logs.
//!
//! The LoadGen "records queries and responses from the SUT, and at the end
//! of the run ... reports statistics, summarizes the results, and determines
//! whether the run was valid" (Section IV-B). [`RunLog`] is that artifact:
//! serializable to JSON for the submission package, with the per-query
//! detail needed for peer review, the accuracy log the accuracy script
//! consumes, and (when tracing was on) the run's metrics snapshot so
//! submission packages carry the latency histograms.

use crate::des::RunOutcome;
use crate::record::{LoggedResponse, QueryRecord};
use crate::results::TestResult;
use mlperf_trace::{FromJson, JsonError, JsonValue, MetricsSnapshot, ToJson};
use std::fmt::Write as _;

/// A complete, serializable record of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// The scored result (also embedded in submission packages).
    pub result: TestResult,
    /// Per-query issue/completion detail.
    pub records: Vec<QueryRecord>,
    /// Logged response payloads for accuracy checking.
    pub accuracy_log: Vec<LoggedResponse>,
    /// Counters, gauges, and latency histograms gathered during the run;
    /// `None` for runs executed without a metrics registry.
    pub metrics: Option<MetricsSnapshot>,
}

impl RunLog {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_pretty())
    }

    /// Parses a previously serialized log.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Self::from_json_str(json)
    }

    /// The human-readable summary block, in the spirit of
    /// `mlperf_log_summary.txt`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        // String's fmt::Write never fails; discard the Ok(()) results.
        let _ = writeln!(out, "================================================");
        let _ = writeln!(out, "MLPerf Results Summary");
        let _ = writeln!(out, "================================================");
        let _ = writeln!(out, "SUT      : {}", self.result.sut_name);
        let _ = writeln!(out, "QSL      : {}", self.result.qsl_name);
        let _ = writeln!(out, "Scenario : {}", self.result.scenario);
        let _ = writeln!(
            out,
            "Mode     : {}",
            if self.result.performance_mode {
                "PerformanceOnly"
            } else {
                "AccuracyOnly"
            }
        );
        let _ = writeln!(out, "Metric   : {}", self.result.metric);
        let _ = writeln!(
            out,
            "Validity : {}",
            if self.result.is_valid() {
                "VALID"
            } else {
                "INVALID"
            }
        );
        for issue in &self.result.validity {
            let _ = writeln!(out, "  * {issue}");
        }
        if let Some(stats) = self.result.latency_stats {
            let _ = writeln!(out, "Latency  :");
            let _ = writeln!(out, "  min   {}", stats.min);
            let _ = writeln!(out, "  mean  {}", stats.mean);
            let _ = writeln!(out, "  p50   {}", stats.p50);
            let _ = writeln!(out, "  p90   {}", stats.p90);
            let _ = writeln!(out, "  p97   {}", stats.p97);
            let _ = writeln!(out, "  p99   {}", stats.p99);
            let _ = writeln!(out, "  p99.9 {}", stats.p999);
            let _ = writeln!(out, "  max   {}", stats.max);
        }
        let _ = writeln!(
            out,
            "Queries  : {} ({} samples) over {}",
            self.result.query_count, self.result.sample_count, self.result.duration
        );
        out
    }
}

impl ToJson for RunLog {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("result", self.result.to_json_value()),
            ("records", self.records.to_json_value()),
            ("accuracy_log", self.accuracy_log.to_json_value()),
            ("metrics", self.metrics.to_json_value()),
        ])
    }
}

impl FromJson for RunLog {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(RunLog {
            result: TestResult::from_json_value(value.field("result")?)?,
            records: Vec::from_json_value(value.field("records")?)?,
            accuracy_log: Vec::from_json_value(value.field("accuracy_log")?)?,
            // Absent in logs predating the metrics registry.
            metrics: match value.get("metrics") {
                Some(v) => Option::from_json_value(v)?,
                None => None,
            },
        })
    }
}

impl From<RunOutcome> for RunLog {
    fn from(outcome: RunOutcome) -> Self {
        Self {
            result: outcome.result,
            records: outcome.records,
            accuracy_log: outcome.accuracy_log,
            metrics: outcome.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestSettings;
    use crate::des::run_simulated;
    use crate::qsl::MemoryQsl;
    use crate::sut::FixedLatencySut;
    use crate::time::Nanos;

    fn outcome() -> RunOutcome {
        let settings = TestSettings::single_stream()
            .with_min_query_count(16)
            .with_min_duration(Nanos::from_micros(10));
        let mut qsl = MemoryQsl::new("toy", 8, 8);
        let mut sut = FixedLatencySut::new("fixed", Nanos::from_micros(20));
        run_simulated(&settings, &mut qsl, &mut sut).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let log = RunLog::from(outcome());
        let json = log.to_json().unwrap();
        let back = RunLog::from_json(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn log_without_metrics_field_parses() {
        let mut log = RunLog::from(outcome());
        log.metrics = None;
        let json = log.to_json().unwrap();
        // Simulate a pre-metrics log by dropping the field entirely.
        let doc = JsonValue::parse(&json).unwrap();
        let trimmed = match doc {
            JsonValue::Object(fields) => {
                JsonValue::Object(fields.into_iter().filter(|(k, _)| k != "metrics").collect())
            }
            other => other,
        };
        let back = RunLog::from_json(&trimmed.to_compact()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let log = RunLog::from(outcome());
        let s = log.summary();
        assert!(s.contains("MLPerf Results Summary"));
        assert!(s.contains("fixed"));
        assert!(s.contains("toy"));
        assert!(s.contains("VALID"));
        assert!(s.contains("p90"));
        assert!(s.contains("p99.9"));
    }

    #[test]
    fn invalid_runs_list_issues() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(1_000_000)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("toy", 8, 8);
        let mut sut = FixedLatencySut::new("fixed", Nanos::from_micros(20));
        // Cap the run so it terminates quickly but below the requirement:
        // min_query_count drives issuance, so use a smaller count and then
        // tighten the requirement post hoc via a manual check instead.
        let settings = settings.with_min_query_count(4);
        let mut out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        out.result
            .validity
            .push(crate::validate::ValidityIssue::TooFewQueries {
                required: 1_000_000,
                observed: 4,
            });
        let log = RunLog::from(out);
        assert!(log.summary().contains("INVALID"));
        assert!(log.summary().contains("too few queries"));
    }
}

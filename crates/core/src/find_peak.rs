//! FindPeakPerformance searches.
//!
//! The server metric is "the Poisson parameter that indicates the
//! queries-per-second achievable while meeting the QoS requirement" and the
//! multistream metric is "the integer number of streams that the system
//! supports while meeting the QoS requirement" (Section III-C). Submitters
//! find those maxima by rerunning the LoadGen at different target loads;
//! this module automates the search against simulated SUTs.

use crate::config::TestSettings;
use crate::des::{run_simulated, RunOutcome};
use crate::instrument::Instruments;
use crate::qsl::QuerySampleLibrary;
use crate::scenario::Scenario;
use crate::sut::SimSut;
use crate::LoadGenError;
use mlperf_trace::{profile_span, TraceEvent, TraceSink};

/// Search controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSearchOptions {
    /// Relative QPS tolerance at which the server bisection stops.
    pub relative_tolerance: f64,
    /// Safety cap on benchmark reruns.
    pub max_runs: u32,
}

impl Default for PeakSearchOptions {
    fn default() -> Self {
        Self {
            relative_tolerance: 0.01,
            max_runs: 64,
        }
    }
}

/// Outcome of a peak search.
#[derive(Debug, Clone)]
pub struct PeakResult {
    /// The highest load that produced a VALID run.
    pub peak: f64,
    /// The outcome of that valid run.
    pub outcome: RunOutcome,
    /// How many LoadGen runs the search consumed.
    pub runs: u32,
}

/// How a peak search ended.
///
/// A search that never finds a valid operating point is not a caller error:
/// a SUT can be genuinely hopeless for the workload, or it can *die* partway
/// through the search (fault injection, a real device falling off the bus).
/// Both must terminate the search with a structured verdict rather than loop
/// or panic, so degraded hardware shows up in reports as an aborted search
/// with a reason, not as a crash.
#[derive(Debug, Clone)]
pub enum PeakSearchOutcome {
    /// The search converged on a valid operating point.
    Converged(Box<PeakResult>),
    /// The search gave up: no probed load ever produced a VALID run.
    Aborted {
        /// Human-readable explanation of why the search stopped.
        reason: String,
        /// How many LoadGen runs the search consumed before giving up.
        runs: u32,
    },
}

impl PeakSearchOutcome {
    /// Consumes the outcome, returning the converged result if any.
    pub fn converged(self) -> Option<PeakResult> {
        match self {
            Self::Converged(result) => Some(*result),
            Self::Aborted { .. } => None,
        }
    }

    /// The peak load, if the search converged.
    pub fn peak(&self) -> Option<f64> {
        match self {
            Self::Converged(result) => Some(result.peak),
            Self::Aborted { .. } => None,
        }
    }

    /// True if the search gave up without a valid operating point.
    pub fn is_aborted(&self) -> bool {
        matches!(self, Self::Aborted { .. })
    }
}

/// Finds the peak valid server QPS by exponential growth + bisection.
///
/// `settings` must be a server-scenario configuration; its
/// `server_target_qps` seeds the search. A SUT with no valid operating
/// point (including one that dies mid-search) yields
/// [`PeakSearchOutcome::Aborted`] — the search always terminates.
///
/// # Errors
///
/// Returns [`LoadGenError::BadSettings`] if the scenario is not server, and
/// propagates any run error.
pub fn find_peak_server_qps<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    options: PeakSearchOptions,
) -> Result<PeakSearchOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    find_peak_server_qps_instrumented(settings, qsl, sut, options, &Instruments::none())
}

/// [`find_peak_server_qps`] with a trace sink: each probed operating point
/// emits a [`TraceEvent::PeakSearchStep`], stamped with the step ordinal
/// (the inner runs each restart simulated time at zero, so their clocks
/// cannot order the steps).
///
/// # Errors
///
/// Same contract as [`find_peak_server_qps`].
pub fn find_peak_server_qps_traced<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    options: PeakSearchOptions,
    sink: &dyn TraceSink,
) -> Result<PeakSearchOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    find_peak_server_qps_instrumented(settings, qsl, sut, options, &Instruments::traced(sink))
}

/// The one real server peak search; the plain and `_traced` entry points
/// are thin wrappers over it.
///
/// Only the search itself is instrumented (step events on the sink, a
/// profiler span per probe); the inner LoadGen runs stay uninstrumented
/// because each restarts simulated time at zero, which would scramble a
/// sampler or trace timeline.
///
/// # Errors
///
/// Same contract as [`find_peak_server_qps`].
pub fn find_peak_server_qps_instrumented<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    options: PeakSearchOptions,
    instruments: &Instruments<'_>,
) -> Result<PeakSearchOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    profile_span!("loadgen/peak_search_server");
    let sink = instruments.sink;
    if settings.scenario != Scenario::Server {
        return Err(LoadGenError::BadSettings(
            "find_peak_server_qps requires the server scenario".into(),
        ));
    }
    let mut runs = 0u32;
    let try_qps = |qps: f64, qsl: &mut Q, sut: &mut S, runs: &mut u32| {
        profile_span!("loadgen/peak_probe");
        *runs += 1;
        let s = settings.clone().with_server_target_qps(qps);
        let out = run_simulated(&s, qsl, sut);
        if sink.enabled() {
            if let Ok(out) = &out {
                sink.record(
                    u64::from(*runs),
                    &TraceEvent::PeakSearchStep {
                        target: qps,
                        valid: out.result.is_valid(),
                    },
                );
            }
        }
        out
    };
    // Shrink until valid.
    let mut lo = settings.server_target_qps.max(1e-6);
    let mut best: Option<(f64, RunOutcome)>;
    loop {
        if runs >= options.max_runs {
            return Ok(PeakSearchOutcome::Aborted {
                reason: format!(
                    "no valid server operating point found within {} runs",
                    options.max_runs
                ),
                runs,
            });
        }
        let out = try_qps(lo, qsl, sut, &mut runs)?;
        if out.result.is_valid() {
            best = Some((lo, out));
            break;
        }
        lo /= 2.0;
        if lo < 1e-6 {
            return Ok(PeakSearchOutcome::Aborted {
                reason: "SUT cannot sustain any server load; every probed rate \
                         down to 1e-6 qps went INVALID"
                    .into(),
                runs,
            });
        }
    }
    // Grow until invalid.
    let mut hi = lo * 2.0;
    loop {
        if runs >= options.max_runs {
            break;
        }
        let out = try_qps(hi, qsl, sut, &mut runs)?;
        if out.result.is_valid() {
            best = Some((hi, out));
            lo = hi;
            hi *= 2.0;
        } else {
            break;
        }
    }
    // Bisect.
    while runs < options.max_runs && (hi - lo) / lo > options.relative_tolerance {
        let mid = (lo + hi) / 2.0;
        let out = try_qps(mid, qsl, sut, &mut runs)?;
        if out.result.is_valid() {
            best = Some((mid, out));
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (peak, outcome) = best.expect("loop established a valid point");
    Ok(PeakSearchOutcome::Converged(Box::new(PeakResult {
        peak,
        outcome,
        runs,
    })))
}

/// Finds the maximum valid multistream stream count (samples per query).
///
/// Yields [`PeakSearchOutcome::Aborted`] if even one stream is
/// unsustainable.
///
/// # Errors
///
/// Returns [`LoadGenError::BadSettings`] if the scenario is not multistream,
/// and propagates run errors.
pub fn find_peak_multistream<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    options: PeakSearchOptions,
) -> Result<PeakSearchOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    find_peak_multistream_instrumented(settings, qsl, sut, options, &Instruments::none())
}

/// [`find_peak_multistream`] with a trace sink; see
/// [`find_peak_server_qps_traced`] for the event contract.
///
/// # Errors
///
/// Same contract as [`find_peak_multistream`].
pub fn find_peak_multistream_traced<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    options: PeakSearchOptions,
    sink: &dyn TraceSink,
) -> Result<PeakSearchOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    find_peak_multistream_instrumented(settings, qsl, sut, options, &Instruments::traced(sink))
}

/// The one real multistream peak search; see
/// [`find_peak_server_qps_instrumented`] for the instrumentation contract.
///
/// # Errors
///
/// Same contract as [`find_peak_multistream`].
pub fn find_peak_multistream_instrumented<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    options: PeakSearchOptions,
    instruments: &Instruments<'_>,
) -> Result<PeakSearchOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    profile_span!("loadgen/peak_search_multistream");
    let sink = instruments.sink;
    if settings.scenario != Scenario::MultiStream {
        return Err(LoadGenError::BadSettings(
            "find_peak_multistream requires the multistream scenario".into(),
        ));
    }
    let mut runs = 0u32;
    let try_n = |n: usize, qsl: &mut Q, sut: &mut S, runs: &mut u32| {
        profile_span!("loadgen/peak_probe");
        *runs += 1;
        let s = settings.clone().with_samples_per_query(n);
        let out = run_simulated(&s, qsl, sut);
        if sink.enabled() {
            if let Ok(out) = &out {
                sink.record(
                    u64::from(*runs),
                    &TraceEvent::PeakSearchStep {
                        target: n as f64,
                        valid: out.result.is_valid(),
                    },
                );
            }
        }
        out
    };
    let first = try_n(1, qsl, sut, &mut runs)?;
    if !first.result.is_valid() {
        return Ok(PeakSearchOutcome::Aborted {
            reason: "SUT cannot sustain even a single multistream stream".into(),
            runs,
        });
    }
    let mut best = (1usize, first);
    // Exponential growth.
    let mut hi = 2usize;
    let mut lo = 1usize;
    while runs < options.max_runs {
        let out = try_n(hi, qsl, sut, &mut runs)?;
        if out.result.is_valid() {
            lo = hi;
            best = (hi, out);
            hi *= 2;
        } else {
            break;
        }
    }
    // Integer bisection.
    while runs < options.max_runs && hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let out = try_n(mid, qsl, sut, &mut runs)?;
        if out.result.is_valid() {
            lo = mid;
            best = (mid, out);
        } else {
            hi = mid;
        }
    }
    Ok(PeakSearchOutcome::Converged(Box::new(PeakResult {
        peak: best.0 as f64,
        outcome: best.1,
        runs,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qsl::MemoryQsl;
    use crate::sut::FixedLatencySut;
    use crate::time::Nanos;

    fn server_settings() -> TestSettings {
        TestSettings::server(100.0, Nanos::from_millis(10))
            .with_min_query_count(2_000)
            .with_min_duration(Nanos::from_millis(1))
    }

    #[test]
    fn server_peak_close_to_service_rate() {
        // A 1 ms serial server saturates at 1000 qps; queueing at the p99
        // bound caps the valid Poisson rate somewhat below that.
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(1));
        let peak = find_peak_server_qps(
            &server_settings(),
            &mut qsl,
            &mut sut,
            PeakSearchOptions::default(),
        )
        .unwrap()
        .converged()
        .expect("search converges");
        assert!(
            (500.0..1_000.0).contains(&peak.peak),
            "peak={} runs={}",
            peak.peak,
            peak.runs
        );
        assert!(peak.outcome.result.is_valid());
    }

    #[test]
    fn faster_sut_higher_peak() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut fast = FixedLatencySut::new("f", Nanos::from_micros(100));
        let mut slow = FixedLatencySut::new("sl", Nanos::from_millis(2));
        let pf = find_peak_server_qps(
            &server_settings(),
            &mut qsl,
            &mut fast,
            PeakSearchOptions::default(),
        )
        .unwrap()
        .converged()
        .unwrap();
        let ps = find_peak_server_qps(
            &server_settings(),
            &mut qsl,
            &mut slow,
            PeakSearchOptions::default(),
        )
        .unwrap()
        .converged()
        .unwrap();
        assert!(pf.peak > 3.0 * ps.peak, "fast={} slow={}", pf.peak, ps.peak);
    }

    #[test]
    fn multistream_peak_matches_interval_budget() {
        // 50 ms interval, 2 ms per sample: 25 samples fit exactly; the peak
        // must be 25 (completion at exactly the boundary is legal).
        let settings = TestSettings::multi_stream(1, Nanos::from_millis(50))
            .with_min_query_count(200)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(2));
        let peak =
            find_peak_multistream(&settings, &mut qsl, &mut sut, PeakSearchOptions::default())
                .unwrap()
                .converged()
                .unwrap();
        assert_eq!(peak.peak as usize, 25, "runs={}", peak.runs);
    }

    #[test]
    fn multistream_hopeless_sut_aborts() {
        let settings = TestSettings::multi_stream(1, Nanos::from_millis(10))
            .with_min_query_count(50)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(25));
        let outcome =
            find_peak_multistream(&settings, &mut qsl, &mut sut, PeakSearchOptions::default())
                .unwrap();
        match outcome {
            PeakSearchOutcome::Aborted { reason, runs } => {
                assert!(reason.contains("single multistream stream"), "{reason}");
                assert_eq!(runs, 1);
            }
            PeakSearchOutcome::Converged(p) => panic!("hopeless SUT converged at {}", p.peak),
        }
    }

    #[test]
    fn dead_server_sut_aborts_instead_of_looping() {
        /// Accepts queries and never completes any — the shape of a device
        /// that died before the search started.
        struct DeadSut;
        impl crate::sut::SimSut for DeadSut {
            fn name(&self) -> &str {
                "dead"
            }
            fn on_query(
                &mut self,
                _now: Nanos,
                _query: &crate::query::Query,
            ) -> crate::sut::SutReaction {
                crate::sut::SutReaction::none()
            }
        }
        let settings = TestSettings::server(100.0, Nanos::from_millis(10))
            .with_min_query_count(20)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let outcome = find_peak_server_qps(
            &settings,
            &mut qsl,
            &mut DeadSut,
            PeakSearchOptions::default(),
        )
        .unwrap();
        match outcome {
            PeakSearchOutcome::Aborted { reason, runs } => {
                assert!(reason.contains("cannot sustain"), "{reason}");
                assert!(runs > 0 && runs <= PeakSearchOptions::default().max_runs);
            }
            PeakSearchOutcome::Converged(p) => panic!("dead SUT converged at {}", p.peak),
        }
    }

    #[test]
    fn traced_search_emits_one_step_per_run() {
        use mlperf_trace::RingBufferSink;
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(1));
        let sink = RingBufferSink::unbounded();
        let peak = find_peak_server_qps_traced(
            &server_settings(),
            &mut qsl,
            &mut sut,
            PeakSearchOptions::default(),
            &sink,
        )
        .unwrap()
        .converged()
        .unwrap();
        let records = sink.snapshot();
        assert_eq!(records.len() as u32, peak.runs);
        let mut saw_valid = false;
        for r in &records {
            match &r.event {
                mlperf_trace::TraceEvent::PeakSearchStep { target, valid } => {
                    assert!(*target > 0.0);
                    saw_valid |= valid;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(saw_valid, "search found a valid operating point");
    }

    #[test]
    fn wrong_scenario_rejected() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_millis(1));
        assert!(find_peak_server_qps(
            &TestSettings::offline(),
            &mut qsl,
            &mut sut,
            PeakSearchOptions::default()
        )
        .is_err());
        assert!(find_peak_multistream(
            &TestSettings::offline(),
            &mut qsl,
            &mut sut,
            PeakSearchOptions::default()
        )
        .is_err());
    }
}

//! Run-validity rules.
//!
//! A run is VALID only if it satisfies every applicable rule: the Table V
//! minimum query count, the 60-second minimum duration, the scenario's
//! latency constraint at its percentile (Table III), the multistream
//! skipped-interval budget, and the offline minimum sample count. The
//! result-review process (Section V-B) found ~40 rule violations among ~180
//! closed-division results, so the checks are load-bearing.

use crate::config::TestSettings;
use crate::record::QueryRecord;
use crate::scenario::Scenario;
use crate::time::Nanos;
use mlperf_trace::{FromJson, JsonError, JsonValue, ToJson};

/// A specific rule violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidityIssue {
    /// Fewer queries than Table V requires.
    TooFewQueries {
        /// Required count.
        required: u64,
        /// Observed count.
        observed: u64,
    },
    /// The run finished before the 60-second minimum.
    RunTooShort {
        /// Required duration.
        required: Nanos,
        /// Observed duration.
        observed: Nanos,
    },
    /// The tail-latency percentile exceeded the scenario bound.
    LatencyBoundExceeded {
        /// The percentile checked (e.g. 99).
        percentile: f64,
        /// The bound (Table III).
        bound: Nanos,
        /// The observed percentile latency.
        observed: Nanos,
    },
    /// Multistream: too many queries caused skipped intervals.
    TooManySkippedIntervals {
        /// Maximum permitted fraction (0.01).
        max_fraction: f64,
        /// Observed fraction.
        observed: f64,
    },
    /// Offline: the single query carried too few samples.
    TooFewSamples {
        /// Required samples (24,576).
        required: u64,
        /// Observed samples.
        observed: u64,
    },
    /// Some queries never completed.
    IncompleteQueries {
        /// Number of unfinished queries.
        outstanding: u64,
    },
    /// Too many queries resolved as errors/drops.
    ErrorFractionExceeded {
        /// Maximum permitted fraction of errored queries.
        max_fraction: f64,
        /// Observed fraction.
        observed: f64,
    },
}

impl ValidityIssue {
    /// Stable snake_case kind label — never the `Display` string, which
    /// carries run-dependent counts and durations. These labels are the
    /// constraint names the analysis subsystem and the chaos matrix key on.
    pub fn kind(&self) -> &'static str {
        match self {
            ValidityIssue::TooFewQueries { .. } => "too_few_queries",
            ValidityIssue::RunTooShort { .. } => "run_too_short",
            ValidityIssue::LatencyBoundExceeded { .. } => "latency_bound_exceeded",
            ValidityIssue::TooManySkippedIntervals { .. } => "too_many_skipped_intervals",
            ValidityIssue::TooFewSamples { .. } => "too_few_samples",
            ValidityIssue::IncompleteQueries { .. } => "incomplete_queries",
            ValidityIssue::ErrorFractionExceeded { .. } => "error_fraction_exceeded",
        }
    }
}

impl ToJson for ValidityIssue {
    fn to_json_value(&self) -> JsonValue {
        let (name, payload) = match self {
            ValidityIssue::TooFewQueries { required, observed } => (
                "TooFewQueries",
                JsonValue::object(vec![
                    ("required", required.to_json_value()),
                    ("observed", observed.to_json_value()),
                ]),
            ),
            ValidityIssue::RunTooShort { required, observed } => (
                "RunTooShort",
                JsonValue::object(vec![
                    ("required", required.to_json_value()),
                    ("observed", observed.to_json_value()),
                ]),
            ),
            ValidityIssue::LatencyBoundExceeded {
                percentile,
                bound,
                observed,
            } => (
                "LatencyBoundExceeded",
                JsonValue::object(vec![
                    ("percentile", percentile.to_json_value()),
                    ("bound", bound.to_json_value()),
                    ("observed", observed.to_json_value()),
                ]),
            ),
            ValidityIssue::TooManySkippedIntervals {
                max_fraction,
                observed,
            } => (
                "TooManySkippedIntervals",
                JsonValue::object(vec![
                    ("max_fraction", max_fraction.to_json_value()),
                    ("observed", observed.to_json_value()),
                ]),
            ),
            ValidityIssue::TooFewSamples { required, observed } => (
                "TooFewSamples",
                JsonValue::object(vec![
                    ("required", required.to_json_value()),
                    ("observed", observed.to_json_value()),
                ]),
            ),
            ValidityIssue::IncompleteQueries { outstanding } => (
                "IncompleteQueries",
                JsonValue::object(vec![("outstanding", outstanding.to_json_value())]),
            ),
            ValidityIssue::ErrorFractionExceeded {
                max_fraction,
                observed,
            } => (
                "ErrorFractionExceeded",
                JsonValue::object(vec![
                    ("max_fraction", max_fraction.to_json_value()),
                    ("observed", observed.to_json_value()),
                ]),
            ),
        };
        JsonValue::object(vec![(name, payload)])
    }
}

impl FromJson for ValidityIssue {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let (name, p) = value.as_variant()?;
        match name {
            "TooFewQueries" => Ok(ValidityIssue::TooFewQueries {
                required: p.field("required")?.as_u64()?,
                observed: p.field("observed")?.as_u64()?,
            }),
            "RunTooShort" => Ok(ValidityIssue::RunTooShort {
                required: Nanos::from_json_value(p.field("required")?)?,
                observed: Nanos::from_json_value(p.field("observed")?)?,
            }),
            "LatencyBoundExceeded" => Ok(ValidityIssue::LatencyBoundExceeded {
                percentile: p.field("percentile")?.as_f64()?,
                bound: Nanos::from_json_value(p.field("bound")?)?,
                observed: Nanos::from_json_value(p.field("observed")?)?,
            }),
            "TooManySkippedIntervals" => Ok(ValidityIssue::TooManySkippedIntervals {
                max_fraction: p.field("max_fraction")?.as_f64()?,
                observed: p.field("observed")?.as_f64()?,
            }),
            "TooFewSamples" => Ok(ValidityIssue::TooFewSamples {
                required: p.field("required")?.as_u64()?,
                observed: p.field("observed")?.as_u64()?,
            }),
            "IncompleteQueries" => Ok(ValidityIssue::IncompleteQueries {
                outstanding: p.field("outstanding")?.as_u64()?,
            }),
            "ErrorFractionExceeded" => Ok(ValidityIssue::ErrorFractionExceeded {
                max_fraction: p.field("max_fraction")?.as_f64()?,
                observed: p.field("observed")?.as_f64()?,
            }),
            other => Err(JsonError::new(format!("unknown validity issue {other:?}"))),
        }
    }
}

impl std::fmt::Display for ValidityIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidityIssue::TooFewQueries { required, observed } => {
                write!(f, "too few queries: {observed} < {required}")
            }
            ValidityIssue::RunTooShort { required, observed } => {
                write!(f, "run too short: {observed} < {required}")
            }
            ValidityIssue::LatencyBoundExceeded {
                percentile,
                bound,
                observed,
            } => write!(f, "p{percentile} latency {observed} exceeds bound {bound}"),
            ValidityIssue::TooManySkippedIntervals {
                max_fraction,
                observed,
            } => write!(
                f,
                "skipped-interval fraction {observed:.4} exceeds {max_fraction:.4}"
            ),
            ValidityIssue::TooFewSamples { required, observed } => {
                write!(f, "too few samples: {observed} < {required}")
            }
            ValidityIssue::IncompleteQueries { outstanding } => {
                write!(f, "{outstanding} queries never completed")
            }
            ValidityIssue::ErrorFractionExceeded {
                max_fraction,
                observed,
            } => write!(
                f,
                "errored-query fraction {observed:.4} exceeds {max_fraction:.4}"
            ),
        }
    }
}

/// Checks a completed run against every applicable rule.
///
/// `duration` is first-issue → last-completion; `outstanding` counts queries
/// that never completed.
pub fn check_run(
    settings: &TestSettings,
    records: &[QueryRecord],
    duration: Nanos,
    outstanding: u64,
) -> Vec<ValidityIssue> {
    let mut issues = Vec::new();
    let issued = records.len() as u64;
    if outstanding > 0 {
        issues.push(ValidityIssue::IncompleteQueries { outstanding });
    }
    // Error-fraction rule (fault-injection extension, all scenarios): a run
    // whose SUT errored/dropped more than `max_error_fraction` of its
    // queries is INVALID regardless of how fast the surviving queries were.
    if issued > 0 {
        let errored = records.iter().filter(|r| r.error).count();
        let fraction = errored as f64 / issued as f64;
        if fraction > settings.max_error_fraction {
            issues.push(ValidityIssue::ErrorFractionExceeded {
                max_fraction: settings.max_error_fraction,
                observed: fraction,
            });
        }
    }
    if issued < settings.min_query_count {
        issues.push(ValidityIssue::TooFewQueries {
            required: settings.min_query_count,
            observed: issued,
        });
    }
    if duration < settings.min_duration {
        issues.push(ValidityIssue::RunTooShort {
            required: settings.min_duration,
            observed: duration,
        });
    }
    match settings.scenario {
        Scenario::Server => {
            if let Some(observed) =
                percentile_latency(records, settings.target_latency_percentile.fraction())
            {
                if observed > settings.target_latency {
                    issues.push(ValidityIssue::LatencyBoundExceeded {
                        percentile: settings.target_latency_percentile.value(),
                        bound: settings.target_latency,
                        observed,
                    });
                }
            }
        }
        Scenario::MultiStream => {
            let skippers = records.iter().filter(|r| r.skipped_intervals > 0).count();
            if issued > 0 {
                let fraction = skippers as f64 / issued as f64;
                if fraction > settings.multistream_max_skip_fraction {
                    issues.push(ValidityIssue::TooManySkippedIntervals {
                        max_fraction: settings.multistream_max_skip_fraction,
                        observed: fraction,
                    });
                }
            }
        }
        Scenario::Offline => {
            let samples: u64 = records.iter().map(|r| r.sample_count as u64).sum();
            if samples < settings.offline_min_sample_count {
                issues.push(ValidityIssue::TooFewSamples {
                    required: settings.offline_min_sample_count,
                    observed: samples,
                });
            }
        }
        Scenario::SingleStream => {}
    }
    issues
}

/// Nearest-rank selection from a **sorted ascending** slice.
///
/// This is the one percentile definition shared by the validity rules
/// ([`percentile_latency`]) and the reported latency statistics
/// ([`LatencyStats`]), so a run can never pass the p99 bound while
/// reporting a p99 above it. The rule, including its tie-breaking and
/// rounding behaviour:
///
/// * `rank = ceil(fraction * n)`, clamped to `[1, n]`, 1-indexed.
/// * The result is `sorted[rank - 1]` — always an **observed** value, never
///   an interpolation. Rounding is therefore *up*: for n = 100 and
///   fraction 0.99 the 99th of 100 values is chosen, so exactly one value
///   may sit above the p99 without moving it.
/// * Ties need no special handling: equal values occupy adjacent ranks and
///   nearest-rank selection picks the same value for any rank in the tie.
///
/// Returns `None` only for an empty slice.
///
/// [`LatencyStats`]: crate::results::LatencyStats
pub fn nearest_rank<T: Copy>(sorted: &[T], fraction: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (fraction * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Nearest-rank percentile over *scored* latencies of completed queries.
///
/// Errored queries count as infinitely late ([`Nanos::MAX`] via
/// [`QueryRecord::scored_latency`]), so enough failures push any percentile
/// past any finite bound — errors cannot hide from the server p99 rule.
pub fn percentile_latency(records: &[QueryRecord], fraction: f64) -> Option<Nanos> {
    let mut latencies: Vec<Nanos> = records
        .iter()
        .filter_map(QueryRecord::scored_latency)
        .collect();
    latencies.sort_unstable();
    nearest_rank(&latencies, fraction)
}

/// Fraction of completed queries whose *scored* latency exceeds `bound`
/// (errored queries always count as over the bound).
pub fn overlatency_fraction(records: &[QueryRecord], bound: Nanos) -> f64 {
    let scored: Vec<Nanos> = records
        .iter()
        .filter_map(QueryRecord::scored_latency)
        .collect();
    if scored.is_empty() {
        return 0.0;
    }
    scored.iter().filter(|l| **l > bound).count() as f64 / scored.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestSettings;

    fn record(id: u64, scheduled_us: u64, completed_us: u64) -> QueryRecord {
        QueryRecord {
            id,
            scheduled_at: Nanos::from_micros(scheduled_us),
            issued_at: Nanos::from_micros(scheduled_us),
            completed_at: Some(Nanos::from_micros(completed_us)),
            sample_count: 1,
            skipped_intervals: 0,
            error: false,
        }
    }

    fn errored(id: u64, scheduled_us: u64, completed_us: u64) -> QueryRecord {
        QueryRecord {
            error: true,
            ..record(id, scheduled_us, completed_us)
        }
    }

    #[test]
    fn clean_run_is_valid() {
        let s = TestSettings::single_stream()
            .with_min_query_count(2)
            .with_min_duration(Nanos::from_micros(10));
        let records = vec![record(0, 0, 10), record(1, 10, 25)];
        assert!(check_run(&s, &records, Nanos::from_micros(25), 0).is_empty());
    }

    #[test]
    fn too_few_queries_detected() {
        let s = TestSettings::single_stream()
            .with_min_query_count(5)
            .with_min_duration(Nanos::ZERO);
        let issues = check_run(&s, &[record(0, 0, 10)], Nanos::from_micros(10), 0);
        assert!(matches!(
            issues[0],
            ValidityIssue::TooFewQueries {
                required: 5,
                observed: 1
            }
        ));
    }

    #[test]
    fn short_run_detected() {
        let s = TestSettings::single_stream()
            .with_min_query_count(1)
            .with_min_duration(Nanos::from_secs(60));
        let issues = check_run(&s, &[record(0, 0, 10)], Nanos::from_micros(10), 0);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidityIssue::RunTooShort { .. })));
    }

    #[test]
    fn server_latency_bound_checked_at_percentile() {
        let s = TestSettings::server(10.0, Nanos::from_micros(20))
            .with_min_query_count(1)
            .with_min_duration(Nanos::ZERO);
        // 100 queries, one (the p100) over the bound: p99 is exactly at the
        // 99th rank which is still under the bound.
        let mut records: Vec<QueryRecord> = (0..99).map(|i| record(i, 0, 15)).collect();
        records.push(record(99, 0, 1_000));
        let issues = check_run(&s, &records, Nanos::from_secs(61), 0);
        assert!(issues.is_empty(), "{issues:?}");
        // Two slow queries push the p99 over.
        records.push(record(100, 0, 1_000));
        records.push(record(101, 0, 1_000));
        let issues = check_run(&s, &records, Nanos::from_secs(61), 0);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidityIssue::LatencyBoundExceeded { .. })));
    }

    #[test]
    fn multistream_skip_budget() {
        let mut s = TestSettings::multi_stream(2, Nanos::from_millis(50))
            .with_min_query_count(1)
            .with_min_duration(Nanos::ZERO);
        s.multistream_max_skip_fraction = 0.01;
        let mut records: Vec<QueryRecord> = (0..199).map(|i| record(i, 0, 10)).collect();
        let mut bad = record(199, 0, 10);
        bad.skipped_intervals = 2;
        records.push(bad);
        // 1/200 = 0.5% skippers: fine.
        assert!(check_run(&s, &records, Nanos::from_secs(61), 0).is_empty());
        // 5/200 = 2.5%: violation.
        for r in records.iter_mut().take(4) {
            r.skipped_intervals = 1;
        }
        let issues = check_run(&s, &records, Nanos::from_secs(61), 0);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidityIssue::TooManySkippedIntervals { .. })));
    }

    #[test]
    fn offline_sample_minimum() {
        let s = TestSettings::offline()
            .with_min_duration(Nanos::ZERO)
            .with_offline_min_sample_count(100);
        let mut r = record(0, 0, 10);
        r.sample_count = 99;
        let issues = check_run(&s, &[r.clone()], Nanos::from_secs(61), 0);
        assert!(matches!(
            issues[0],
            ValidityIssue::TooFewSamples {
                required: 100,
                observed: 99
            }
        ));
        r.sample_count = 100;
        assert!(check_run(&s, &[r], Nanos::from_secs(61), 0).is_empty());
    }

    #[test]
    fn incomplete_queries_detected() {
        let s = TestSettings::single_stream()
            .with_min_query_count(1)
            .with_min_duration(Nanos::ZERO);
        let issues = check_run(&s, &[record(0, 0, 10)], Nanos::from_secs(61), 3);
        assert!(matches!(
            issues[0],
            ValidityIssue::IncompleteQueries { outstanding: 3 }
        ));
    }

    #[test]
    fn helpers() {
        let records = vec![record(0, 0, 10), record(1, 0, 20), record(2, 0, 30)];
        assert_eq!(
            percentile_latency(&records, 0.5),
            Some(Nanos::from_micros(20))
        );
        assert!((overlatency_fraction(&records, Nanos::from_micros(15)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(percentile_latency(&[], 0.5), None);
        assert_eq!(overlatency_fraction(&[], Nanos::ZERO), 0.0);
    }

    #[test]
    fn nearest_rank_rule() {
        let v = [10u64, 20, 20, 30];
        // ceil(0.5 * 4) = 2 -> second value; the tie at 20 is immaterial.
        assert_eq!(nearest_rank(&v, 0.5), Some(20));
        // ceil(0.99 * 4) = 4 -> the maximum.
        assert_eq!(nearest_rank(&v, 0.99), Some(30));
        // Fractions at/below 1/n clamp to the minimum rank.
        assert_eq!(nearest_rank(&v, 0.0), Some(10));
        assert_eq!(nearest_rank(&v, 1.0), Some(30));
        assert_eq!(nearest_rank::<u64>(&[], 0.5), None);
    }

    #[test]
    fn errored_queries_count_against_server_bound() {
        let s = TestSettings::server(10.0, Nanos::from_micros(20))
            .with_min_query_count(1)
            .with_min_duration(Nanos::ZERO)
            .with_max_error_fraction(1.0);
        // 98 fast successes + 2 errors: the p99 rank lands on Nanos::MAX.
        let mut records: Vec<QueryRecord> = (0..98).map(|i| record(i, 0, 15)).collect();
        records.push(errored(98, 0, 15));
        records.push(errored(99, 0, 15));
        let issues = check_run(&s, &records, Nanos::from_secs(61), 0);
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, ValidityIssue::LatencyBoundExceeded { .. })),
            "{issues:?}"
        );
        // A single error among 100 hides below the p99 rank.
        let mut records: Vec<QueryRecord> = (0..99).map(|i| record(i, 0, 15)).collect();
        records.push(errored(99, 0, 15));
        assert!(check_run(&s, &records, Nanos::from_secs(61), 0).is_empty());
    }

    #[test]
    fn error_fraction_rule_across_scenarios() {
        // The error-fraction rule applies to every scenario; the
        // latency-bound rule only to Server. Cross them: for each scenario,
        // (a) all-success baseline VALID, (b) errors above the threshold
        // INVALID via ErrorFractionExceeded, (c) errors at/below the
        // threshold tolerated, (d) for Server, errors also interact with
        // the overlatency bound independently of the fraction rule.
        let scenarios = [
            TestSettings::single_stream(),
            TestSettings::multi_stream(1, Nanos::from_millis(50)),
            TestSettings::server(10.0, Nanos::from_micros(20)),
            TestSettings::offline(),
        ];
        for base in scenarios {
            let scenario = base.scenario;
            let s = base
                .with_min_query_count(1)
                .with_min_duration(Nanos::ZERO)
                .with_offline_min_sample_count(1)
                .with_max_error_fraction(0.05);
            // (a) Baseline: 100 fast successes.
            let ok: Vec<QueryRecord> = (0..100).map(|i| record(i, 0, 15)).collect();
            assert!(
                check_run(&s, &ok, Nanos::from_secs(61), 0).is_empty(),
                "{scenario:?} baseline"
            );
            // (b) 10% errors: ErrorFractionExceeded in every scenario.
            let mut bad = ok.clone();
            for r in bad.iter_mut().take(10) {
                r.error = true;
            }
            let issues = check_run(&s, &bad, Nanos::from_secs(61), 0);
            assert!(
                issues.iter().any(|i| matches!(
                    i,
                    ValidityIssue::ErrorFractionExceeded { max_fraction, observed }
                        if *max_fraction == 0.05 && (*observed - 0.10).abs() < 1e-12
                )),
                "{scenario:?}: {issues:?}"
            );
            // (c) 5% errors: within tolerance — but for Server they still
            // push the p99 (rank 100 of 100 scored latencies ... rank 95+
            // are Nanos::MAX) over the bound.
            let mut edge = ok.clone();
            for r in edge.iter_mut().take(5) {
                r.error = true;
            }
            let issues = check_run(&s, &edge, Nanos::from_secs(61), 0);
            assert!(
                !issues
                    .iter()
                    .any(|i| matches!(i, ValidityIssue::ErrorFractionExceeded { .. })),
                "{scenario:?}: 5% errors must pass the fraction rule: {issues:?}"
            );
            if scenario == Scenario::Server {
                assert!(
                    issues
                        .iter()
                        .any(|i| matches!(i, ValidityIssue::LatencyBoundExceeded { .. })),
                    "{scenario:?}: 5% errors must still break the p99 bound: {issues:?}"
                );
            } else {
                assert!(issues.is_empty(), "{scenario:?}: {issues:?}");
            }
        }
    }

    #[test]
    fn issue_json_roundtrip() {
        let issues = [
            ValidityIssue::TooFewQueries {
                required: 1,
                observed: 0,
            },
            ValidityIssue::LatencyBoundExceeded {
                percentile: 99.0,
                bound: Nanos::SECOND,
                observed: Nanos::from_secs(2),
            },
            ValidityIssue::IncompleteQueries { outstanding: 4 },
            ValidityIssue::ErrorFractionExceeded {
                max_fraction: 0.0,
                observed: 0.25,
            },
        ];
        for issue in issues {
            let json = issue.to_json_string();
            assert_eq!(
                ValidityIssue::from_json_str(&json).unwrap(),
                issue,
                "{json}"
            );
        }
    }

    #[test]
    fn issue_display_nonempty() {
        let issues = [
            ValidityIssue::TooFewQueries {
                required: 1,
                observed: 0,
            },
            ValidityIssue::RunTooShort {
                required: Nanos::SECOND,
                observed: Nanos::ZERO,
            },
            ValidityIssue::LatencyBoundExceeded {
                percentile: 99.0,
                bound: Nanos::SECOND,
                observed: Nanos::SECOND,
            },
            ValidityIssue::TooManySkippedIntervals {
                max_fraction: 0.01,
                observed: 0.5,
            },
            ValidityIssue::TooFewSamples {
                required: 2,
                observed: 1,
            },
            ValidityIssue::IncompleteQueries { outstanding: 1 },
            ValidityIssue::ErrorFractionExceeded {
                max_fraction: 0.0,
                observed: 1.0,
            },
        ];
        for i in issues {
            assert!(!i.to_string().is_empty());
        }
    }
}

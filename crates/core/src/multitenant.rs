//! The multitenancy extension.
//!
//! Section IV-B notes the LoadGen "is extensible to support more scenarios,
//! such as a multitenancy mode where the SUT must continuously serve
//! multiple models while maintaining QoS constraints." This module
//! implements that mode for the server scenario: every tenant gets its own
//! Poisson arrival stream, seeds, latency bound, and Table V minimums, all
//! hitting *one* shared SUT; each tenant's run is scored and validated
//! independently.
//!
//! Queries carry [`Query::tenant`](crate::query::Query::tenant), and query
//! ids encode the tenant in the top byte so completions route back without
//! any side channel.

use crate::config::{TestMode, TestSettings};
use crate::des::{finish_run, RunOutcome};
use crate::instrument::Instruments;
use crate::qsl::QuerySampleLibrary;
use crate::query::{Query, QueryCompletion, QuerySample};
use crate::record::Recorder;
use crate::scenario::Scenario;
use crate::sut::{SimSut, SutReaction};
use crate::time::Nanos;
use crate::LoadGenError;
use mlperf_stats::dist::PoissonProcess;
use mlperf_stats::Rng64;
use mlperf_trace::{profile_span, MetricsRegistry, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bits reserved for the per-tenant sequence number inside a query id.
const TENANT_SHIFT: u32 = 56;

/// Extracts the tenant index from a multitenant query id.
pub fn tenant_of(query_id: u64) -> u32 {
    (query_id >> TENANT_SHIFT) as u32
}

#[derive(Debug)]
enum EventKind {
    Arrival(usize),
    Wakeup,
    Completion(QueryCompletion),
}

#[derive(Debug)]
struct Event {
    at: Nanos,
    order: u8,
    seq: u64,
    kind: EventKind,
}

impl Event {
    fn key(&self) -> (Nanos, u8, u64) {
        (self.at, self.order, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct Tenant {
    settings: TestSettings,
    arrivals: Box<dyn Iterator<Item = Nanos>>,
    qsl_rng: Rng64,
    population: usize,
    issued: u64,
    recorder: Recorder,
    acc_rng: Rng64,
}

/// Runs several server-scenario streams concurrently against one SUT.
///
/// Each element of `tenants` pairs that tenant's settings with its QSL;
/// settings must use [`Scenario::Server`] and performance mode. Returns one
/// [`RunOutcome`] per tenant, in input order — a tenant is only as good as
/// its own validity, so a shared SUT that starves one model FAILS that
/// model's run even if the other sails through.
///
/// # Errors
///
/// Returns [`LoadGenError::BadSettings`] for non-server settings, more than
/// 255 tenants, or an unusable QSL, and [`LoadGenError::SutProtocol`] if
/// the SUT misroutes completions.
pub fn run_multitenant_server<Q, S>(
    tenants: &mut [(&TestSettings, &mut Q)],
    sut: &mut S,
) -> Result<Vec<RunOutcome>, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    run_multitenant_server_instrumented(tenants, sut, &Instruments::none())
}

/// [`run_multitenant_server`] with a trace sink attached.
///
/// All tenants' events interleave into one stream in simulated-time order,
/// which is exactly what a cross-tenant timeline needs; the tenant is
/// recoverable from the query id via [`tenant_of`].
///
/// # Errors
///
/// Same contract as [`run_multitenant_server`].
pub fn run_multitenant_server_traced<Q, S>(
    tenants: &mut [(&TestSettings, &mut Q)],
    sut: &mut S,
    sink: &dyn TraceSink,
) -> Result<Vec<RunOutcome>, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    run_multitenant_server_instrumented(tenants, sut, &Instruments::traced(sink))
}

/// The one real multitenant loop; the plain and `_traced` entry points are
/// thin wrappers over it.
///
/// An attached [`mlperf_trace::TimeSeriesSampler`] observes the *combined*
/// load: rows are emitted as the interleaved event stream crosses interval
/// boundaries, so the time series shows cross-tenant aggregate throughput
/// and latency, not any single tenant's view. Metrics (whether a supplied
/// registry or a run-private one) aggregate across tenants the same way.
///
/// # Errors
///
/// Same contract as [`run_multitenant_server`].
pub fn run_multitenant_server_instrumented<Q, S>(
    tenants: &mut [(&TestSettings, &mut Q)],
    sut: &mut S,
    instruments: &Instruments<'_>,
) -> Result<Vec<RunOutcome>, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    profile_span!("loadgen/multitenant_run");
    let sink = instruments.sink;
    if tenants.is_empty() {
        return Err(LoadGenError::BadSettings(
            "multitenant run needs at least one tenant".into(),
        ));
    }
    if tenants.len() > 255 {
        return Err(LoadGenError::BadSettings(
            "query ids encode the tenant in one byte; at most 255 tenants".into(),
        ));
    }
    sut.reset();
    let mut states = Vec::with_capacity(tenants.len());
    for (settings, qsl) in tenants.iter_mut() {
        settings.validate()?;
        if settings.scenario != Scenario::Server || settings.mode != TestMode::PerformanceOnly {
            return Err(LoadGenError::BadSettings(
                "multitenant mode currently supports performance-mode server streams".into(),
            ));
        }
        if qsl.performance_sample_count() == 0 {
            return Err(LoadGenError::BadQsl(format!(
                "QSL {} has no samples",
                qsl.name()
            )));
        }
        let loaded: Vec<usize> = (0..qsl.performance_sample_count()).collect();
        qsl.load_samples(&loaded);
        let arrivals = PoissonProcess::new(
            settings.server_target_qps,
            Rng64::new(settings.seeds.schedule_seed),
        )
        .map_err(|e| LoadGenError::BadSettings(e.to_string()))?
        .map(Nanos::from_secs_f64);
        states.push(Tenant {
            settings: (*settings).clone(),
            arrivals: Box::new(arrivals),
            qsl_rng: Rng64::new(settings.seeds.qsl_seed),
            population: loaded.len(),
            issued: 0,
            recorder: Recorder::new(),
            acc_rng: Rng64::new(settings.seeds.accuracy_seed),
        });
    }

    let own_registry =
        (instruments.metrics.is_none() && instruments.wants_metrics()).then(MetricsRegistry::new);
    let registry = instruments.metrics.or(own_registry.as_ref());

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut sample_id = 0u64;
    // Prime each tenant's first arrival.
    let mut pending_arrivals: Vec<Option<Nanos>> = Vec::with_capacity(states.len());
    for (t, state) in states.iter_mut().enumerate() {
        let at = state.arrivals.next().expect("poisson process is infinite");
        pending_arrivals.push(Some(at));
        seq += 1;
        heap.push(Reverse(Event {
            at,
            order: 0,
            seq,
            kind: EventKind::Arrival(t),
        }));
    }

    let mut events = 0u64;
    let mut horizon = Nanos::ZERO;
    while let Some(Reverse(event)) = heap.pop() {
        events += 1;
        if events > 200_000_000 {
            return Err(LoadGenError::SutProtocol(
                "multitenant event budget exhausted; SUT appears to loop".into(),
            ));
        }
        horizon = horizon.max(event.at);
        // Sample *before* the event is processed, so each row reflects the
        // state strictly up to its interval boundary.
        if let (Some(sampler), Some(metrics)) = (instruments.sampler, registry) {
            sampler.advance_to(event.at.as_nanos(), metrics);
        }
        match event.kind {
            EventKind::Arrival(t) => {
                profile_span!("loadgen/mt_arrival");
                let state = &mut states[t];
                let at = pending_arrivals[t]
                    .take()
                    .expect("arrival event without pending arrival");
                let indices = state
                    .qsl_rng
                    .sample_with_replacement(state.population, state.settings.samples_per_query);
                let id = ((t as u64) << TENANT_SHIFT) | state.issued;
                let samples = indices
                    .into_iter()
                    .map(|index| {
                        let sid = sample_id;
                        sample_id += 1;
                        QuerySample { id: sid, index }
                    })
                    .collect();
                let query = Query {
                    id,
                    samples,
                    scheduled_at: at,
                    tenant: t as u32,
                };
                state.issued += 1;
                state.recorder.record_issue(&query, at)?;
                if let Some(m) = registry {
                    m.incr("queries_issued", 1);
                    m.incr("samples_issued", query.sample_count() as u64);
                }
                if sink.enabled() {
                    sink.record(
                        at.as_nanos(),
                        &TraceEvent::QueryIssued {
                            query_id: id,
                            sample_count: query.sample_count(),
                            delay_ns: 0,
                        },
                    );
                }
                let reaction = sut.on_query(at, &query);
                if sink.enabled() {
                    sink.record(at.as_nanos(), &TraceEvent::QuerySent { query_id: id });
                }
                apply(&mut heap, &mut seq, at, reaction)?;
                let next = state.arrivals.next().expect("poisson process is infinite");
                if state.issued < state.settings.min_query_count
                    || next < state.settings.min_duration
                {
                    pending_arrivals[t] = Some(next);
                    seq += 1;
                    heap.push(Reverse(Event {
                        at: next,
                        order: 0,
                        seq,
                        kind: EventKind::Arrival(t),
                    }));
                }
            }
            EventKind::Wakeup => {
                profile_span!("loadgen/mt_wakeup");
                let reaction = sut.on_wakeup(event.at);
                apply(&mut heap, &mut seq, event.at, reaction)?;
            }
            EventKind::Completion(completion) => {
                profile_span!("loadgen/mt_completion");
                let t = tenant_of(completion.query_id) as usize;
                let state = states.get_mut(t).ok_or_else(|| {
                    LoadGenError::SutProtocol(format!("completion routed to unknown tenant {t}"))
                })?;
                let p = state.settings.accuracy_log_probability;
                let rng = &mut state.acc_rng;
                let latency = state
                    .recorder
                    .record_completion(&completion, |_| p > 0.0 && rng.next_bool(p))?;
                if completion.error {
                    if let Some(m) = registry {
                        m.incr("queries_errored", 1);
                    }
                    if sink.enabled() {
                        sink.record(
                            completion.finished_at.as_nanos(),
                            &TraceEvent::QueryErrored {
                                query_id: completion.query_id,
                                latency_ns: latency.as_nanos(),
                            },
                        );
                    }
                } else {
                    if let Some(m) = registry {
                        m.incr("queries_completed", 1);
                        m.incr("samples_completed", completion.samples.len() as u64);
                        m.observe("query_latency_ns", latency.as_nanos());
                    }
                    if sink.enabled() {
                        sink.record(
                            completion.finished_at.as_nanos(),
                            &TraceEvent::QueryCompleted {
                                query_id: completion.query_id,
                                latency_ns: latency.as_nanos(),
                            },
                        );
                    }
                }
            }
        }
    }

    if let (Some(sampler), Some(metrics)) = (instruments.sampler, registry) {
        sampler.finish(horizon.as_nanos(), metrics);
    }
    let mut outcomes = Vec::with_capacity(states.len());
    {
        profile_span!("loadgen/score");
        for (state, (_, qsl)) in states.into_iter().zip(tenants.iter_mut()) {
            // Mirror run_simulated: unload what was loaded at start.
            let loaded: Vec<usize> = (0..state.population).collect();
            qsl.unload_samples(&loaded);
            outcomes.push(finish_run(
                &state.settings,
                sut.name(),
                qsl.name(),
                state.recorder,
                sink,
                registry,
            ));
        }
    }
    sink.flush();
    Ok(outcomes)
}

fn apply(
    heap: &mut BinaryHeap<Reverse<Event>>,
    seq: &mut u64,
    now: Nanos,
    reaction: SutReaction,
) -> Result<(), LoadGenError> {
    for completion in reaction.completions {
        if completion.finished_at < now {
            return Err(LoadGenError::SutProtocol(format!(
                "query {} completion stamped {} in the past of {}",
                completion.query_id, completion.finished_at, now
            )));
        }
        *seq += 1;
        heap.push(Reverse(Event {
            at: completion.finished_at,
            order: 2,
            seq: *seq,
            kind: EventKind::Completion(completion),
        }));
    }
    if let Some(at) = reaction.wakeup_at {
        if at < now {
            return Err(LoadGenError::SutProtocol(format!(
                "wakeup requested at {at}, before now {now}"
            )));
        }
        *seq += 1;
        heap.push(Reverse(Event {
            at,
            order: 1,
            seq: *seq,
            kind: EventKind::Wakeup,
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qsl::MemoryQsl;
    use crate::sut::FixedLatencySut;

    fn settings(qps: f64, bound_ms: u64, count: u64) -> TestSettings {
        TestSettings::server(qps, Nanos::from_millis(bound_ms))
            .with_min_query_count(count)
            .with_min_duration(Nanos::from_millis(5))
    }

    #[test]
    fn two_light_tenants_both_valid() {
        let a = settings(200.0, 10, 300);
        let b = settings(100.0, 20, 150);
        let mut qa = MemoryQsl::new("tenant-a", 64, 64);
        let mut qb = MemoryQsl::new("tenant-b", 64, 64);
        let mut sut = FixedLatencySut::new("shared", Nanos::from_micros(100));
        let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> = vec![(&a, &mut qa), (&b, &mut qb)];
        let outcomes = run_multitenant_server(&mut tenants, &mut sut).unwrap();
        assert_eq!(outcomes.len(), 2);
        for (i, out) in outcomes.iter().enumerate() {
            assert!(
                out.result.is_valid(),
                "tenant {i}: {:?}",
                out.result.validity
            );
        }
        assert_eq!(outcomes[0].result.query_count, 300);
        assert_eq!(outcomes[1].result.query_count, 150);
        assert_eq!(outcomes[1].result.qsl_name, "tenant-b");
    }

    #[test]
    fn ring_buffer_preserves_order_and_monotonic_time() {
        use mlperf_trace::RingBufferSink;
        let a = settings(300.0, 10, 200);
        let b = settings(150.0, 20, 100);
        let mut qa = MemoryQsl::new("tenant-a", 64, 64);
        let mut qb = MemoryQsl::new("tenant-b", 64, 64);
        let mut sut = FixedLatencySut::new("shared", Nanos::from_micros(100));
        let sink = RingBufferSink::unbounded();
        let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> = vec![(&a, &mut qa), (&b, &mut qb)];
        run_multitenant_server_traced(&mut tenants, &mut sut, &sink).unwrap();
        let records = sink.snapshot();
        assert_eq!(sink.dropped(), 0);

        // The DES portion (query lifecycle events from both interleaved
        // tenants) must come out of the buffer in simulated-time order;
        // only the per-tenant end-of-run reports, stamped with each
        // tenant's own duration, may rewind.
        let lifecycle: Vec<&mlperf_trace::TraceRecord> = records
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::QueryIssued { .. }
                        | TraceEvent::QuerySent { .. }
                        | TraceEvent::QueryCompleted { .. }
                )
            })
            .collect();
        assert!(lifecycle.len() >= 3 * 300, "both tenants fully traced");
        assert!(
            lifecycle.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "ring buffer must preserve monotonic simulated time"
        );

        // Per query, the issue -> sent -> completed order survives, for
        // queries of both tenants.
        let mut phase: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for r in &lifecycle {
            match r.event {
                TraceEvent::QueryIssued { query_id, .. } => {
                    assert_eq!(phase.insert(query_id, 1), None);
                }
                TraceEvent::QuerySent { query_id } => {
                    assert_eq!(phase.insert(query_id, 2), Some(1));
                }
                TraceEvent::QueryCompleted { query_id, .. } => {
                    assert_eq!(phase.insert(query_id, 3), Some(2));
                }
                _ => unreachable!(),
            }
        }
        assert!(phase.keys().any(|id| tenant_of(*id) == 0));
        assert!(phase.keys().any(|id| tenant_of(*id) == 1));
        assert!(phase.values().all(|p| *p == 3), "every query completes");
    }

    #[test]
    fn contention_hurts_the_tight_tenant() {
        // Alone, tenant A (1 ms bound, 1.8k qps, 500 us service) would be
        // marginal; with a heavy co-tenant it must fail its bound.
        let a = settings(900.0, 1, 400);
        let heavy = settings(900.0, 1_000, 400);
        let mut qa = MemoryQsl::new("a", 64, 64);
        let mut qh = MemoryQsl::new("heavy", 64, 64);
        let mut sut = FixedLatencySut::new("shared", Nanos::from_micros(500));
        let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> =
            vec![(&a, &mut qa), (&heavy, &mut qh)];
        let outcomes = run_multitenant_server(&mut tenants, &mut sut).unwrap();
        assert!(
            !outcomes[0].result.is_valid(),
            "shared contention must break the 1 ms tenant"
        );
        // The loose tenant is fine.
        assert!(
            outcomes[1].result.is_valid(),
            "{:?}",
            outcomes[1].result.validity
        );
    }

    #[test]
    fn isolation_baseline_beats_contention() {
        // p90 with a co-tenant must be no better than alone.
        let a = settings(500.0, 50, 400);
        let run_with = |co_qps: Option<f64>| {
            let mut qa = MemoryQsl::new("a", 64, 64);
            let mut sut = FixedLatencySut::new("shared", Nanos::from_micros(400));
            match co_qps {
                None => {
                    let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> = vec![(&a, &mut qa)];
                    run_multitenant_server(&mut tenants, &mut sut)
                        .unwrap()
                        .remove(0)
                }
                Some(qps) => {
                    let b = settings(qps, 1_000, 400);
                    let mut qb = MemoryQsl::new("b", 64, 64);
                    let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> =
                        vec![(&a, &mut qa), (&b, &mut qb)];
                    run_multitenant_server(&mut tenants, &mut sut)
                        .unwrap()
                        .remove(0)
                }
            }
        };
        let alone = run_with(None).result.latency_stats.unwrap().p90;
        let contended = run_with(Some(800.0)).result.latency_stats.unwrap().p90;
        assert!(
            contended > alone,
            "contended p90 {contended} should exceed isolated p90 {alone}"
        );
    }

    #[test]
    fn tenant_id_roundtrip() {
        assert_eq!(tenant_of((7u64 << 56) | 123), 7);
        assert_eq!(tenant_of(99), 0);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(1));
        let mut empty: Vec<(&TestSettings, &mut MemoryQsl)> = vec![];
        assert!(run_multitenant_server(&mut empty, &mut sut).is_err());
        let offline = TestSettings::offline();
        let mut q = MemoryQsl::new("q", 8, 8);
        let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> = vec![(&offline, &mut q)];
        assert!(run_multitenant_server(&mut tenants, &mut sut).is_err());
    }
}

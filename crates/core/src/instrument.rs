//! The instrumentation bundle threaded through the issue loops.
//!
//! PR 1 grew `*_traced` twins of every runner; this module collapses the
//! pattern: each runner has **one** real implementation taking an
//! [`Instruments`] value, and the plain / `_traced` entry points are thin
//! wrappers over it. The bundle carries everything observability-related
//! so future additions extend one struct instead of multiplying entry
//! points:
//!
//! * a [`TraceSink`] for the simulated-time detail log (PR 1),
//! * an optional [`TimeSeriesSampler`] snapshotting run metrics on a
//!   simulated-time grid,
//! * an optional externally owned [`MetricsRegistry`], letting the caller
//!   share one registry between the LoadGen loop and device engines (and
//!   the sampler) instead of the run creating a private one.

use mlperf_trace::{MetricsRegistry, NoopSink, TimeSeriesSampler, TraceSink};

/// Observability hooks for one run. Cheap to construct; all fields borrow.
#[derive(Clone, Copy)]
pub struct Instruments<'a> {
    /// Destination for simulated-time trace events ([`NoopSink`] = off).
    pub sink: &'a dyn TraceSink,
    /// Optional simulated-time metrics sampler.
    pub sampler: Option<&'a TimeSeriesSampler>,
    /// Optional shared metrics registry. When `None`, the run creates its
    /// own registry if (and only if) the sink is enabled or a sampler is
    /// attached, matching PR 1's behavior.
    pub metrics: Option<&'a MetricsRegistry>,
}

impl std::fmt::Debug for Instruments<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instruments")
            .field("sink_enabled", &self.sink.enabled())
            .field("sampler", &self.sampler.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl Default for Instruments<'static> {
    fn default() -> Self {
        Self::none()
    }
}

impl<'a> Instruments<'a> {
    /// No instrumentation: noop sink, no sampler, no shared registry.
    pub fn none() -> Instruments<'static> {
        Instruments {
            sink: &NoopSink,
            sampler: None,
            metrics: None,
        }
    }

    /// Tracing only — the PR 1 `*_traced` contract.
    pub fn traced(sink: &'a dyn TraceSink) -> Self {
        Instruments {
            sink,
            sampler: None,
            metrics: None,
        }
    }

    /// Attaches a time-series sampler.
    #[must_use]
    pub fn with_sampler(mut self, sampler: &'a TimeSeriesSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Uses a caller-owned metrics registry instead of a run-private one.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &'a MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Whether the run needs a metrics registry at all: one was supplied,
    /// the sink wants events, or a sampler needs something to sample.
    pub(crate) fn wants_metrics(&self) -> bool {
        self.metrics.is_some() || self.sink.enabled() || self.sampler.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert() {
        let i = Instruments::default();
        assert!(!i.sink.enabled());
        assert!(i.sampler.is_none());
        assert!(i.metrics.is_none());
        assert!(!i.wants_metrics());
    }

    #[test]
    fn builders_arm_metrics_creation() {
        let registry = MetricsRegistry::new();
        let sampler = TimeSeriesSampler::new(1_000);
        assert!(Instruments::none().with_metrics(&registry).wants_metrics());
        assert!(Instruments::none().with_sampler(&sampler).wants_metrics());
        let sink = mlperf_trace::RingBufferSink::unbounded();
        assert!(Instruments::traced(&sink).wants_metrics());
    }

    #[test]
    fn debug_is_informative() {
        let text = format!("{:?}", Instruments::default());
        assert!(text.contains("sink_enabled: false"), "{text}");
    }
}

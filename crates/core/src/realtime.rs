//! The wall-clock issue loop.
//!
//! Drives a [`RealtimeSut`] exactly the way the reference C++ LoadGen drives
//! a real system: real sleeps between arrivals, a worker pool for the server
//! scenario's concurrent queries, and `Instant`-based latency measurement.
//! The rulebook (seeding, scheduling, validation, metrics) is shared with
//! the simulated loop, so the two runners agree wherever timing permits —
//! an integration test asserts that.
//!
//! Unlike the simulated loop, a realtime SUT can fail *structurally*: the
//! wire extension puts the LoadGen/SUT boundary on a socket, and sockets
//! disconnect. [`RealtimeSut::issue_outcome`] reports those failures and
//! this loop folds them into the PR 3 completion path — an erroring remote
//! becomes errored completions (`ErrorFractionExceeded`), a silently
//! dropped query stays outstanding (`IncompleteQueries`) — so a dying
//! server yields a structured INVALID verdict, never a hang.
//!
//! Official experiments in this repository use the simulated loop; this one
//! exists for fidelity to the original system, for exercising real
//! concurrency in tests and the quickstart example, and as the client-side
//! engine of the network SUT benchmark (`netbench`).

use crate::config::{TestMode, TestSettings};
use crate::des::{finish_run, RunOutcome, ServerCursor};
use crate::journal::{
    settings_digest, Checkpoint, JournalConfig, JournaledRun, RunJournal, RunMeta,
};
use crate::qsl::QuerySampleLibrary;
use crate::query::{Query, QueryCompletion};
use crate::record::Recorder;
use crate::scenario::Scenario;
use crate::schedule::build_query;
use crate::sut::{IssueOutcome, RealtimeSut};
use crate::time::Nanos;
use crate::LoadGenError;
use mlperf_stats::dist::PoissonProcess;
use mlperf_stats::Rng64;
use mlperf_trace::{NoopSink, TraceEvent, TraceSink};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Runs one benchmark against a wall clock.
///
/// # Errors
///
/// Returns [`LoadGenError`] for inconsistent settings, an unusable QSL, or
/// SUT protocol violations.
pub fn run_realtime<Q>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    run_realtime_traced(settings, qsl, sut, &NoopSink)
}

/// Runs one wall-clock benchmark with a detail-log sink attached.
///
/// Issue, completion, and error events land in `sink` with wall-clock
/// timestamps (nanoseconds since run start). This is the realtime analog
/// of `run_simulated_traced`, and what the TEST06 completeness audit reads
/// when the SUT lives on the far side of a socket.
///
/// # Errors
///
/// Returns [`LoadGenError`] for inconsistent settings, an unusable QSL, or
/// SUT protocol violations.
pub fn run_realtime_traced<Q>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
    sink: &dyn TraceSink,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    run_realtime_traced_at(settings, qsl, sut, sink, Instant::now())
}

/// [`run_realtime_traced`] with an explicit clock origin.
///
/// Every timestamp in the detail log is measured from `origin` instead of
/// "now". Pass the instant another instrumented component (e.g. a wire
/// client) started its own clock at, and both event streams land on a
/// single shared time axis — the merged cross-host detail log depends on
/// this.
///
/// # Errors
///
/// Returns [`LoadGenError`] for inconsistent settings, an unusable QSL, or
/// SUT protocol violations.
pub fn run_realtime_traced_at<Q>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
    sink: &dyn TraceSink,
    origin: Instant,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    settings.validate()?;
    if qsl.total_sample_count() == 0 || qsl.performance_sample_count() == 0 {
        return Err(LoadGenError::BadQsl(format!(
            "QSL {} has no samples",
            qsl.name()
        )));
    }
    let loaded: Vec<usize> = match settings.mode {
        TestMode::PerformanceOnly => (0..qsl.performance_sample_count()).collect(),
        TestMode::AccuracyOnly => (0..qsl.total_sample_count()).collect(),
    };
    qsl.load_samples(&loaded);
    if sink.enabled() {
        sink.record(
            0,
            &TraceEvent::RunPhase {
                phase: "issue".into(),
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let mut recorder = Recorder::new();
    match settings.mode {
        TestMode::AccuracyOnly => run_batch(
            settings,
            &loaded,
            sut.as_ref(),
            &mut recorder,
            1.0,
            sink,
            origin,
        )?,
        TestMode::PerformanceOnly => match settings.scenario {
            Scenario::SingleStream => run_single_stream(
                settings,
                loaded.len(),
                sut.as_ref(),
                &mut recorder,
                sink,
                origin,
            )?,
            Scenario::MultiStream => run_multi_stream(
                settings,
                loaded.len(),
                sut.as_ref(),
                &mut recorder,
                sink,
                origin,
            )?,
            Scenario::Server => {
                run_server(settings, loaded.len(), &sut, &mut recorder, sink, origin)?
            }
            Scenario::Offline => {
                let mut rng = Rng64::new(settings.seeds.qsl_seed);
                let indices = rng.sample_with_replacement(
                    loaded.len(),
                    settings.offline_min_sample_count as usize,
                );
                run_batch(
                    settings,
                    &indices,
                    sut.as_ref(),
                    &mut recorder,
                    settings.accuracy_log_probability,
                    sink,
                    origin,
                )?
            }
        },
    }
    qsl.unload_samples(&loaded);
    Ok(finish_run(
        settings,
        sut.name(),
        qsl.name(),
        recorder,
        sink,
        None,
    ))
}

pub(crate) fn log_sampler(settings: &TestSettings, probability: f64) -> impl FnMut(u64) -> bool {
    let mut rng = Rng64::new(settings.seeds.accuracy_seed);
    move |_| probability > 0.0 && rng.next_bool(probability)
}

pub(crate) fn record_issue_event(sink: &dyn TraceSink, query: &Query, issued_at: Nanos) {
    if sink.enabled() {
        sink.record(
            issued_at.as_nanos(),
            &TraceEvent::QueryIssued {
                query_id: query.id,
                sample_count: query.sample_count(),
                delay_ns: issued_at.saturating_sub(query.scheduled_at).as_nanos(),
            },
        );
    }
}

/// Resolves one [`IssueOutcome`] into the recorder and the detail log.
///
/// `Completed` and `Errored` outcomes produce a completion record (and a
/// `QueryCompleted` / `QueryErrored` event); `Vanished` leaves the query
/// outstanding so the incomplete-queries validity rule catches it.
fn record_outcome<F: FnMut(u64) -> bool>(
    recorder: &mut Recorder,
    query: &Query,
    outcome: IssueOutcome,
    finished: Nanos,
    log: F,
    sink: &dyn TraceSink,
) -> Result<(), LoadGenError> {
    let completion = match outcome {
        IssueOutcome::Completed(samples) => QueryCompletion::ok(query.id, finished, samples),
        IssueOutcome::Errored => QueryCompletion::errored(query, finished),
        IssueOutcome::Vanished => return Ok(()),
    };
    record_completion(recorder, &completion, query.scheduled_at, log, sink)
}

/// Records a ready-made completion (server scenario builds them on worker
/// threads) plus its trace event.
pub(crate) fn record_completion<F: FnMut(u64) -> bool>(
    recorder: &mut Recorder,
    completion: &QueryCompletion,
    scheduled_at: Nanos,
    log: F,
    sink: &dyn TraceSink,
) -> Result<(), LoadGenError> {
    recorder.record_completion(completion, log)?;
    if sink.enabled() {
        let latency_ns = completion
            .finished_at
            .saturating_sub(scheduled_at)
            .as_nanos();
        let event = if completion.error {
            TraceEvent::QueryErrored {
                query_id: completion.query_id,
                latency_ns,
            }
        } else {
            TraceEvent::QueryCompleted {
                query_id: completion.query_id,
                latency_ns,
            }
        };
        sink.record(completion.finished_at.as_nanos(), &event);
    }
    Ok(())
}

/// One query over `indices`, issued synchronously (offline + accuracy mode).
fn run_batch(
    settings: &TestSettings,
    indices: &[usize],
    sut: &dyn RealtimeSut,
    recorder: &mut Recorder,
    log_probability: f64,
    sink: &dyn TraceSink,
    start: Instant,
) -> Result<(), LoadGenError> {
    let mut next_sample_id = 0u64;
    let query = build_query(0, &mut next_sample_id, indices, Nanos::ZERO);
    recorder.record_issue(&query, Nanos::ZERO)?;
    record_issue_event(sink, &query, Nanos::ZERO);
    let outcome = sut.issue_outcome(&query);
    let finished = Nanos::from(start.elapsed());
    record_outcome(
        recorder,
        &query,
        outcome,
        finished,
        log_sampler(settings, log_probability),
        sink,
    )
}

fn run_single_stream(
    settings: &TestSettings,
    population: usize,
    sut: &dyn RealtimeSut,
    recorder: &mut Recorder,
    sink: &dyn TraceSink,
    start: Instant,
) -> Result<(), LoadGenError> {
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    loop {
        let scheduled = Nanos::from(start.elapsed());
        let indices = qsl_rng.sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(issued, &mut next_sample_id, &indices, scheduled);
        issued += 1;
        recorder.record_issue(&query, scheduled)?;
        record_issue_event(sink, &query, scheduled);
        let outcome = sut.issue_outcome(&query);
        let finished = Nanos::from(start.elapsed());
        record_outcome(recorder, &query, outcome, finished, &mut log, sink)?;
        if issued >= settings.min_query_count && finished >= settings.min_duration {
            return Ok(());
        }
    }
}

fn run_multi_stream(
    settings: &TestSettings,
    population: usize,
    sut: &dyn RealtimeSut,
    recorder: &mut Recorder,
    sink: &dyn TraceSink,
    start: Instant,
) -> Result<(), LoadGenError> {
    let interval = settings.multistream_arrival_interval;
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    let mut boundary = Nanos::ZERO;
    loop {
        // Sleep until the boundary.
        let now = Nanos::from(start.elapsed());
        if boundary > now {
            std::thread::sleep(boundary.saturating_sub(now).to_duration());
        }
        let indices = qsl_rng.sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(issued, &mut next_sample_id, &indices, boundary);
        issued += 1;
        recorder.record_issue(&query, boundary)?;
        record_issue_event(sink, &query, boundary);
        let outcome = sut.issue_outcome(&query);
        let finished = Nanos::from(start.elapsed());
        record_outcome(recorder, &query, outcome, finished, &mut log, sink)?;
        let elapsed = finished.saturating_sub(boundary).as_nanos();
        let consumed = elapsed.div_ceil(interval.as_nanos()).max(1);
        if consumed > 1 {
            recorder.record_skips(query.id, (consumed - 1) as u32);
        }
        boundary += interval.mul(consumed);
        if issued >= settings.min_query_count && boundary >= settings.min_duration {
            return Ok(());
        }
    }
}

fn run_server(
    settings: &TestSettings,
    population: usize,
    sut: &Arc<dyn RealtimeSut>,
    recorder: &mut Recorder,
    sink: &dyn TraceSink,
    start: Instant,
) -> Result<(), LoadGenError> {
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let arrivals = PoissonProcess::new(
        settings.server_target_qps,
        Rng64::new(settings.seeds.schedule_seed),
    )
    .map_err(|e| LoadGenError::BadSettings(e.to_string()))?
    .map(Nanos::from_secs_f64);
    let (work_tx, work_rx) = mpsc::channel::<Query>();
    // Workers report (scheduled_at, completion); `None` completions mark
    // queries that vanished on a live transport — never recorded, so they
    // stay outstanding and trip the incomplete-queries check.
    let (done_tx, done_rx) = mpsc::channel::<(Nanos, Option<QueryCompletion>)>();
    // std's Receiver is single-consumer; the worker pool shares it behind a
    // mutex (each worker holds the lock only for the dequeue itself).
    let work_rx = Arc::new(Mutex::new(work_rx));
    let mut workers = Vec::new();
    for _ in 0..settings.server_workers {
        let rx = Arc::clone(&work_rx);
        let tx = done_tx.clone();
        let sut = Arc::clone(sut);
        workers.push(std::thread::spawn(move || loop {
            let query = match rx.lock().expect("work queue poisoned").recv() {
                Ok(query) => query,
                Err(_) => break,
            };
            let outcome = sut.issue_outcome(&query);
            let finished = Nanos::from(start.elapsed());
            let completion = match outcome {
                IssueOutcome::Completed(samples) => {
                    Some(QueryCompletion::ok(query.id, finished, samples))
                }
                IssueOutcome::Errored => Some(QueryCompletion::errored(&query, finished)),
                IssueOutcome::Vanished => None,
            };
            if tx.send((query.scheduled_at, completion)).is_err() {
                break;
            }
        }));
    }
    drop(work_rx);
    drop(done_tx);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    for arrival in arrivals {
        let now = Nanos::from(start.elapsed());
        if arrival > now {
            std::thread::sleep(arrival.saturating_sub(now).to_duration());
        }
        let indices = qsl_rng.sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(issued, &mut next_sample_id, &indices, arrival);
        issued += 1;
        recorder.record_issue(&query, arrival)?;
        record_issue_event(sink, &query, arrival);
        work_tx
            .send(query)
            .map_err(|_| LoadGenError::SutProtocol("server worker pool died".into()))?;
        if issued >= settings.min_query_count && arrival >= settings.min_duration {
            break;
        }
    }
    drop(work_tx);
    if sink.enabled() {
        sink.record(
            Nanos::from(start.elapsed()).as_nanos(),
            &TraceEvent::RunPhase {
                phase: "drain".into(),
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    for (scheduled_at, completion) in done_rx.iter() {
        if let Some(completion) = completion {
            record_completion(recorder, &completion, scheduled_at, &mut log, sink)?;
        }
    }
    for worker in workers {
        worker
            .join()
            .map_err(|_| LoadGenError::SutProtocol("server worker panicked".into()))?;
    }
    Ok(())
}

/// Runs a wall-clock server benchmark under a crash-safe run journal.
///
/// The checkpoint cadence, resume semantics, and journal format are shared
/// with the simulated runner (`des::run_journaled`): every
/// `checkpoint_every` issued queries the scenario cursor, RNG states,
/// recorder image, and wire-session epoch are appended to the `MLPJ`
/// journal at `cfg.path`. With `resume = true` the run rolls back to the
/// last complete checkpoint and re-executes from there: the restored RNG
/// states re-draw the identical schedule and sample indices, outstanding
/// queries are re-sent to the SUT (with re-stamped `QueryIssued` events but
/// no duplicate recorder entries, keeping the TEST06 ledger balanced), and
/// the clock origin is shifted into the past by the checkpointed wall time
/// so arrival deadlines stay on the original time axis — queries whose
/// arrivals passed while the process was down issue immediately.
///
/// Only the server scenario in performance mode is supported; the other
/// scenarios are completion-driven and have no mid-run state worth saving
/// (a crashed single-stream run restarts from zero at no cost).
///
/// # Errors
///
/// Returns [`LoadGenError`] for inconsistent settings, an unusable QSL,
/// SUT protocol violations, or a journal that cannot be written — or, on
/// resume, one whose recorded settings digest does not match this run.
pub fn run_realtime_journaled<Q>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
    sink: &dyn TraceSink,
    cfg: &JournalConfig,
    resume: bool,
) -> Result<JournaledRun, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    settings.validate()?;
    if settings.mode != TestMode::PerformanceOnly || settings.scenario != Scenario::Server {
        return Err(LoadGenError::BadSettings(
            "journaled realtime runs support the server scenario in performance mode".into(),
        ));
    }
    if qsl.total_sample_count() == 0 || qsl.performance_sample_count() == 0 {
        return Err(LoadGenError::BadQsl(format!(
            "QSL {} has no samples",
            qsl.name()
        )));
    }
    let loaded: Vec<usize> = (0..qsl.performance_sample_count()).collect();
    qsl.load_samples(&loaded);
    let population = loaded.len();
    let meta = RunMeta {
        scenario: settings.scenario.to_string(),
        digest: settings_digest(settings, population as u64),
        qsl_size: population as u64,
    };
    let (mut journal, restored) = RunJournal::attach(cfg, &meta, resume)?;
    if sink.enabled() {
        sink.record(
            0,
            &TraceEvent::RunPhase {
                phase: if restored.is_some() {
                    "resume"
                } else {
                    "issue"
                }
                .into(),
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let (mut recorder, mut cursor, origin) = match &restored {
        Some(cp) => (
            Recorder::restore(cp.recorder.clone()),
            ServerCursor::restore(settings, cp)?,
            // Shift the clock origin into the past so `elapsed()` resumes
            // the interrupted run's time axis instead of restarting at 0.
            Instant::now()
                .checked_sub(cp.wall.to_duration())
                .unwrap_or_else(Instant::now),
        ),
        None => (
            Recorder::new(),
            ServerCursor::fresh(settings)?,
            Instant::now(),
        ),
    };
    let start = origin;
    let (work_tx, work_rx) = mpsc::channel::<Query>();
    let (done_tx, done_rx) = mpsc::channel::<(Nanos, Option<QueryCompletion>)>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let mut workers = Vec::new();
    for _ in 0..settings.server_workers {
        let rx = Arc::clone(&work_rx);
        let tx = done_tx.clone();
        let sut = Arc::clone(&sut);
        workers.push(std::thread::spawn(move || loop {
            let query = match rx.lock().expect("work queue poisoned").recv() {
                Ok(query) => query,
                Err(_) => break,
            };
            let outcome = sut.issue_outcome(&query);
            let finished = Nanos::from(start.elapsed());
            let completion = match outcome {
                IssueOutcome::Completed(samples) => {
                    Some(QueryCompletion::ok(query.id, finished, samples))
                }
                IssueOutcome::Errored => Some(QueryCompletion::errored(&query, finished)),
                IssueOutcome::Vanished => None,
            };
            if tx.send((query.scheduled_at, completion)).is_err() {
                break;
            }
        }));
    }
    drop(work_rx);
    drop(done_tx);
    // Re-issue the checkpoint's outstanding queries: the recorder already
    // carries their issue records, so only the trace event is re-stamped
    // (TEST06 needs an issue event ahead of each completion in the resumed
    // log). The remote end dedups re-executions via its completion journal.
    if let Some(cp) = &restored {
        for query in cp.recorder.outstanding_queries() {
            record_issue_event(sink, &query, query.scheduled_at);
            work_tx
                .send(query)
                .map_err(|_| LoadGenError::SutProtocol("server worker pool died".into()))?;
        }
    }
    let mut halted = false;
    while let Some(arrival) = cursor.pending_arrival.take() {
        let now = Nanos::from(start.elapsed());
        if arrival > now {
            std::thread::sleep(arrival.saturating_sub(now).to_duration());
        }
        let indices = cursor
            .qsl_rng
            .sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(cursor.issued, &mut cursor.next_sample_id, &indices, arrival);
        cursor.issued += 1;
        recorder.record_issue(&query, arrival)?;
        record_issue_event(sink, &query, arrival);
        work_tx
            .send(query)
            .map_err(|_| LoadGenError::SutProtocol("server worker pool died".into()))?;
        // Draw the next arrival only when the run continues, mirroring the
        // plain loop's lazy iterator so both consume the schedule RNG
        // identically — the settings digest pins the seeds, this pins the
        // draw count.
        if !(cursor.issued >= settings.min_query_count && arrival >= settings.min_duration) {
            cursor.pending_arrival = Some(cursor.next_arrival());
        }
        if cursor.issued.is_multiple_of(cfg.checkpoint_every) {
            let (sched_rng, sched_now) = cursor.arrivals.state();
            let (records_from, accuracy_from) = journal.flushed_marks();
            let cp = Checkpoint {
                seq: journal.checkpoints,
                issued: cursor.issued,
                next_sample_id: cursor.next_sample_id,
                wall: Nanos::from(start.elapsed()),
                pending_arrival: cursor.pending_arrival,
                qsl_rng: cursor.qsl_rng.state(),
                sched_rng,
                sched_now_bits: sched_now.to_bits(),
                // The realtime drain rebuilds its accuracy-log sampler from
                // the seed, so the checkpoint pins the seed-fresh state.
                acc_rng: Rng64::new(settings.seeds.accuracy_seed).state(),
                epoch: cfg
                    .epoch_source
                    .as_ref()
                    .map_or(0, |e| e.load(std::sync::atomic::Ordering::SeqCst)),
                recorder: recorder.snapshot_suffix(records_from, accuracy_from),
            };
            if journal.append_checkpoint(cfg, &cp)? {
                halted = true;
                break;
            }
        }
    }
    drop(work_tx);
    if halted {
        // Simulated process death: drain and discard in-flight completions
        // (they were never recorded, so the checkpoint still lists their
        // queries as outstanding), then tear the pool down.
        for _ in done_rx.iter() {}
        for worker in workers {
            let _ = worker.join();
        }
        qsl.unload_samples(&loaded);
        sink.flush();
        return Ok(JournaledRun::Halted {
            checkpoint: journal
                .checkpoints
                .saturating_sub(if cfg.torn_halt { 0 } else { 1 }),
        });
    }
    if sink.enabled() {
        sink.record(
            Nanos::from(start.elapsed()).as_nanos(),
            &TraceEvent::RunPhase {
                phase: "drain".into(),
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    for (scheduled_at, completion) in done_rx.iter() {
        if let Some(completion) = completion {
            record_completion(&mut recorder, &completion, scheduled_at, &mut log, sink)?;
        }
    }
    for worker in workers {
        worker
            .join()
            .map_err(|_| LoadGenError::SutProtocol("server worker panicked".into()))?;
    }
    journal.sync()?;
    qsl.unload_samples(&loaded);
    Ok(JournaledRun::Finished(Box::new(finish_run(
        settings,
        sut.name(),
        qsl.name(),
        recorder,
        sink,
        None,
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qsl::MemoryQsl;
    use crate::query::SampleCompletion;
    use crate::results::ScenarioMetric;
    use crate::sut::SleepSut;
    use crate::validate::ValidityIssue;
    use mlperf_trace::RingBufferSink;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn sleepy(us: u64) -> Arc<dyn RealtimeSut> {
        Arc::new(SleepSut::new("sleepy", Duration::from_micros(us)))
    }

    /// A SUT whose every `n`-th query errors or vanishes.
    struct FlakySut {
        counter: AtomicU64,
        every: u64,
        vanish: bool,
    }

    impl RealtimeSut for FlakySut {
        fn name(&self) -> &str {
            "flaky"
        }

        fn issue(&self, query: &Query) -> Vec<SampleCompletion> {
            query
                .samples
                .iter()
                .map(|s| SampleCompletion {
                    sample_id: s.id,
                    payload: Default::default(),
                })
                .collect()
        }

        fn issue_outcome(&self, query: &Query) -> IssueOutcome {
            let n = self.counter.fetch_add(1, Ordering::Relaxed);
            if n % self.every == self.every - 1 {
                if self.vanish {
                    IssueOutcome::Vanished
                } else {
                    IssueOutcome::Errored
                }
            } else {
                IssueOutcome::Completed(self.issue(query))
            }
        }
    }

    #[test]
    fn single_stream_realtime() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(20)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(200)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert!(out.result.query_count >= 20);
        match out.result.metric {
            ScenarioMetric::SingleStream { p90_latency } => {
                assert!(p90_latency >= Nanos::from_micros(200));
            }
            ref m => panic!("wrong metric {m:?}"),
        }
    }

    #[test]
    fn offline_realtime() {
        let settings = TestSettings::offline()
            .with_min_duration(Nanos::from_millis(1))
            .with_offline_min_sample_count(50);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(50)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert_eq!(out.result.sample_count, 50);
    }

    #[test]
    fn server_realtime_underloaded_is_valid() {
        let settings = TestSettings::server(200.0, Nanos::from_millis(50))
            .with_min_query_count(50)
            .with_min_duration(Nanos::from_millis(10));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(100)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert_eq!(out.result.query_count, out.result.sample_count);
    }

    #[test]
    fn server_worker_pool_is_configurable() {
        let settings = TestSettings::server(500.0, Nanos::from_millis(50))
            .with_min_query_count(40)
            .with_min_duration(Nanos::from_millis(5))
            .with_server_workers(2);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(100)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
    }

    #[test]
    fn multistream_realtime() {
        // Generous interval vs service time: scheduler jitter in loaded CI
        // environments must not overrun an interval.
        let settings = TestSettings::multi_stream(2, Nanos::from_millis(25))
            .with_min_query_count(8)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(100)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        match out.result.metric {
            ScenarioMetric::MultiStream { streams, .. } => assert_eq!(streams, 2),
            ref m => panic!("wrong metric {m:?}"),
        }
    }

    #[test]
    fn accuracy_mode_realtime_covers_dataset() {
        let settings = TestSettings::offline().with_mode(TestMode::AccuracyOnly);
        let mut qsl = MemoryQsl::new("q", 40, 8);
        let out = run_realtime(&settings, &mut qsl, sleepy(1)).unwrap();
        assert_eq!(out.accuracy_log.len(), 40);
    }

    #[test]
    fn errored_outcomes_fail_the_error_fraction_rule() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(10)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("q", 8, 8);
        let sut = Arc::new(FlakySut {
            counter: AtomicU64::new(0),
            every: 2,
            vanish: false,
        });
        let out = run_realtime(&settings, &mut qsl, sut).unwrap();
        assert!(!out.result.is_valid());
        assert!(out.result.error_count > 0);
        assert!(
            out.result
                .validity
                .iter()
                .any(|i| matches!(i, ValidityIssue::ErrorFractionExceeded { .. })),
            "{:?}",
            out.result.validity
        );
    }

    #[test]
    fn vanished_outcomes_stay_outstanding() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(10)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("q", 8, 8);
        let sut = Arc::new(FlakySut {
            counter: AtomicU64::new(0),
            every: 5,
            vanish: true,
        });
        let out = run_realtime(&settings, &mut qsl, sut).unwrap();
        assert!(!out.result.is_valid());
        assert!(
            out.result
                .validity
                .iter()
                .any(|i| matches!(i, ValidityIssue::IncompleteQueries { .. })),
            "{:?}",
            out.result.validity
        );
    }

    #[test]
    fn traced_run_logs_issue_and_completion_events() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(5)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("q", 8, 8);
        let sink = RingBufferSink::unbounded();
        let out = run_realtime_traced(&settings, &mut qsl, sleepy(10), &sink).unwrap();
        let records = sink.snapshot();
        let issued = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::QueryIssued { .. }))
            .count() as u64;
        let completed = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::QueryCompleted { .. }))
            .count() as u64;
        assert_eq!(issued, out.result.query_count);
        assert_eq!(completed, out.result.query_count);
        assert!(records
            .iter()
            .any(|r| matches!(&r.event, TraceEvent::RunPhase { phase, .. } if phase == "report")));
    }

    /// Logical identity of a run: the fields a crash + resume must
    /// preserve exactly (ids, schedule, sample counts, error flags) —
    /// wall-clock latencies legitimately differ between executions.
    fn logical(records: &[crate::record::QueryRecord]) -> Vec<(u64, u64, usize, bool)> {
        records
            .iter()
            .map(|r| (r.id, r.scheduled_at.as_nanos(), r.sample_count, r.error))
            .collect()
    }

    fn crashy_settings() -> TestSettings {
        TestSettings::server(4_000.0, Nanos::from_millis(50))
            .with_min_query_count(40)
            .with_min_duration(Nanos::from_millis(1))
    }

    #[test]
    fn realtime_journaled_without_halt_matches_plain_run() {
        let settings = crashy_settings();
        let dir = std::env::temp_dir().join(format!("mlpj-rt-plain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.mlpj");
        let _ = std::fs::remove_file(&path);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let cfg = crate::journal::JournalConfig::new(&path).with_checkpoint_every(8);
        let journaled =
            run_realtime_journaled(&settings, &mut qsl, sleepy(20), &NoopSink, &cfg, false)
                .unwrap()
                .finished()
                .expect("no halt armed");
        let plain = run_realtime(&settings, &mut qsl, sleepy(20)).unwrap();
        assert_eq!(logical(&journaled.records), logical(&plain.records));
        assert!(journaled.result.is_valid());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn realtime_resume_at_every_checkpoint_matches_uninterrupted() {
        let settings = crashy_settings();
        let dir = std::env::temp_dir().join(format!("mlpj-rt-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let baseline = {
            let path = dir.join("baseline.mlpj");
            let _ = std::fs::remove_file(&path);
            let cfg = crate::journal::JournalConfig::new(&path).with_checkpoint_every(8);
            run_realtime_journaled(&settings, &mut qsl, sleepy(20), &NoopSink, &cfg, false)
                .unwrap()
                .finished()
                .expect("no halt armed")
        };
        // 40 queries / checkpoint every 8 = checkpoints seq 0..=4.
        for halt_at in 0..5u64 {
            for torn in [false, true] {
                let path = dir.join(format!("halt{halt_at}-torn{torn}.mlpj"));
                let _ = std::fs::remove_file(&path);
                let mut cfg = crate::journal::JournalConfig::new(&path)
                    .with_checkpoint_every(8)
                    .with_halt_after(halt_at);
                if torn {
                    cfg = cfg.with_torn_halt();
                }
                let halted =
                    run_realtime_journaled(&settings, &mut qsl, sleepy(20), &NoopSink, &cfg, false)
                        .unwrap();
                match halted {
                    JournaledRun::Halted { checkpoint } => assert_eq!(checkpoint, halt_at),
                    JournaledRun::Finished(_) => panic!("halt_after({halt_at}) did not fire"),
                }
                let resume_cfg = crate::journal::JournalConfig::new(&path).with_checkpoint_every(8);
                let sink = RingBufferSink::unbounded();
                let rescued = run_realtime_journaled(
                    &settings,
                    &mut qsl,
                    sleepy(20),
                    &sink,
                    &resume_cfg,
                    true,
                )
                .unwrap()
                .finished()
                .expect("resume runs to completion");
                assert_eq!(
                    logical(&rescued.records),
                    logical(&baseline.records),
                    "halt_at={halt_at} torn={torn}"
                );
                assert!(rescued.result.is_valid());
                // TEST06 shape on the resumed log: every completion has an
                // issue event ahead of it (re-stamped for re-sent queries).
                let records = sink.snapshot();
                let mut open = std::collections::HashSet::new();
                for r in &records {
                    match &r.event {
                        TraceEvent::QueryIssued { query_id, .. } => {
                            assert!(open.insert(*query_id), "duplicate issue {query_id}");
                        }
                        TraceEvent::QueryCompleted { query_id, .. }
                        | TraceEvent::QueryErrored { query_id, .. } => {
                            assert!(open.remove(query_id), "completion without issue");
                        }
                        _ => {}
                    }
                }
                assert!(open.is_empty(), "unresolved issues in resumed log");
                std::fs::remove_file(&path).unwrap();
            }
        }
        let _ = std::fs::remove_file(dir.join("baseline.mlpj"));
    }

    #[test]
    fn realtime_journaled_rejects_other_scenarios() {
        let settings = TestSettings::single_stream().with_min_query_count(4);
        let dir = std::env::temp_dir();
        let cfg = crate::journal::JournalConfig::new(dir.join("mlpj-rt-reject.mlpj"));
        let mut qsl = MemoryQsl::new("q", 8, 8);
        let err = run_realtime_journaled(&settings, &mut qsl, sleepy(10), &NoopSink, &cfg, false)
            .unwrap_err();
        assert!(matches!(err, LoadGenError::BadSettings(_)));
    }
}

//! The wall-clock issue loop.
//!
//! Drives a [`RealtimeSut`] exactly the way the reference C++ LoadGen drives
//! a real system: real sleeps between arrivals, a worker pool for the server
//! scenario's concurrent queries, and `Instant`-based latency measurement.
//! The rulebook (seeding, scheduling, validation, metrics) is shared with
//! the simulated loop, so the two runners agree wherever timing permits —
//! an integration test asserts that.
//!
//! Official experiments in this repository use the simulated loop; this one
//! exists for fidelity to the original system and for exercising real
//! concurrency in tests and the quickstart example.

use crate::config::{TestMode, TestSettings};
use crate::des::{finish_run, RunOutcome};
use crate::qsl::QuerySampleLibrary;
use crate::query::{Query, QueryCompletion};
use crate::record::Recorder;
use crate::scenario::Scenario;
use crate::schedule::build_query;
use crate::sut::RealtimeSut;
use crate::time::Nanos;
use crate::LoadGenError;
use mlperf_stats::dist::PoissonProcess;
use mlperf_stats::Rng64;
use mlperf_trace::NoopSink;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of worker threads for the server scenario.
const SERVER_WORKERS: usize = 4;

/// Runs one benchmark against a wall clock.
///
/// # Errors
///
/// Returns [`LoadGenError`] for inconsistent settings, an unusable QSL, or
/// SUT protocol violations.
pub fn run_realtime<Q>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    settings.validate()?;
    if qsl.total_sample_count() == 0 || qsl.performance_sample_count() == 0 {
        return Err(LoadGenError::BadQsl(format!(
            "QSL {} has no samples",
            qsl.name()
        )));
    }
    let loaded: Vec<usize> = match settings.mode {
        TestMode::PerformanceOnly => (0..qsl.performance_sample_count()).collect(),
        TestMode::AccuracyOnly => (0..qsl.total_sample_count()).collect(),
    };
    qsl.load_samples(&loaded);
    let mut recorder = Recorder::new();
    match settings.mode {
        TestMode::AccuracyOnly => run_batch(settings, &loaded, sut.as_ref(), &mut recorder, 1.0)?,
        TestMode::PerformanceOnly => match settings.scenario {
            Scenario::SingleStream => {
                run_single_stream(settings, loaded.len(), sut.as_ref(), &mut recorder)?
            }
            Scenario::MultiStream => {
                run_multi_stream(settings, loaded.len(), sut.as_ref(), &mut recorder)?
            }
            Scenario::Server => run_server(settings, loaded.len(), &sut, &mut recorder)?,
            Scenario::Offline => {
                let mut rng = Rng64::new(settings.seeds.qsl_seed);
                let indices = rng.sample_with_replacement(
                    loaded.len(),
                    settings.offline_min_sample_count as usize,
                );
                run_batch(
                    settings,
                    &indices,
                    sut.as_ref(),
                    &mut recorder,
                    settings.accuracy_log_probability,
                )?
            }
        },
    }
    qsl.unload_samples(&loaded);
    Ok(finish_run(
        settings,
        sut.name(),
        qsl.name(),
        recorder,
        &NoopSink,
        None,
    ))
}

fn log_sampler(settings: &TestSettings, probability: f64) -> impl FnMut(u64) -> bool {
    let mut rng = Rng64::new(settings.seeds.accuracy_seed);
    move |_| probability > 0.0 && rng.next_bool(probability)
}

/// One query over `indices`, issued synchronously (offline + accuracy mode).
fn run_batch(
    settings: &TestSettings,
    indices: &[usize],
    sut: &dyn RealtimeSut,
    recorder: &mut Recorder,
    log_probability: f64,
) -> Result<(), LoadGenError> {
    let start = Instant::now();
    let mut next_sample_id = 0u64;
    let query = build_query(0, &mut next_sample_id, indices, Nanos::ZERO);
    recorder.record_issue(&query, Nanos::ZERO)?;
    let samples = sut.issue(&query);
    let finished = Nanos::from(start.elapsed());
    recorder.record_completion(
        &QueryCompletion::ok(0, finished, samples),
        log_sampler(settings, log_probability),
    )?;
    Ok(())
}

fn run_single_stream(
    settings: &TestSettings,
    population: usize,
    sut: &dyn RealtimeSut,
    recorder: &mut Recorder,
) -> Result<(), LoadGenError> {
    let start = Instant::now();
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    loop {
        let scheduled = Nanos::from(start.elapsed());
        let indices = qsl_rng.sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(issued, &mut next_sample_id, &indices, scheduled);
        issued += 1;
        recorder.record_issue(&query, scheduled)?;
        let samples = sut.issue(&query);
        let finished = Nanos::from(start.elapsed());
        recorder.record_completion(&QueryCompletion::ok(query.id, finished, samples), &mut log)?;
        if issued >= settings.min_query_count && finished >= settings.min_duration {
            return Ok(());
        }
    }
}

fn run_multi_stream(
    settings: &TestSettings,
    population: usize,
    sut: &dyn RealtimeSut,
    recorder: &mut Recorder,
) -> Result<(), LoadGenError> {
    let start = Instant::now();
    let interval = settings.multistream_arrival_interval;
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    let mut boundary = Nanos::ZERO;
    loop {
        // Sleep until the boundary.
        let now = Nanos::from(start.elapsed());
        if boundary > now {
            std::thread::sleep(boundary.saturating_sub(now).to_duration());
        }
        let indices = qsl_rng.sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(issued, &mut next_sample_id, &indices, boundary);
        issued += 1;
        recorder.record_issue(&query, boundary)?;
        let samples = sut.issue(&query);
        let finished = Nanos::from(start.elapsed());
        recorder.record_completion(&QueryCompletion::ok(query.id, finished, samples), &mut log)?;
        let elapsed = finished.saturating_sub(boundary).as_nanos();
        let consumed = elapsed.div_ceil(interval.as_nanos()).max(1);
        if consumed > 1 {
            recorder.record_skips(query.id, (consumed - 1) as u32);
        }
        boundary += interval.mul(consumed);
        if issued >= settings.min_query_count && boundary >= settings.min_duration {
            return Ok(());
        }
    }
}

fn run_server(
    settings: &TestSettings,
    population: usize,
    sut: &Arc<dyn RealtimeSut>,
    recorder: &mut Recorder,
) -> Result<(), LoadGenError> {
    let start = Instant::now();
    let mut qsl_rng = Rng64::new(settings.seeds.qsl_seed);
    let arrivals = PoissonProcess::new(
        settings.server_target_qps,
        Rng64::new(settings.seeds.schedule_seed),
    )
    .map_err(|e| LoadGenError::BadSettings(e.to_string()))?
    .map(Nanos::from_secs_f64);
    let (work_tx, work_rx) = mpsc::channel::<Query>();
    let (done_tx, done_rx) = mpsc::channel::<QueryCompletion>();
    // std's Receiver is single-consumer; the worker pool shares it behind a
    // mutex (each worker holds the lock only for the dequeue itself).
    let work_rx = Arc::new(Mutex::new(work_rx));
    let mut workers = Vec::new();
    for _ in 0..SERVER_WORKERS {
        let rx = Arc::clone(&work_rx);
        let tx = done_tx.clone();
        let sut = Arc::clone(sut);
        workers.push(std::thread::spawn(move || loop {
            let query = match rx.lock().expect("work queue poisoned").recv() {
                Ok(query) => query,
                Err(_) => break,
            };
            let samples = sut.issue(&query);
            let finished = Nanos::from(start.elapsed());
            if tx
                .send(QueryCompletion::ok(query.id, finished, samples))
                .is_err()
            {
                break;
            }
        }));
    }
    drop(work_rx);
    drop(done_tx);
    let mut next_sample_id = 0u64;
    let mut issued = 0u64;
    for arrival in arrivals {
        let now = Nanos::from(start.elapsed());
        if arrival > now {
            std::thread::sleep(arrival.saturating_sub(now).to_duration());
        }
        let indices = qsl_rng.sample_with_replacement(population, settings.samples_per_query);
        let query = build_query(issued, &mut next_sample_id, &indices, arrival);
        issued += 1;
        recorder.record_issue(&query, arrival)?;
        work_tx
            .send(query)
            .map_err(|_| LoadGenError::SutProtocol("server worker pool died".into()))?;
        if issued >= settings.min_query_count && arrival >= settings.min_duration {
            break;
        }
    }
    drop(work_tx);
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    for completion in done_rx.iter() {
        recorder.record_completion(&completion, &mut log)?;
    }
    for worker in workers {
        worker
            .join()
            .map_err(|_| LoadGenError::SutProtocol("server worker panicked".into()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qsl::MemoryQsl;
    use crate::results::ScenarioMetric;
    use crate::sut::SleepSut;
    use std::time::Duration;

    fn sleepy(us: u64) -> Arc<dyn RealtimeSut> {
        Arc::new(SleepSut::new("sleepy", Duration::from_micros(us)))
    }

    #[test]
    fn single_stream_realtime() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(20)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(200)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert!(out.result.query_count >= 20);
        match out.result.metric {
            ScenarioMetric::SingleStream { p90_latency } => {
                assert!(p90_latency >= Nanos::from_micros(200));
            }
            ref m => panic!("wrong metric {m:?}"),
        }
    }

    #[test]
    fn offline_realtime() {
        let settings = TestSettings::offline()
            .with_min_duration(Nanos::from_millis(1))
            .with_offline_min_sample_count(50);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(50)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert_eq!(out.result.sample_count, 50);
    }

    #[test]
    fn server_realtime_underloaded_is_valid() {
        let settings = TestSettings::server(200.0, Nanos::from_millis(50))
            .with_min_query_count(50)
            .with_min_duration(Nanos::from_millis(10));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(100)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert_eq!(out.result.query_count, out.result.sample_count);
    }

    #[test]
    fn multistream_realtime() {
        // Generous interval vs service time: scheduler jitter in loaded CI
        // environments must not overrun an interval.
        let settings = TestSettings::multi_stream(2, Nanos::from_millis(25))
            .with_min_query_count(8)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let out = run_realtime(&settings, &mut qsl, sleepy(100)).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        match out.result.metric {
            ScenarioMetric::MultiStream { streams, .. } => assert_eq!(streams, 2),
            ref m => panic!("wrong metric {m:?}"),
        }
    }

    #[test]
    fn accuracy_mode_realtime_covers_dataset() {
        let settings = TestSettings::offline().with_mode(TestMode::AccuracyOnly);
        let mut qsl = MemoryQsl::new("q", 40, 8);
        let out = run_realtime(&settings, &mut qsl, sleepy(1)).unwrap();
        assert_eq!(out.accuracy_log.len(), 40);
    }
}

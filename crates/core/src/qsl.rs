//! The QuerySampleLibrary — Figure 3's "data set" component.

use crate::query::SampleIndex;

/// The LoadGen's view of the data set.
///
/// Loading and unloading are untimed operations requested by the LoadGen at
/// startup (Section IV-B). `performance_sample_count` is the number of
/// samples guaranteed to fit in memory; performance-mode queries draw their
/// indices from that loaded set only.
pub trait QuerySampleLibrary {
    /// Human-readable name for logs.
    fn name(&self) -> &str;

    /// Total samples in the data set (accuracy mode covers all of them).
    fn total_sample_count(&self) -> usize;

    /// Samples that can be resident simultaneously.
    fn performance_sample_count(&self) -> usize;

    /// Loads samples into memory (untimed).
    fn load_samples(&mut self, indices: &[SampleIndex]);

    /// Unloads samples (untimed).
    fn unload_samples(&mut self, indices: &[SampleIndex]);
}

/// A trivial in-memory QSL used by tests and examples.
///
/// # Examples
///
/// ```
/// use mlperf_loadgen::qsl::{MemoryQsl, QuerySampleLibrary};
///
/// let mut qsl = MemoryQsl::new("toy", 100, 16);
/// assert_eq!(qsl.total_sample_count(), 100);
/// qsl.load_samples(&[0, 1, 2]);
/// assert_eq!(qsl.loaded(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryQsl {
    name: String,
    total: usize,
    performance: usize,
    loaded: std::collections::HashSet<SampleIndex>,
}

impl MemoryQsl {
    /// Creates a QSL with `total` samples of which `performance` fit in
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` or `performance == 0` or
    /// `performance > total`.
    pub fn new(name: &str, total: usize, performance: usize) -> Self {
        assert!(total > 0, "QSL must have samples");
        assert!(
            performance > 0 && performance <= total,
            "performance sample count {performance} invalid for total {total}"
        );
        Self {
            name: name.to_string(),
            total,
            performance,
            loaded: std::collections::HashSet::new(),
        }
    }

    /// Number of currently loaded samples.
    pub fn loaded(&self) -> usize {
        self.loaded.len()
    }

    /// Whether a given sample is loaded.
    pub fn is_loaded(&self, index: SampleIndex) -> bool {
        self.loaded.contains(&index)
    }
}

impl QuerySampleLibrary for MemoryQsl {
    fn name(&self) -> &str {
        &self.name
    }

    fn total_sample_count(&self) -> usize {
        self.total
    }

    fn performance_sample_count(&self) -> usize {
        self.performance
    }

    fn load_samples(&mut self, indices: &[SampleIndex]) {
        self.loaded.extend(indices.iter().copied());
    }

    fn unload_samples(&mut self, indices: &[SampleIndex]) {
        for i in indices {
            self.loaded.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_qsl_lifecycle() {
        let mut q = MemoryQsl::new("t", 10, 4);
        assert_eq!(q.name(), "t");
        assert_eq!(q.performance_sample_count(), 4);
        q.load_samples(&[1, 2]);
        assert!(q.is_loaded(1));
        q.unload_samples(&[1]);
        assert!(!q.is_loaded(1));
        assert_eq!(q.loaded(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid for total")]
    fn performance_larger_than_total_panics() {
        MemoryQsl::new("t", 4, 10);
    }
}

//! Query schedules and sample selection.
//!
//! Figure 4 of the paper: the LoadGen materializes *when* queries arrive
//! (scenario dependent) and *which* samples they contain (uniform with
//! replacement from the loaded performance set) purely from the seed triple,
//! before the timed portion of the run begins. Optimizations that exploit
//! the fixed schedule are prohibited — and detectable, because the audit
//! reruns with alternate seeds.

use crate::config::TestSettings;
use crate::query::{Query, QuerySample, SampleIndex};
use crate::time::Nanos;
use mlperf_stats::dist::PoissonProcess;
use mlperf_stats::Rng64;
use mlperf_trace::{profile_span, TraceEvent, TraceSink};

/// Generates the sample indices for `count` queries of
/// `samples_per_query` each, drawn uniformly with replacement from
/// `[0, population)` using the QSL seed.
///
/// # Panics
///
/// Panics if `population == 0`.
pub fn sample_indices(
    settings: &TestSettings,
    population: usize,
    count: u64,
) -> Vec<Vec<SampleIndex>> {
    profile_span!("schedule/sample_indices");
    assert!(population > 0, "cannot sample from an empty population");
    let mut rng = Rng64::new(settings.seeds.qsl_seed);
    (0..count)
        .map(|_| rng.sample_with_replacement(population, settings.samples_per_query))
        .collect()
}

/// Materializes the arrival timestamps for `count` server-scenario queries:
/// a Poisson process at `server_target_qps`, deterministic in the schedule
/// seed.
///
/// # Panics
///
/// Panics if the settings carry a non-positive target QPS (validated
/// settings cannot).
pub fn server_arrivals(settings: &TestSettings, count: u64) -> Vec<Nanos> {
    profile_span!("schedule/server_arrivals");
    let process = PoissonProcess::new(
        settings.server_target_qps,
        Rng64::new(settings.seeds.schedule_seed),
    )
    .expect("validated settings have positive qps");
    process
        .take(count as usize)
        .map(Nanos::from_secs_f64)
        .collect()
}

/// Arrival timestamps for `count` multistream intervals: `k * interval`.
pub fn multistream_boundaries(settings: &TestSettings, count: u64) -> Vec<Nanos> {
    (0..count)
        .map(|k| settings.multistream_arrival_interval.mul(k))
        .collect()
}

/// Announces a pre-materialized schedule to a trace sink: one
/// [`TraceEvent::QueryScheduled`] per query, stamped with its arrival time.
///
/// The LoadGen materializes the whole schedule before the timed run begins
/// (Figure 4), so the detail log can carry the planned arrivals alongside
/// the observed issue/completion events.
pub fn trace_schedule(sink: &dyn TraceSink, arrivals: &[Nanos], indices: &[Vec<SampleIndex>]) {
    if !sink.enabled() {
        return;
    }
    for (id, (at, samples)) in arrivals.iter().zip(indices).enumerate() {
        sink.record(
            at.as_nanos(),
            &TraceEvent::QueryScheduled {
                query_id: id as u64,
                sample_count: samples.len(),
            },
        );
    }
}

/// Builds a full query from pre-drawn indices.
pub fn build_query(id: u64, next_sample_id: &mut u64, indices: &[SampleIndex], at: Nanos) -> Query {
    let samples = indices
        .iter()
        .map(|index| {
            let sid = *next_sample_id;
            *next_sample_id += 1;
            QuerySample {
                id: sid,
                index: *index,
            }
        })
        .collect();
    Query {
        id,
        samples,
        scheduled_at: at,
        tenant: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestSettings;

    #[test]
    fn sample_indices_deterministic_in_seed() {
        let s = TestSettings::single_stream();
        let a = sample_indices(&s, 100, 50);
        let b = sample_indices(&s, 100, 50);
        assert_eq!(a, b);
        let alt = s.clone().with_seeds(s.seeds.alternate(0));
        assert_ne!(a, sample_indices(&alt, 100, 50));
    }

    #[test]
    fn sample_indices_respect_population() {
        let s = TestSettings::multi_stream(4, Nanos::from_millis(50));
        for q in sample_indices(&s, 10, 100) {
            assert_eq!(q.len(), 4);
            assert!(q.iter().all(|i| *i < 10));
        }
    }

    #[test]
    fn server_arrivals_monotone_and_rate_matched() {
        let s = TestSettings::server(1000.0, Nanos::from_millis(15));
        let arrivals = server_arrivals(&s, 10_000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // 10,000 arrivals at 1000 qps should span roughly 10 seconds.
        let span = arrivals.last().unwrap().as_secs_f64();
        assert!((9.0..11.0).contains(&span), "span={span}");
    }

    #[test]
    fn server_arrivals_deterministic_and_seed_sensitive() {
        let s = TestSettings::server(100.0, Nanos::from_millis(15));
        assert_eq!(server_arrivals(&s, 100), server_arrivals(&s, 100));
        let alt = s.clone().with_seeds(s.seeds.alternate(1));
        assert_ne!(server_arrivals(&s, 100), server_arrivals(&alt, 100));
    }

    #[test]
    fn multistream_boundaries_fixed_interval() {
        let s = TestSettings::multi_stream(2, Nanos::from_millis(50));
        let b = multistream_boundaries(&s, 4);
        assert_eq!(
            b,
            vec![
                Nanos::ZERO,
                Nanos::from_millis(50),
                Nanos::from_millis(100),
                Nanos::from_millis(150)
            ]
        );
    }

    #[test]
    fn trace_schedule_emits_one_event_per_query() {
        use mlperf_trace::RingBufferSink;
        let s = TestSettings::server(1_000.0, Nanos::from_millis(10));
        let arrivals = server_arrivals(&s, 16);
        let indices = sample_indices(&s, 32, 16);
        let sink = RingBufferSink::unbounded();
        trace_schedule(&sink, &arrivals, &indices);
        let records = sink.snapshot();
        assert_eq!(records.len(), 16);
        for (k, r) in records.iter().enumerate() {
            assert_eq!(r.ts_ns, arrivals[k].as_nanos());
            match &r.event {
                mlperf_trace::TraceEvent::QueryScheduled {
                    query_id,
                    sample_count,
                } => {
                    assert_eq!(*query_id, k as u64);
                    assert_eq!(*sample_count, indices[k].len());
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn build_query_assigns_unique_sample_ids() {
        let mut next = 0u64;
        let q1 = build_query(0, &mut next, &[5, 6], Nanos::ZERO);
        let q2 = build_query(1, &mut next, &[7], Nanos::SECOND);
        assert_eq!(q1.samples[0].id, 0);
        assert_eq!(q1.samples[1].id, 1);
        assert_eq!(q2.samples[0].id, 2);
        assert_eq!(q2.scheduled_at, Nanos::SECOND);
    }
}

//! Queries, samples, and responses.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Identifier of an issued query, unique within one run.
pub type QueryId = u64;

/// Index of a sample within the data set.
pub type SampleIndex = usize;

/// One sample reference inside a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuerySample {
    /// Response-tracking id, unique per sample per run.
    pub id: u64,
    /// Which data-set sample to run inference on.
    pub index: SampleIndex,
}

/// A query: "a request for inference on one or more samples" (Section IV-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// The query id.
    pub id: QueryId,
    /// The samples composing the query. Contiguous in memory by rule for
    /// multistream/offline; here that is represented by the samples sharing
    /// one `Vec`.
    pub samples: Vec<QuerySample>,
    /// When the LoadGen scheduled the query (the latency reference point).
    pub scheduled_at: Nanos,
    /// Which model/stream this query belongs to — 0 for every standard
    /// scenario; the multitenancy extension (Section IV-B mentions it as a
    /// planned LoadGen mode) tags each tenant's queries.
    #[serde(default)]
    pub tenant: u32,
}

impl Query {
    /// Number of samples in the query.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

/// Task-specific inference output carried back for accuracy checking.
///
/// The LoadGen does not interpret payloads; it logs them (always in accuracy
/// mode, randomly sampled in performance mode for the accuracy-verification
/// audit) and the task's accuracy script scores them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponsePayload {
    /// No payload (performance mode default).
    Empty,
    /// Classification: predicted class index.
    Class(usize),
    /// Detection: `(class, score, [x1, y1, x2, y2])` per box.
    Boxes(Vec<(usize, f32, [f32; 4])>),
    /// Translation: output token ids.
    Tokens(Vec<u32>),
}

impl ResponsePayload {
    /// Whether the payload carries data.
    pub fn is_empty(&self) -> bool {
        matches!(self, ResponsePayload::Empty)
    }
}

impl Default for ResponsePayload {
    fn default() -> Self {
        ResponsePayload::Empty
    }
}

/// Completion of one sample of a query, reported by the SUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleCompletion {
    /// The sample's response id (must echo [`QuerySample::id`]).
    pub sample_id: u64,
    /// Inference output for accuracy checking.
    pub payload: ResponsePayload,
}

/// Completion of a whole query at a point in simulated/wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryCompletion {
    /// The completed query.
    pub query_id: QueryId,
    /// When the SUT finished the query.
    pub finished_at: Nanos,
    /// Per-sample completions (must cover every sample of the query).
    pub samples: Vec<SampleCompletion>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sample_count() {
        let q = Query {
            id: 1,
            samples: vec![
                QuerySample { id: 10, index: 0 },
                QuerySample { id: 11, index: 5 },
            ],
            scheduled_at: Nanos::ZERO,
        tenant: 0,
        };
        assert_eq!(q.sample_count(), 2);
    }

    #[test]
    fn payload_emptiness() {
        assert!(ResponsePayload::Empty.is_empty());
        assert!(ResponsePayload::default().is_empty());
        assert!(!ResponsePayload::Class(3).is_empty());
        assert!(!ResponsePayload::Tokens(vec![1]).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let c = QueryCompletion {
            query_id: 9,
            finished_at: Nanos::from_micros(77),
            samples: vec![SampleCompletion {
                sample_id: 1,
                payload: ResponsePayload::Boxes(vec![(2, 0.9, [0.0, 0.0, 4.0, 4.0])]),
            }],
        };
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<QueryCompletion>(&json).unwrap(), c);
    }
}

//! Queries, samples, and responses.

use crate::time::Nanos;
use mlperf_trace::{FromJson, JsonError, JsonValue, ToJson};

/// Identifier of an issued query, unique within one run.
pub type QueryId = u64;

/// Index of a sample within the data set.
pub type SampleIndex = usize;

/// One sample reference inside a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuerySample {
    /// Response-tracking id, unique per sample per run.
    pub id: u64,
    /// Which data-set sample to run inference on.
    pub index: SampleIndex,
}

/// A query: "a request for inference on one or more samples" (Section IV-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The query id.
    pub id: QueryId,
    /// The samples composing the query. Contiguous in memory by rule for
    /// multistream/offline; here that is represented by the samples sharing
    /// one `Vec`.
    pub samples: Vec<QuerySample>,
    /// When the LoadGen scheduled the query (the latency reference point).
    pub scheduled_at: Nanos,
    /// Which model/stream this query belongs to — 0 for every standard
    /// scenario; the multitenancy extension (Section IV-B mentions it as a
    /// planned LoadGen mode) tags each tenant's queries.
    pub tenant: u32,
}

impl Query {
    /// Number of samples in the query.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

/// Task-specific inference output carried back for accuracy checking.
///
/// The LoadGen does not interpret payloads; it logs them (always in accuracy
/// mode, randomly sampled in performance mode for the accuracy-verification
/// audit) and the task's accuracy script scores them.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ResponsePayload {
    /// No payload (performance mode default).
    #[default]
    Empty,
    /// Classification: predicted class index.
    Class(usize),
    /// Detection: `(class, score, [x1, y1, x2, y2])` per box.
    Boxes(Vec<(usize, f32, [f32; 4])>),
    /// Translation: output token ids.
    Tokens(Vec<u32>),
}

impl ResponsePayload {
    /// Whether the payload carries data.
    pub fn is_empty(&self) -> bool {
        matches!(self, ResponsePayload::Empty)
    }
}

/// Completion of one sample of a query, reported by the SUT.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCompletion {
    /// The sample's response id (must echo [`QuerySample::id`]).
    pub sample_id: u64,
    /// Inference output for accuracy checking.
    pub payload: ResponsePayload,
}

/// Completion of a whole query at a point in simulated/wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCompletion {
    /// The completed query.
    pub query_id: QueryId,
    /// When the SUT finished the query.
    pub finished_at: Nanos,
    /// Per-sample completions (must cover every sample of the query).
    pub samples: Vec<SampleCompletion>,
    /// The query resolved as an error/drop instead of an answer. Errored
    /// completions still echo every sample id (so the protocol checks hold
    /// and every scenario loop terminates), but their payloads are
    /// meaningless and validity scoring treats them as infinitely late.
    pub error: bool,
}

impl QueryCompletion {
    /// A successful completion echoing the query's samples with the given
    /// payloads.
    pub fn ok(query_id: QueryId, finished_at: Nanos, samples: Vec<SampleCompletion>) -> Self {
        QueryCompletion {
            query_id,
            finished_at,
            samples,
            error: false,
        }
    }

    /// An errored completion for `query`: echoes every sample id with an
    /// empty payload so the run can terminate, but marks the query failed.
    pub fn errored(query: &Query, finished_at: Nanos) -> Self {
        QueryCompletion {
            query_id: query.id,
            finished_at,
            samples: query
                .samples
                .iter()
                .map(|s| SampleCompletion {
                    sample_id: s.id,
                    payload: ResponsePayload::Empty,
                })
                .collect(),
            error: true,
        }
    }
}

impl ToJson for QuerySample {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("id", self.id.to_json_value()),
            ("index", self.index.to_json_value()),
        ])
    }
}

impl FromJson for QuerySample {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(QuerySample {
            id: value.field("id")?.as_u64()?,
            index: value.field("index")?.as_usize()?,
        })
    }
}

impl ToJson for Query {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("id", self.id.to_json_value()),
            ("samples", self.samples.to_json_value()),
            ("scheduled_at", self.scheduled_at.to_json_value()),
            ("tenant", self.tenant.to_json_value()),
        ])
    }
}

impl FromJson for Query {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Query {
            id: value.field("id")?.as_u64()?,
            samples: Vec::from_json_value(value.field("samples")?)?,
            scheduled_at: Nanos::from_json_value(value.field("scheduled_at")?)?,
            // Logs written before the multitenancy extension lack the field.
            tenant: match value.get("tenant") {
                Some(v) => v.as_u32()?,
                None => 0,
            },
        })
    }
}

impl ToJson for ResponsePayload {
    fn to_json_value(&self) -> JsonValue {
        match self {
            ResponsePayload::Empty => JsonValue::Str("Empty".into()),
            ResponsePayload::Class(class) => {
                JsonValue::object(vec![("Class", class.to_json_value())])
            }
            ResponsePayload::Boxes(boxes) => {
                let items = boxes
                    .iter()
                    .map(|(class, score, rect)| {
                        JsonValue::Array(vec![
                            class.to_json_value(),
                            score.to_json_value(),
                            JsonValue::Array(rect.iter().map(|c| c.to_json_value()).collect()),
                        ])
                    })
                    .collect();
                JsonValue::object(vec![("Boxes", JsonValue::Array(items))])
            }
            ResponsePayload::Tokens(tokens) => {
                JsonValue::object(vec![("Tokens", tokens.to_json_value())])
            }
        }
    }
}

impl FromJson for ResponsePayload {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        if let Ok("Empty") = value.as_str() {
            return Ok(ResponsePayload::Empty);
        }
        let (name, payload) = value.as_variant()?;
        match name {
            "Class" => Ok(ResponsePayload::Class(payload.as_usize()?)),
            "Boxes" => {
                let mut boxes = Vec::new();
                for item in payload.as_array()? {
                    let parts = item.as_array()?;
                    if parts.len() != 3 {
                        return Err(JsonError::new("box must be [class, score, rect]"));
                    }
                    let rect_parts = parts[2].as_array()?;
                    if rect_parts.len() != 4 {
                        return Err(JsonError::new("box rect must have 4 coordinates"));
                    }
                    let mut rect = [0.0f32; 4];
                    for (slot, coord) in rect.iter_mut().zip(rect_parts) {
                        *slot = coord.as_f32()?;
                    }
                    boxes.push((parts[0].as_usize()?, parts[1].as_f32()?, rect));
                }
                Ok(ResponsePayload::Boxes(boxes))
            }
            "Tokens" => Ok(ResponsePayload::Tokens(Vec::from_json_value(payload)?)),
            other => Err(JsonError::new(format!("unknown payload variant {other:?}"))),
        }
    }
}

impl ToJson for SampleCompletion {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("sample_id", self.sample_id.to_json_value()),
            ("payload", self.payload.to_json_value()),
        ])
    }
}

impl FromJson for SampleCompletion {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SampleCompletion {
            sample_id: value.field("sample_id")?.as_u64()?,
            payload: ResponsePayload::from_json_value(value.field("payload")?)?,
        })
    }
}

impl ToJson for QueryCompletion {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("query_id", self.query_id.to_json_value()),
            ("finished_at", self.finished_at.to_json_value()),
            ("samples", self.samples.to_json_value()),
            ("error", self.error.to_json_value()),
        ])
    }
}

impl FromJson for QueryCompletion {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(QueryCompletion {
            query_id: value.field("query_id")?.as_u64()?,
            finished_at: Nanos::from_json_value(value.field("finished_at")?)?,
            samples: Vec::from_json_value(value.field("samples")?)?,
            // Logs written before the fault-injection extension lack the
            // field; every completion then was a success.
            error: match value.get("error") {
                Some(v) => v.as_bool()?,
                None => false,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sample_count() {
        let q = Query {
            id: 1,
            samples: vec![
                QuerySample { id: 10, index: 0 },
                QuerySample { id: 11, index: 5 },
            ],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        assert_eq!(q.sample_count(), 2);
    }

    #[test]
    fn payload_emptiness() {
        assert!(ResponsePayload::Empty.is_empty());
        assert!(ResponsePayload::default().is_empty());
        assert!(!ResponsePayload::Class(3).is_empty());
        assert!(!ResponsePayload::Tokens(vec![1]).is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let c = QueryCompletion {
            query_id: 9,
            finished_at: Nanos::from_micros(77),
            samples: vec![SampleCompletion {
                sample_id: 1,
                payload: ResponsePayload::Boxes(vec![(2, 0.9, [0.0, 0.0, 4.0, 4.0])]),
            }],
            error: false,
        };
        let json = c.to_json_string();
        assert_eq!(QueryCompletion::from_json_str(&json).unwrap(), c);
        for payload in [
            ResponsePayload::Empty,
            ResponsePayload::Class(17),
            ResponsePayload::Tokens(vec![1, 2, 3]),
        ] {
            let json = payload.to_json_string();
            assert_eq!(ResponsePayload::from_json_str(&json).unwrap(), payload);
        }
    }

    #[test]
    fn completion_without_error_field_parses_as_success() {
        let json = r#"{"query_id":4,"finished_at":90,"samples":[]}"#;
        let c = QueryCompletion::from_json_str(json).unwrap();
        assert!(!c.error);
        assert_eq!(c.finished_at, Nanos::from_nanos(90));
    }

    #[test]
    fn errored_completion_echoes_every_sample() {
        let q = Query {
            id: 7,
            samples: vec![
                QuerySample { id: 70, index: 1 },
                QuerySample { id: 71, index: 2 },
            ],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let c = QueryCompletion::errored(&q, Nanos::from_micros(5));
        assert!(c.error);
        assert_eq!(c.samples.len(), 2);
        assert_eq!(c.samples[1].sample_id, 71);
        let json = c.to_json_string();
        assert_eq!(QueryCompletion::from_json_str(&json).unwrap(), c);
    }

    #[test]
    fn query_without_tenant_field_parses() {
        let json = r#"{"id":1,"samples":[{"id":2,"index":3}],"scheduled_at":50}"#;
        let q = Query::from_json_str(json).unwrap();
        assert_eq!(q.tenant, 0);
        assert_eq!(q.scheduled_at, Nanos::from_nanos(50));
    }
}

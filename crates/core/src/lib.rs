//! The MLPerf Inference **LoadGen** — the paper's primary contribution,
//! reimplemented in Rust.
//!
//! The LoadGen is "a traffic generator that loads the SUT and measures
//! performance" (Section IV-B). It owns everything the submitter must not:
//! query arrival rules for the four scenarios, the pseudorandom schedule and
//! sample-selection seeds, latency recording, run-validity checks, and log
//! output. The system under test is a black box behind a narrow trait.
//!
//! # Architecture
//!
//! * [`scenario`] — the four scenarios of Table II and their metadata.
//! * [`config`] — [`config::TestSettings`]: mode, seeds,
//!   target rates, latency bounds, minimum durations and query counts.
//! * [`query`] — queries, samples, responses, and response payloads.
//! * [`qsl`] — the `QuerySampleLibrary` trait (Figure 3's "data set" box).
//! * [`sut`] — SUT traits: [`sut::SimSut`] for discrete-event co-simulation
//!   and [`sut::RealtimeSut`] for wall-clock runs.
//! * [`schedule`] — arrival-time generation (Poisson for server, fixed
//!   interval for multistream, sequential and batch for the rest).
//! * [`des`] — the discrete-event issue loop used by the experiments; a
//!   270,336-query server run finishes in well under a second of wall time.
//! * [`journal`] — crash safety: run checkpoints (scenario cursor, RNG
//!   states, recorder image, wire epoch) appended to a durable `MLPJ`
//!   write-ahead journal at deterministic boundaries, and the
//!   roll-back-and-re-execute resume semantics built on them.
//! * [`instrument`] — [`instrument::Instruments`], the observability
//!   bundle (trace sink, time-series sampler, shared metrics registry)
//!   accepted by the `*_instrumented` runners.
//! * [`realtime`] — a thread-based wall-clock issue loop mirroring the C++
//!   LoadGen's operation, used by the quickstart example and tests.
//! * [`replay`] — a recorded schedule as a first-class arrival process:
//!   [`replay::ReplaySchedule`] re-issued through the simulated or
//!   wall-clock loop with the recorded scenario's validity rules intact.
//! * [`record`] / [`results`] / [`validate`] — latency bookkeeping, metric
//!   computation, and the validity rules of Tables III–V.
//! * [`requirements`] — Table V minimum query/sample counts.
//! * [`find_peak`] — FindPeakPerformance searches for the server and
//!   multistream scenarios.
//! * [`multitenant`] — the multitenancy extension the paper names as
//!   planned LoadGen work: several server streams sharing one SUT, each
//!   holding its own QoS.
//! * [`log`] — structured, serializable run logs (summary + per-query
//!   detail + sampled accuracy payloads).
//!
//! # Example: simulated single-stream run
//!
//! ```
//! use mlperf_loadgen::config::TestSettings;
//! use mlperf_loadgen::des::run_simulated;
//! use mlperf_loadgen::qsl::MemoryQsl;
//! use mlperf_loadgen::scenario::Scenario;
//! use mlperf_loadgen::sut::FixedLatencySut;
//! use mlperf_loadgen::time::Nanos;
//!
//! let settings = TestSettings::single_stream()
//!     .with_min_query_count(128)
//!     .with_min_duration(Nanos::from_millis(10));
//! let mut qsl = MemoryQsl::new("toy", 64, 64);
//! let mut sut = FixedLatencySut::new("null-sut", Nanos::from_micros(50));
//! let outcome = run_simulated(&settings, &mut qsl, &mut sut)?;
//! assert!(outcome.result.is_valid());
//! # Ok::<(), mlperf_loadgen::LoadGenError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod des;
pub mod find_peak;
pub mod instrument;
pub mod journal;
pub mod log;
pub mod multitenant;
pub mod qsl;
pub mod query;
pub mod realtime;
pub mod record;
pub mod replay;
pub mod requirements;
pub mod results;
pub mod scenario;
pub mod schedule;
pub mod sut;
pub mod time;
pub mod validate;

pub use config::{TestMode, TestSettings};
pub use instrument::Instruments;
pub use journal::{Checkpoint, JournalConfig, JournaledRun, RunJournal, RunMeta};
pub use query::{Query, QueryId, QuerySample, ResponsePayload, SampleIndex};
pub use replay::ReplaySchedule;
pub use results::{ScenarioMetric, TestResult};
pub use scenario::Scenario;
pub use time::Nanos;

/// Errors surfaced by the LoadGen.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadGenError {
    /// The test settings are internally inconsistent.
    BadSettings(String),
    /// The QSL cannot satisfy the request (e.g. zero samples).
    BadQsl(String),
    /// The SUT violated the protocol (wrong query id, duplicate completion,
    /// completion before issue, missing response).
    SutProtocol(String),
    /// The run journal could not be written, read, or matched to the run
    /// being resumed.
    Journal(String),
}

impl std::fmt::Display for LoadGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadGenError::BadSettings(m) => write!(f, "bad test settings: {m}"),
            LoadGenError::BadQsl(m) => write!(f, "bad query sample library: {m}"),
            LoadGenError::SutProtocol(m) => write!(f, "SUT protocol violation: {m}"),
            LoadGenError::Journal(m) => write!(f, "run journal error: {m}"),
        }
    }
}

impl std::error::Error for LoadGenError {}

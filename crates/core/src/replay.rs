//! Replay: a recorded schedule as a first-class arrival process.
//!
//! The four scenarios generate their query streams from seeds; replay
//! re-issues a stream that was *recorded* — explicit arrival times and
//! explicit per-query sample indices extracted from a detail log (the
//! `mlperf-replay` crate builds [`ReplaySchedule`]s from recorded traces).
//! Everything downstream of arrival generation is the unchanged LoadGen
//! machinery: the same recorder, the same validity rules for the recorded
//! scenario, the same scoring. That is what makes a replayed run a real
//! benchmark rather than a traffic-shaped smoke test.
//!
//! Two runners mirror the native pair:
//!
//! * [`run_simulated_replay`] — the discrete-event loop, for deterministic
//!   audits and simulated SUTs.
//! * [`run_realtime_replay`] — the wall-clock loop with the server
//!   scenario's worker pool, for any [`RealtimeSut`]: a local stack, a
//!   `RemoteSut` on the wire, or a sharded fleet router.
//!
//! Replay is open loop by construction — the schedule *is* the run, so
//! `min_query_count` / `min_duration` never extend it, and closed-loop
//! scenarios (single-stream, multistream) replay on their recorded
//! timeline instead of re-deriving one from completions.

use crate::config::{TestMode, TestSettings};
use crate::des::{self, finish_run, RunOutcome};
use crate::instrument::Instruments;
use crate::qsl::QuerySampleLibrary;
use crate::query::{Query, QueryCompletion};
use crate::realtime::{log_sampler, record_completion, record_issue_event};
use crate::record::Recorder;
use crate::scenario::Scenario;
use crate::schedule::build_query;
use crate::sut::{IssueOutcome, RealtimeSut, SimSut};
use crate::time::Nanos;
use crate::LoadGenError;
use mlperf_trace::{NoopSink, TraceEvent, TraceSink};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// A recorded query schedule, ready to re-issue.
///
/// Arrival times are nanoseconds since run start, non-decreasing; each
/// query carries the explicit sample indices it drew when it was
/// recorded. Query ids are assigned sequentially at replay time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySchedule {
    /// The scenario whose validity rules and metric apply to the replay.
    pub scenario: Scenario,
    /// Scheduled arrival time of each query, non-decreasing.
    pub arrivals: Vec<Nanos>,
    /// Sample indices of each query (parallel to `arrivals`). Indices are
    /// folded into the replay QSL's population with a modulo, so a trace
    /// recorded against a larger library still replays.
    pub indices: Vec<Vec<usize>>,
}

impl ReplaySchedule {
    /// Number of queries in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the schedule has no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Checks the schedule's structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`LoadGenError::BadSettings`] when the schedule is empty,
    /// the arrival and index vectors disagree in length, arrivals go
    /// backwards, or a query has no samples.
    pub fn validate(&self) -> Result<(), LoadGenError> {
        if self.arrivals.is_empty() {
            return Err(LoadGenError::BadSettings(
                "replay schedule has no queries".into(),
            ));
        }
        if self.arrivals.len() != self.indices.len() {
            return Err(LoadGenError::BadSettings(format!(
                "replay schedule has {} arrivals but {} index sets",
                self.arrivals.len(),
                self.indices.len()
            )));
        }
        if self.arrivals.windows(2).any(|w| w[1] < w[0]) {
            return Err(LoadGenError::BadSettings(
                "replay schedule arrivals go backwards".into(),
            ));
        }
        if let Some(i) = self.indices.iter().position(Vec::is_empty) {
            return Err(LoadGenError::BadSettings(format!(
                "replay schedule query {i} has no sample indices"
            )));
        }
        Ok(())
    }
}

/// Shared preconditions of both replay runners.
fn check(settings: &TestSettings, schedule: &ReplaySchedule) -> Result<(), LoadGenError> {
    schedule.validate()?;
    if settings.mode != TestMode::PerformanceOnly {
        return Err(LoadGenError::BadSettings(
            "replay only runs in performance mode".into(),
        ));
    }
    if settings.scenario != schedule.scenario {
        return Err(LoadGenError::BadSettings(format!(
            "settings scenario {} but schedule was recorded under {}",
            settings.scenario, schedule.scenario
        )));
    }
    Ok(())
}

/// Replays a recorded schedule under simulated time.
///
/// # Errors
///
/// Returns [`LoadGenError`] for a malformed schedule, inconsistent
/// settings, an unusable QSL, or an SUT protocol violation.
pub fn run_simulated_replay<Q, S>(
    settings: &TestSettings,
    schedule: &ReplaySchedule,
    qsl: &mut Q,
    sut: &mut S,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    check(settings, schedule)?;
    des::run_sim(settings, qsl, sut, &Instruments::none(), Some(schedule))
}

/// [`run_simulated_replay`] with a detail-log sink attached.
///
/// # Errors
///
/// Same contract as [`run_simulated_replay`].
pub fn run_simulated_replay_traced<Q, S>(
    settings: &TestSettings,
    schedule: &ReplaySchedule,
    qsl: &mut Q,
    sut: &mut S,
    sink: &dyn TraceSink,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    check(settings, schedule)?;
    des::run_sim(
        settings,
        qsl,
        sut,
        &Instruments::traced(sink),
        Some(schedule),
    )
}

/// Replays a recorded schedule against a wall clock.
///
/// # Errors
///
/// Same contract as [`run_simulated_replay`].
pub fn run_realtime_replay<Q>(
    settings: &TestSettings,
    schedule: &ReplaySchedule,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    run_realtime_replay_traced(settings, schedule, qsl, sut, &NoopSink)
}

/// [`run_realtime_replay`] with a detail-log sink attached.
///
/// # Errors
///
/// Same contract as [`run_simulated_replay`].
pub fn run_realtime_replay_traced<Q>(
    settings: &TestSettings,
    schedule: &ReplaySchedule,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
    sink: &dyn TraceSink,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    run_realtime_replay_traced_at(settings, schedule, qsl, sut, sink, Instant::now())
}

/// [`run_realtime_replay_traced`] with an explicit clock origin, for
/// sharing one time axis with instrumented wire clients.
///
/// # Errors
///
/// Same contract as [`run_simulated_replay`].
pub fn run_realtime_replay_traced_at<Q>(
    settings: &TestSettings,
    schedule: &ReplaySchedule,
    qsl: &mut Q,
    sut: Arc<dyn RealtimeSut>,
    sink: &dyn TraceSink,
    origin: Instant,
) -> Result<RunOutcome, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    check(settings, schedule)?;
    settings.validate()?;
    if qsl.total_sample_count() == 0 || qsl.performance_sample_count() == 0 {
        return Err(LoadGenError::BadQsl(format!(
            "QSL {} has no samples",
            qsl.name()
        )));
    }
    let loaded: Vec<usize> = (0..qsl.performance_sample_count()).collect();
    qsl.load_samples(&loaded);
    if sink.enabled() {
        sink.record(
            0,
            &TraceEvent::RunPhase {
                phase: "issue".into(),
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let mut recorder = Recorder::new();
    run_pool(
        settings,
        schedule,
        loaded.len(),
        &sut,
        &mut recorder,
        sink,
        origin,
    )?;
    qsl.unload_samples(&loaded);
    Ok(finish_run(
        settings,
        sut.name(),
        qsl.name(),
        recorder,
        sink,
        None,
    ))
}

/// The wall-clock replay issue loop: sleep to each recorded arrival, hand
/// the query to the worker pool, drain completions at the end. Identical
/// in structure to the realtime server loop — replay is open loop for
/// every scenario.
fn run_pool(
    settings: &TestSettings,
    schedule: &ReplaySchedule,
    population: usize,
    sut: &Arc<dyn RealtimeSut>,
    recorder: &mut Recorder,
    sink: &dyn TraceSink,
    start: Instant,
) -> Result<(), LoadGenError> {
    let (work_tx, work_rx) = mpsc::channel::<Query>();
    // Workers report (scheduled_at, completion); `None` marks queries that
    // vanished on a live transport — never recorded, so they stay
    // outstanding and trip the incomplete-queries check.
    let (done_tx, done_rx) = mpsc::channel::<(Nanos, Option<QueryCompletion>)>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let mut workers = Vec::new();
    for _ in 0..settings.server_workers.max(1) {
        let rx = Arc::clone(&work_rx);
        let tx = done_tx.clone();
        let sut = Arc::clone(sut);
        workers.push(std::thread::spawn(move || loop {
            let query = match rx.lock().expect("work queue poisoned").recv() {
                Ok(query) => query,
                Err(_) => break,
            };
            let outcome = sut.issue_outcome(&query);
            let finished = Nanos::from(start.elapsed());
            let completion = match outcome {
                IssueOutcome::Completed(samples) => {
                    Some(QueryCompletion::ok(query.id, finished, samples))
                }
                IssueOutcome::Errored => Some(QueryCompletion::errored(&query, finished)),
                IssueOutcome::Vanished => None,
            };
            if tx.send((query.scheduled_at, completion)).is_err() {
                break;
            }
        }));
    }
    drop(work_rx);
    drop(done_tx);
    let mut next_sample_id = 0u64;
    for (id, (arrival, indices)) in schedule.arrivals.iter().zip(&schedule.indices).enumerate() {
        let now = Nanos::from(start.elapsed());
        if *arrival > now {
            std::thread::sleep(arrival.saturating_sub(now).to_duration());
        }
        let indices: Vec<usize> = indices.iter().map(|&i| i % population).collect();
        let query = build_query(id as u64, &mut next_sample_id, &indices, *arrival);
        let issued_at = Nanos::from(start.elapsed()).max(*arrival);
        recorder.record_issue(&query, issued_at)?;
        record_issue_event(sink, &query, issued_at);
        work_tx
            .send(query)
            .map_err(|_| LoadGenError::SutProtocol("replay worker pool died".into()))?;
    }
    drop(work_tx);
    if sink.enabled() {
        sink.record(
            Nanos::from(start.elapsed()).as_nanos(),
            &TraceEvent::RunPhase {
                phase: "drain".into(),
                scenario: settings.scenario.to_string(),
            },
        );
    }
    let mut log = log_sampler(settings, settings.accuracy_log_probability);
    for (scheduled_at, completion) in done_rx.iter() {
        if let Some(completion) = completion {
            record_completion(recorder, &completion, scheduled_at, &mut log, sink)?;
        }
    }
    for worker in workers {
        worker
            .join()
            .map_err(|_| LoadGenError::SutProtocol("replay worker panicked".into()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qsl::MemoryQsl;
    use crate::sut::{FixedLatencySut, SleepSut};
    use std::time::Duration;

    fn schedule(n: usize, gap_us: u64) -> ReplaySchedule {
        ReplaySchedule {
            scenario: Scenario::Server,
            arrivals: (0..n)
                .map(|i| Nanos::from_micros(i as u64 * gap_us))
                .collect(),
            indices: (0..n).map(|i| vec![i % 7]).collect(),
        }
    }

    fn replay_settings(n: usize) -> TestSettings {
        TestSettings::server(1_000.0, Nanos::from_millis(50))
            .with_min_query_count(n as u64)
            .with_min_duration(Nanos::ZERO)
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        let empty = ReplaySchedule {
            scenario: Scenario::Server,
            arrivals: vec![],
            indices: vec![],
        };
        assert!(empty.validate().is_err());

        let backwards = ReplaySchedule {
            scenario: Scenario::Server,
            arrivals: vec![Nanos::from_micros(5), Nanos::from_micros(1)],
            indices: vec![vec![0], vec![0]],
        };
        assert!(backwards.validate().is_err());

        let no_samples = ReplaySchedule {
            scenario: Scenario::Server,
            arrivals: vec![Nanos::ZERO],
            indices: vec![vec![]],
        };
        assert!(no_samples.validate().is_err());
    }

    #[test]
    fn scenario_mismatch_is_bad_settings() {
        let s = schedule(4, 100);
        let settings = TestSettings::offline().with_min_duration(Nanos::ZERO);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10));
        let err = run_simulated_replay(&settings, &s, &mut qsl, &mut sut).unwrap_err();
        assert!(matches!(err, LoadGenError::BadSettings(_)));
    }

    #[test]
    fn simulated_replay_issues_exactly_the_schedule() {
        let n = 256;
        let s = schedule(n, 100);
        let settings = replay_settings(n);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(20));
        let out = run_simulated_replay(&settings, &s, &mut qsl, &mut sut).unwrap();
        assert_eq!(out.result.query_count, n as u64);
        assert!(out.result.is_valid(), "issues: {:?}", out.result.validity);
        // The recorded schedule is authoritative: scheduled times match.
        for (record, want) in out.records.iter().zip(&s.arrivals) {
            assert_eq!(record.scheduled_at, *want);
        }
    }

    #[test]
    fn simulated_replay_is_deterministic() {
        let n = 128;
        let s = schedule(n, 50);
        let settings = replay_settings(n);
        let run = || {
            let mut qsl = MemoryQsl::new("q", 16, 16);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(20));
            run_simulated_replay(&settings, &s, &mut qsl, &mut sut).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.records, b.records);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn realtime_replay_completes_and_validates() {
        let n = 24;
        let s = schedule(n, 500);
        let settings = replay_settings(n);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let sut = Arc::new(SleepSut::new("sleepy", Duration::from_micros(50)));
        let out = run_realtime_replay(&settings, &s, &mut qsl, sut).unwrap();
        assert_eq!(out.result.query_count, n as u64);
        assert!(out.result.is_valid(), "issues: {:?}", out.result.validity);
    }

    #[test]
    fn replay_folds_oversized_indices_into_population() {
        let n = 8;
        let mut s = schedule(n, 100);
        // Record-time population was larger than the replay QSL.
        s.indices = (0..n).map(|i| vec![i * 1000 + 999]).collect();
        let settings = replay_settings(n);
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(10));
        let out = run_simulated_replay(&settings, &s, &mut qsl, &mut sut).unwrap();
        assert_eq!(out.result.query_count, n as u64);
        assert!(out.result.is_valid());
    }
}

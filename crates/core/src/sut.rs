//! System-under-test interfaces.
//!
//! The benchmark deliberately treats the SUT as a black box (Section IV-A):
//! the LoadGen hands it queries and receives completions, nothing more. Two
//! flavours exist here:
//!
//! * [`SimSut`] — event-driven co-simulation. The SUT is called at query
//!   arrival (and at self-requested wakeups) and answers with completions
//!   carrying *future* timestamps plus an optional next wakeup. This is
//!   expressive enough for FIFO devices, timeout-based dynamic batchers, and
//!   multi-accelerator dispatchers, and it lets a 270K-query run finish in
//!   milliseconds of wall time.
//! * [`RealtimeSut`] — a blocking wall-clock interface mirroring how the C++
//!   LoadGen drives real systems; used by the realtime runner and tests.

use crate::query::{Query, QueryCompletion, ResponsePayload, SampleCompletion};
use crate::time::Nanos;

/// What a [`SimSut`] does in response to an event.
#[derive(Debug, Clone, Default)]
pub struct SutReaction {
    /// Completions, each stamped with a finish time `>= now`.
    pub completions: Vec<QueryCompletion>,
    /// If set, the simulator calls [`SimSut::on_wakeup`] at this time
    /// (unless superseded by a later reaction's request).
    pub wakeup_at: Option<Nanos>,
}

impl SutReaction {
    /// A reaction with no completions and no wakeup.
    pub fn none() -> Self {
        Self::default()
    }

    /// A reaction completing one query.
    pub fn complete(completion: QueryCompletion) -> Self {
        Self {
            completions: vec![completion],
            wakeup_at: None,
        }
    }
}

/// An event-driven simulated system under test.
pub trait SimSut {
    /// Name for logs and reports.
    fn name(&self) -> &str;

    /// Called when the LoadGen issues `query` at simulated time `now`.
    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction;

    /// Called at a previously requested wakeup time.
    fn on_wakeup(&mut self, _now: Nanos) -> SutReaction {
        SutReaction::none()
    }

    /// Resets internal state between runs (FindPeakPerformance reruns the
    /// same SUT at different target rates).
    fn reset(&mut self) {}
}

/// A deterministic serial SUT that spends a fixed time per sample — the
/// simplest legal device, used throughout the tests.
///
/// # Examples
///
/// ```
/// use mlperf_loadgen::sut::{FixedLatencySut, SimSut};
/// use mlperf_loadgen::query::{Query, QuerySample};
/// use mlperf_loadgen::time::Nanos;
///
/// let mut sut = FixedLatencySut::new("fixed", Nanos::from_micros(100));
/// let q = Query { id: 0, samples: vec![QuerySample { id: 0, index: 3 }],
///                 scheduled_at: Nanos::ZERO, tenant: 0 };
/// let r = sut.on_query(Nanos::ZERO, &q);
/// assert_eq!(r.completions[0].finished_at, Nanos::from_micros(100));
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatencySut {
    name: String,
    per_sample: Nanos,
    busy_until: Nanos,
    classes: Option<usize>,
}

impl FixedLatencySut {
    /// Creates a SUT that takes `per_sample` per sample, serially.
    pub fn new(name: &str, per_sample: Nanos) -> Self {
        Self {
            name: name.to_string(),
            per_sample,
            busy_until: Nanos::ZERO,
            classes: None,
        }
    }

    /// Makes the SUT return `Class(index % classes)` payloads, handy for
    /// accuracy-pipeline tests.
    pub fn with_class_payloads(mut self, classes: usize) -> Self {
        self.classes = Some(classes.max(1));
        self
    }

    fn payload(&self, index: usize) -> ResponsePayload {
        match self.classes {
            Some(c) => ResponsePayload::Class(index % c),
            None => ResponsePayload::Empty,
        }
    }
}

impl SimSut for FixedLatencySut {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        let start = now.max(self.busy_until);
        let finish = start + self.per_sample.mul(query.sample_count() as u64);
        self.busy_until = finish;
        SutReaction::complete(QueryCompletion::ok(
            query.id,
            finish,
            query
                .samples
                .iter()
                .map(|s| SampleCompletion {
                    sample_id: s.id,
                    payload: self.payload(s.index),
                })
                .collect(),
        ))
    }

    fn reset(&mut self) {
        self.busy_until = Nanos::ZERO;
    }
}

/// How a [`RealtimeSut::issue_outcome`] call resolved.
///
/// In-process SUTs always answer; a *network* SUT (the wire extension) can
/// also fail structurally, and the realtime issue loop must tell those
/// failures apart so a broken transport surfaces as an INVALID verdict
/// instead of a hang:
///
/// * [`Completed`](IssueOutcome::Completed) — the normal path.
/// * [`Errored`](IssueOutcome::Errored) — the SUT provably misbehaved on
///   this query (remote error report, corrupt frame, heartbeat loss on a
///   live socket). Recorded as an errored completion, counted against
///   [`max_error_fraction`].
/// * [`Vanished`](IssueOutcome::Vanished) — the query was never resolved
///   at all (a response timeout on a live connection, or a hard
///   disconnect with the query in flight and no resume). Left outstanding
///   in the recorder, so it trips the `IncompleteQueries` validity rule
///   and the TEST06 completeness audit.
///
/// [`max_error_fraction`]: crate::config::TestSettings::max_error_fraction
#[derive(Debug, Clone, PartialEq)]
pub enum IssueOutcome {
    /// Per-sample completions for a successfully answered query.
    Completed(Vec<SampleCompletion>),
    /// The query resolved as an error/drop; no usable payloads.
    Errored,
    /// The query was never resolved; it stays outstanding.
    Vanished,
}

/// A blocking wall-clock system under test.
///
/// Implementations must be internally synchronized: the server-scenario
/// runner invokes `issue` from multiple worker threads concurrently.
pub trait RealtimeSut: Send + Sync {
    /// Name for logs and reports.
    fn name(&self) -> &str;

    /// Runs inference on the query, blocking until complete, and returns
    /// per-sample completions.
    fn issue(&self, query: &Query) -> Vec<SampleCompletion>;

    /// Like [`issue`](RealtimeSut::issue), but able to report structural
    /// failure. The realtime issue loop calls this; the default wraps
    /// `issue`, which cannot fail, so in-process SUTs need not override it.
    fn issue_outcome(&self, query: &Query) -> IssueOutcome {
        IssueOutcome::Completed(self.issue(query))
    }
}

/// A wall-clock SUT that sleeps a fixed time per sample.
#[derive(Debug, Clone)]
pub struct SleepSut {
    name: String,
    per_sample: std::time::Duration,
}

impl SleepSut {
    /// Creates a SUT that sleeps `per_sample` for each sample of a query.
    pub fn new(name: &str, per_sample: std::time::Duration) -> Self {
        Self {
            name: name.to_string(),
            per_sample,
        }
    }
}

impl RealtimeSut for SleepSut {
    fn name(&self) -> &str {
        &self.name
    }

    fn issue(&self, query: &Query) -> Vec<SampleCompletion> {
        std::thread::sleep(self.per_sample * query.sample_count() as u32);
        query
            .samples
            .iter()
            .map(|s| SampleCompletion {
                sample_id: s.id,
                payload: ResponsePayload::Empty,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySample;

    fn query(id: u64, samples: usize) -> Query {
        Query {
            id,
            samples: (0..samples)
                .map(|i| QuerySample {
                    id: id * 100 + i as u64,
                    index: i,
                })
                .collect(),
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        }
    }

    #[test]
    fn fixed_latency_serializes_queries() {
        let mut sut = FixedLatencySut::new("t", Nanos::from_micros(10));
        let r1 = sut.on_query(Nanos::ZERO, &query(0, 1));
        let r2 = sut.on_query(Nanos::from_micros(2), &query(1, 1));
        assert_eq!(r1.completions[0].finished_at, Nanos::from_micros(10));
        // Second query queues behind the first.
        assert_eq!(r2.completions[0].finished_at, Nanos::from_micros(20));
    }

    #[test]
    fn fixed_latency_scales_with_samples() {
        let mut sut = FixedLatencySut::new("t", Nanos::from_micros(10));
        let r = sut.on_query(Nanos::ZERO, &query(0, 5));
        assert_eq!(r.completions[0].finished_at, Nanos::from_micros(50));
        assert_eq!(r.completions[0].samples.len(), 5);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut sut = FixedLatencySut::new("t", Nanos::from_micros(10));
        sut.on_query(Nanos::ZERO, &query(0, 100));
        sut.reset();
        let r = sut.on_query(Nanos::ZERO, &query(1, 1));
        assert_eq!(r.completions[0].finished_at, Nanos::from_micros(10));
    }

    #[test]
    fn class_payloads() {
        let mut sut = FixedLatencySut::new("t", Nanos::from_micros(1)).with_class_payloads(3);
        let r = sut.on_query(Nanos::ZERO, &query(0, 4));
        assert_eq!(
            r.completions[0].samples[2].payload,
            ResponsePayload::Class(2)
        );
        assert_eq!(
            r.completions[0].samples[3].payload,
            ResponsePayload::Class(0)
        );
    }

    #[test]
    fn default_wakeup_is_none() {
        let mut sut = FixedLatencySut::new("t", Nanos::from_micros(1));
        let r = SimSut::on_wakeup(&mut sut, Nanos::ZERO);
        assert!(r.completions.is_empty());
        assert!(r.wakeup_at.is_none());
    }

    #[test]
    fn sleep_sut_completes_all_samples() {
        let sut = SleepSut::new("s", std::time::Duration::from_micros(1));
        let out = sut.issue(&query(0, 3));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn default_issue_outcome_wraps_issue() {
        let sut = SleepSut::new("s", std::time::Duration::ZERO);
        match sut.issue_outcome(&query(0, 2)) {
            IssueOutcome::Completed(samples) => assert_eq!(samples.len(), 2),
            other => panic!("default must complete, got {other:?}"),
        }
    }
}

//! Property-style tests for the NN inference engine.
//!
//! Seeded `Rng64` case loops replace the former property-testing
//! framework; failure messages carry the case seeds for replay.

use mlperf_nn::gru::GruCell;
use mlperf_nn::layer::Activation;
use mlperf_nn::network::NetworkBuilder;
use mlperf_nn::{Network, QNetwork};
use mlperf_stats::Rng64;
use mlperf_tensor::{Shape, Tensor};

const CASES: u64 = 16;

fn tiny_net(seed: u64, classes: usize) -> Network {
    let mut rng = Rng64::new(seed);
    NetworkBuilder::new(Shape::d3(2, 8, 8))
        .conv2d(4, 3, 1, 1, Activation::Relu, &mut rng)
        .expect("static architecture")
        .residual_block(Activation::Relu, &mut rng)
        .expect("static architecture")
        .global_avgpool()
        .expect("static architecture")
        .dense(classes, Activation::None, &mut rng)
        .expect("static architecture")
        .build()
}

fn input(seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::fill_with(Shape::d3(2, 8, 8), |_| rng.next_f64() as f32 * 2.0 - 1.0)
}

#[test]
fn forward_is_a_pure_function() {
    let mut rng = Rng64::new(0x4e4e_0001);
    for case in 0..CASES {
        let net_seed = rng.next_u64();
        let in_seed = rng.next_u64();
        let net = tiny_net(net_seed, 8);
        let x = input(in_seed);
        assert_eq!(
            net.forward(&x).unwrap(),
            net.forward(&x).unwrap(),
            "case {case}: net_seed={net_seed} in_seed={in_seed}"
        );
    }
}

#[test]
fn network_construction_is_seed_deterministic() {
    let mut rng = Rng64::new(0x4e4e_0002);
    for case in 0..CASES {
        let seed = rng.next_u64();
        assert_eq!(
            tiny_net(seed, 8),
            tiny_net(seed, 8),
            "case {case}: seed={seed}"
        );
    }
}

#[test]
fn output_shape_always_matches_declaration() {
    let mut rng = Rng64::new(0x4e4e_0003);
    for case in 0..CASES {
        let net_seed = rng.next_u64();
        let in_seed = rng.next_u64();
        let net = tiny_net(net_seed, 5);
        let out = net.forward(&input(in_seed)).unwrap();
        let ctx = format!("case {case}: net_seed={net_seed} in_seed={in_seed}");
        assert_eq!(out.shape(), net.output_shape(), "{ctx}");
        assert!(out.data().iter().all(|v| v.is_finite()), "{ctx}");
    }
}

#[test]
fn quantized_network_mostly_agrees_with_fp32() {
    let mut rng = Rng64::new(0x4e4e_0004);
    for case in 0..4 {
        let net_seed = rng.next_u64();
        let net = tiny_net(net_seed, 8);
        let calib: Vec<Tensor> = (0..8).map(|i| input(net_seed ^ (i + 1))).collect();
        let qnet = QNetwork::quantize(&net, &calib).unwrap();
        let agree = (0..32)
            .filter(|i| {
                let x = input(net_seed.wrapping_add(1_000 + i));
                net.forward(&x).unwrap().argmax() == qnet.forward(&x).unwrap().argmax()
            })
            .count();
        assert!(
            agree >= 26,
            "case {case}: net_seed={net_seed}: only {agree}/32 argmax agreements"
        );
    }
}

#[test]
fn map_parameters_identity_is_identity() {
    let mut rng = Rng64::new(0x4e4e_0005);
    for case in 0..CASES {
        let net_seed = rng.next_u64();
        let in_seed = rng.next_u64();
        let net = tiny_net(net_seed, 6);
        let same = net.map_parameters(Clone::clone);
        let x = input(in_seed);
        assert_eq!(
            net.forward(&x).unwrap(),
            same.forward(&x).unwrap(),
            "case {case}: net_seed={net_seed} in_seed={in_seed}"
        );
    }
}

#[test]
fn int16_weight_roundtrip_is_near_lossless() {
    use mlperf_tensor::quant::per_channel_i16_roundtrip;
    let mut rng = Rng64::new(0x4e4e_0006);
    for case in 0..CASES {
        let net_seed = rng.next_u64();
        let in_seed = rng.next_u64();
        let net = tiny_net(net_seed, 6);
        let q = net.map_parameters(per_channel_i16_roundtrip);
        let x = input(in_seed);
        let a = net.forward(&x).unwrap();
        let b = q.forward(&x).unwrap();
        let scale = a.abs_max().max(1e-3);
        for (u, v) in a.data().iter().zip(b.data()) {
            assert!(
                (u - v).abs() / scale < 1e-3,
                "case {case}: net_seed={net_seed} in_seed={in_seed}: {u} vs {v}"
            );
        }
    }
}

#[test]
fn gru_state_always_bounded() {
    let mut seeder = Rng64::new(0x4e4e_0007);
    for case in 0..CASES {
        let seed = seeder.next_u64();
        let steps = 1 + seeder.next_index(63);
        let mut rng = Rng64::new(seed);
        let cell = GruCell::new(6, 10, &mut rng);
        let mut h = cell.zero_state();
        for s in 0..steps {
            let x = Tensor::fill_with(Shape::d1(6), |_| {
                let mut r = Rng64::new(seed ^ s as u64);
                r.next_f64() as f32 * 4.0 - 2.0
            });
            h = cell.step(&x, &h).unwrap();
            assert!(
                h.data().iter().all(|v| v.abs() <= 1.0 && v.is_finite()),
                "case {case}: seed={seed} step={s}"
            );
        }
    }
}

#[test]
fn mac_count_stable_across_equal_architectures() {
    let mut rng = Rng64::new(0x4e4e_0008);
    for case in 0..CASES {
        let seed_a = rng.next_u64();
        let seed_b = rng.next_u64();
        // MACs depend on architecture, not weights.
        let ctx = format!("case {case}: seed_a={seed_a} seed_b={seed_b}");
        assert_eq!(
            tiny_net(seed_a, 8).mac_count(),
            tiny_net(seed_b, 8).mac_count(),
            "{ctx}"
        );
        assert_eq!(
            tiny_net(seed_a, 8).param_count(),
            tiny_net(seed_b, 8).param_count(),
            "{ctx}"
        );
    }
}

//! Deterministic weight initialization.
//!
//! Teacher networks in this reproduction are *generated*, not trained: a
//! seeded He-style initialization produces a fixed random network whose
//! outputs define the synthetic datasets' ground truth (see
//! `mlperf-datasets`). Determinism matters more than training dynamics here,
//! so the init is a simple scaled uniform.

use mlperf_stats::Rng64;
use mlperf_tensor::{Shape, Tensor};

/// A weight initializer with a configurable gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightInit {
    gain: f32,
}

impl WeightInit {
    /// He-style initializer (`gain = sqrt(2)`), the right default for
    /// ReLU-family networks.
    pub fn he() -> Self {
        Self {
            gain: std::f32::consts::SQRT_2,
        }
    }

    /// Xavier-style initializer (`gain = 1`), used for tanh/sigmoid gates.
    pub fn xavier() -> Self {
        Self { gain: 1.0 }
    }

    /// Uniform sample in `[-limit, limit]` where
    /// `limit = gain * sqrt(3 / fan_in)`.
    fn sample(&self, fan_in: usize, rng: &mut Rng64) -> f32 {
        let limit = self.gain * (3.0 / fan_in.max(1) as f32).sqrt();
        (rng.next_f64() as f32 * 2.0 - 1.0) * limit
    }

    /// `[OutC, InC, K, K]` convolution weights.
    pub fn conv_weight(&self, out_c: usize, in_c: usize, k: usize, rng: &mut Rng64) -> Tensor {
        let fan_in = in_c * k * k;
        Tensor::fill_with(Shape::d4(out_c, in_c, k, k), |_| self.sample(fan_in, rng))
    }

    /// `[C, 1, K, K]` depthwise convolution weights.
    pub fn depthwise_weight(&self, c: usize, k: usize, rng: &mut Rng64) -> Tensor {
        let fan_in = k * k;
        Tensor::fill_with(Shape::d4(c, 1, k, k), |_| self.sample(fan_in, rng))
    }

    /// `[Out, In]` dense weights.
    pub fn dense_weight(&self, out: usize, inp: usize, rng: &mut Rng64) -> Tensor {
        Tensor::fill_with(Shape::d2(out, inp), |_| self.sample(inp, rng))
    }

    /// Zero bias of length `n`.
    pub fn bias(&self, n: usize) -> Tensor {
        Tensor::zeros(Shape::d1(n))
    }
}

impl Default for WeightInit {
    fn default() -> Self {
        Self::he()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(5);
        let init = WeightInit::he();
        assert_eq!(
            init.conv_weight(2, 3, 3, &mut a),
            init.conv_weight(2, 3, 3, &mut b)
        );
    }

    #[test]
    fn bounded_by_limit() {
        let mut rng = Rng64::new(9);
        let init = WeightInit::he();
        let w = init.dense_weight(16, 64, &mut rng);
        let limit = std::f32::consts::SQRT_2 * (3.0f32 / 64.0).sqrt();
        assert!(w.data().iter().all(|x| x.abs() <= limit));
        // And not degenerate: values actually vary.
        assert!(w.abs_max() > limit * 0.5);
    }

    #[test]
    fn shapes_correct() {
        let mut rng = Rng64::new(1);
        let init = WeightInit::xavier();
        assert_eq!(
            init.conv_weight(4, 2, 3, &mut rng).shape().dims(),
            &[4, 2, 3, 3]
        );
        assert_eq!(
            init.depthwise_weight(5, 3, &mut rng).shape().dims(),
            &[5, 1, 3, 3]
        );
        assert_eq!(init.dense_weight(7, 9, &mut rng).shape().dims(), &[7, 9]);
        assert_eq!(init.bias(6).shape().dims(), &[6]);
    }
}

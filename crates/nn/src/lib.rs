//! A small neural-network inference engine.
//!
//! Sits on top of [`mlperf_tensor`] and provides what the proxy reference
//! models need:
//!
//! * [`layer`] — typed layers (convolutions, dense, pooling, activations).
//! * [`network`] — feed-forward graphs with residual blocks, a forward pass,
//!   and parameter / MAC accounting (the numbers behind Table I's
//!   "GOPS/input" column are of this kind).
//! * [`init`] — deterministic He-style weight initialization from a seed, so
//!   "teacher" reference networks are reproducible.
//! * [`quantized`] — post-training INT8 quantization of a whole network with
//!   activation calibration (the paper's calibration-set workflow), and a
//!   quantized forward pass with i32 accumulation.
//! * [`gru`] — a GRU cell for the GNMT-style recurrent proxy.
//!
//! # Examples
//!
//! ```
//! use mlperf_nn::network::NetworkBuilder;
//! use mlperf_nn::layer::Activation;
//! use mlperf_tensor::{Shape, Tensor};
//! use mlperf_stats::Rng64;
//!
//! let mut rng = Rng64::new(7);
//! let net = NetworkBuilder::new(Shape::d3(1, 8, 8))
//!     .conv2d(4, 3, 1, 1, Activation::Relu, &mut rng)?
//!     .global_avgpool()?
//!     .dense(3, Activation::None, &mut rng)?
//!     .softmax()?
//!     .build();
//! let input = Tensor::zeros(Shape::d3(1, 8, 8));
//! let probs = net.forward(&input)?;
//! assert_eq!(probs.len(), 3);
//! # Ok::<(), mlperf_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gru;
pub mod init;
pub mod layer;
pub mod network;
pub mod quantized;

pub use layer::{Activation, Layer};
pub use network::{Network, NetworkBuilder};
pub use quantized::QNetwork;

/// Errors from network construction or execution.
#[derive(Debug)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(mlperf_tensor::TensorError),
    /// The network definition was inconsistent (e.g. residual shape change).
    BadDefinition(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadDefinition(msg) => write!(f, "bad network definition: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::BadDefinition(_) => None,
        }
    }
}

impl From<mlperf_tensor::TensorError> for NnError {
    fn from(e: mlperf_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

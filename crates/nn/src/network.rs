//! Feed-forward networks with residual blocks.

use crate::layer::{Activation, Layer};
use crate::NnError;
use mlperf_stats::Rng64;
use mlperf_tensor::ops::Conv2dParams;
use mlperf_tensor::{Shape, Tensor};

use crate::init::WeightInit;

/// One node of a network: a plain layer or a residual block whose inner
/// layers must preserve shape (`out = act(in + f(in))`).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A plain layer.
    Layer(Layer),
    /// A shape-preserving residual block.
    Residual {
        /// The residual branch.
        body: Vec<Layer>,
        /// Activation applied after the skip addition.
        activation: Activation,
    },
}

/// A feed-forward network.
///
/// See [`NetworkBuilder`] for construction; the crate-level docs show a full
/// example.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    input_shape: Shape,
    nodes: Vec<Node>,
    output_shape: Shape,
}

impl Network {
    /// The expected input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The output shape.
    pub fn output_shape(&self) -> &Shape {
        &self.output_shape
    }

    /// The network's nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Runs a forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `input` does not match the declared input shape
    /// or an internal kernel rejects a shape (impossible for builder-made
    /// networks).
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.shape() != &self.input_shape {
            return Err(NnError::BadDefinition(format!(
                "input shape {} does not match network input {}",
                input.shape(),
                self.input_shape
            )));
        }
        let mut x = input.clone();
        for node in &self.nodes {
            x = match node {
                Node::Layer(layer) => layer.forward(&x)?,
                Node::Residual { body, activation } => {
                    let skip = x.clone();
                    let mut y = x;
                    for layer in body {
                        y = layer.forward(&y)?;
                    }
                    activation.apply(&y.add(&skip)?)
                }
            };
        }
        Ok(x)
    }

    /// Returns a copy with every weight tensor transformed by `f` (biases
    /// untouched). Used to build weight-only quantized variants: pass a
    /// quantize→dequantize roundtrip to emulate INT8 weight storage with
    /// higher-precision activations and accumulation.
    pub fn map_parameters<F: Fn(&Tensor) -> Tensor>(&self, f: F) -> Network {
        let map_layer = |layer: &Layer| match layer {
            Layer::Conv2d {
                weight,
                bias,
                params,
                activation,
            } => Layer::Conv2d {
                weight: f(weight),
                bias: bias.clone(),
                params: *params,
                activation: *activation,
            },
            Layer::DepthwiseConv2d {
                weight,
                bias,
                params,
                activation,
            } => Layer::DepthwiseConv2d {
                weight: f(weight),
                bias: bias.clone(),
                params: *params,
                activation: *activation,
            },
            Layer::Dense {
                weight,
                bias,
                activation,
            } => Layer::Dense {
                weight: f(weight),
                bias: bias.clone(),
                activation: *activation,
            },
            other => other.clone(),
        };
        Network {
            input_shape: self.input_shape.clone(),
            output_shape: self.output_shape.clone(),
            nodes: self
                .nodes
                .iter()
                .map(|node| match node {
                    Node::Layer(l) => Node::Layer(map_layer(l)),
                    Node::Residual { body, activation } => Node::Residual {
                        body: body.iter().map(map_layer).collect(),
                        activation: *activation,
                    },
                })
                .collect(),
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Layer(l) => l.param_count(),
                Node::Residual { body, .. } => body.iter().map(Layer::param_count).sum(),
            })
            .sum()
    }

    /// Total multiply-accumulates for one forward pass.
    pub fn mac_count(&self) -> u64 {
        // Shapes were validated at build time, so the traversal cannot fail.
        let mut shape = self.input_shape.clone();
        let mut total = 0u64;
        for node in &self.nodes {
            match node {
                Node::Layer(l) => {
                    total += l.mac_count(&shape).expect("validated at build time");
                    shape = l.output_shape(&shape).expect("validated at build time");
                }
                Node::Residual { body, .. } => {
                    let mut inner = shape.clone();
                    for l in body {
                        total += l.mac_count(&inner).expect("validated at build time");
                        inner = l.output_shape(&inner).expect("validated at build time");
                    }
                }
            }
        }
        total
    }
}

/// Incremental [`Network`] constructor that validates shapes as layers are
/// added, so a built network can never fail on a well-shaped input.
#[derive(Debug)]
pub struct NetworkBuilder {
    input_shape: Shape,
    current: Shape,
    nodes: Vec<Node>,
    init: WeightInit,
}

impl NetworkBuilder {
    /// Starts a network with the given input shape.
    pub fn new(input_shape: Shape) -> Self {
        Self {
            current: input_shape.clone(),
            input_shape,
            nodes: Vec::new(),
            init: WeightInit::he(),
        }
    }

    /// Overrides the weight initializer for subsequent layers.
    pub fn with_init(mut self, init: WeightInit) -> Self {
        self.init = init;
        self
    }

    fn push(mut self, layer: Layer) -> Result<Self, NnError> {
        self.current = layer.output_shape(&self.current)?;
        self.nodes.push(Node::Layer(layer));
        Ok(self)
    }

    /// Appends a convolution with `out_c` output channels and a `k`×`k`
    /// kernel.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the current shape is not rank 3 or the kernel
    /// does not fit.
    pub fn conv2d(
        self,
        out_c: usize,
        k: usize,
        stride: usize,
        padding: usize,
        activation: Activation,
        rng: &mut Rng64,
    ) -> Result<Self, NnError> {
        let in_c = self.current.dims().first().copied().unwrap_or(0);
        let weight = self.init.conv_weight(out_c, in_c, k, rng);
        let bias = self.init.bias(out_c);
        let params = Conv2dParams::new(stride, padding)?;
        self.push(Layer::Conv2d {
            weight,
            bias,
            params,
            activation,
        })
    }

    /// Appends a depthwise convolution with a `k`×`k` kernel.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the current shape is not rank 3 or the kernel
    /// does not fit.
    pub fn depthwise_conv2d(
        self,
        k: usize,
        stride: usize,
        padding: usize,
        activation: Activation,
        rng: &mut Rng64,
    ) -> Result<Self, NnError> {
        let c = self.current.dims().first().copied().unwrap_or(0);
        let weight = self.init.depthwise_weight(c, k, rng);
        let bias = self.init.bias(c);
        let params = Conv2dParams::new(stride, padding)?;
        self.push(Layer::DepthwiseConv2d {
            weight,
            bias,
            params,
            activation,
        })
    }

    /// Appends a shape-preserving residual block of two 3×3 convolutions —
    /// the ResNet basic block.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the current shape is not rank 3.
    pub fn residual_block(
        mut self,
        activation: Activation,
        rng: &mut Rng64,
    ) -> Result<Self, NnError> {
        let dims = self.current.dims();
        if dims.len() != 3 {
            return Err(NnError::BadDefinition(format!(
                "residual block needs a [C,H,W] input, got {}",
                self.current
            )));
        }
        let c = dims[0];
        let body = vec![
            Layer::Conv2d {
                weight: self.init.conv_weight(c, c, 3, rng),
                bias: self.init.bias(c),
                params: Conv2dParams::UNIT,
                activation,
            },
            Layer::Conv2d {
                weight: self.init.conv_weight(c, c, 3, rng),
                bias: self.init.bias(c),
                params: Conv2dParams::UNIT,
                activation: Activation::None,
            },
        ];
        // Validate the body preserves shape.
        let mut s = self.current.clone();
        for l in &body {
            s = l.output_shape(&s)?;
        }
        if s != self.current {
            return Err(NnError::BadDefinition(
                "residual body must preserve shape".into(),
            ));
        }
        self.nodes.push(Node::Residual { body, activation });
        Ok(self)
    }

    /// Appends a max-pool layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the window does not fit the current shape.
    pub fn maxpool(self, k: usize) -> Result<Self, NnError> {
        self.push(Layer::MaxPool { k })
    }

    /// Appends global average pooling.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the current shape is not rank 3.
    pub fn global_avgpool(self) -> Result<Self, NnError> {
        self.push(Layer::GlobalAvgPool)
    }

    /// Appends a flatten layer.
    ///
    /// # Errors
    ///
    /// Never fails for builder-made networks; returns [`NnError`] only on
    /// internal shape inconsistency.
    pub fn flatten(self) -> Result<Self, NnError> {
        self.push(Layer::Flatten)
    }

    /// Appends a dense layer with `out` units.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the current shape is not rank 1.
    pub fn dense(
        self,
        out: usize,
        activation: Activation,
        rng: &mut Rng64,
    ) -> Result<Self, NnError> {
        let inp = self.current.len();
        if self.current.rank() != 1 {
            return Err(NnError::BadDefinition(format!(
                "dense needs a rank-1 input, got {} (insert flatten/pool first)",
                self.current
            )));
        }
        let weight = self.init.dense_weight(out, inp, rng);
        let bias = self.init.bias(out);
        self.push(Layer::Dense {
            weight,
            bias,
            activation,
        })
    }

    /// Appends a softmax layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the current shape is not rank 1.
    pub fn softmax(self) -> Result<Self, NnError> {
        self.push(Layer::Softmax)
    }

    /// Finalizes the network.
    pub fn build(self) -> Network {
        Network {
            input_shape: self.input_shape,
            output_shape: self.current,
            nodes: self.nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cnn(seed: u64) -> Network {
        let mut rng = Rng64::new(seed);
        NetworkBuilder::new(Shape::d3(2, 8, 8))
            .conv2d(4, 3, 1, 1, Activation::Relu, &mut rng)
            .unwrap()
            .residual_block(Activation::Relu, &mut rng)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .global_avgpool()
            .unwrap()
            .dense(5, Activation::None, &mut rng)
            .unwrap()
            .softmax()
            .unwrap()
            .build()
    }

    #[test]
    fn forward_produces_distribution() {
        let net = tiny_cnn(1);
        assert_eq!(net.output_shape().dims(), &[5]);
        let input = Tensor::fill_with(Shape::d3(2, 8, 8), |i| (i[1] + i[2]) as f32 / 16.0);
        let out = net.forward(&input).unwrap();
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn forward_is_deterministic_and_seed_sensitive() {
        let input = Tensor::fill_with(Shape::d3(2, 8, 8), |i| i[2] as f32 / 8.0);
        let a = tiny_cnn(1).forward(&input).unwrap();
        let b = tiny_cnn(1).forward(&input).unwrap();
        let c = tiny_cnn(2).forward(&input).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let net = tiny_cnn(3);
        assert!(net.forward(&Tensor::zeros(Shape::d3(2, 9, 9))).is_err());
    }

    #[test]
    fn counts_are_consistent() {
        let net = tiny_cnn(4);
        // conv: 4*(2*9)+... just assert positivity and stability.
        assert!(net.param_count() > 0);
        assert!(net.mac_count() > 0);
        assert_eq!(net.param_count(), tiny_cnn(5).param_count());
        assert_eq!(net.mac_count(), tiny_cnn(5).mac_count());
    }

    #[test]
    fn dense_requires_rank1() {
        let mut rng = Rng64::new(6);
        let err = NetworkBuilder::new(Shape::d3(1, 4, 4)).dense(3, Activation::None, &mut rng);
        assert!(err.is_err());
    }

    #[test]
    fn residual_requires_rank3() {
        let mut rng = Rng64::new(7);
        let b = NetworkBuilder::new(Shape::d1(8));
        assert!(b.residual_block(Activation::Relu, &mut rng).is_err());
    }

    #[test]
    fn mobilenet_style_blocks_build() {
        let mut rng = Rng64::new(8);
        let net = NetworkBuilder::new(Shape::d3(3, 16, 16))
            .conv2d(8, 3, 2, 1, Activation::Relu6, &mut rng)
            .unwrap()
            .depthwise_conv2d(3, 1, 1, Activation::Relu6, &mut rng)
            .unwrap()
            .conv2d(16, 1, 1, 0, Activation::Relu6, &mut rng)
            .unwrap()
            .global_avgpool()
            .unwrap()
            .dense(10, Activation::None, &mut rng)
            .unwrap()
            .build();
        assert_eq!(net.output_shape().dims(), &[10]);
        let out = net.forward(&Tensor::zeros(Shape::d3(3, 16, 16))).unwrap();
        assert_eq!(out.len(), 10);
    }
}

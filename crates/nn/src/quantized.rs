//! Post-training INT8 quantization of whole networks.
//!
//! Implements the paper's calibration workflow (Section IV-A): "MLPerf
//! provides a small, fixed data set that can be used to calibrate a quantized
//! network." [`QNetwork::quantize`] takes the FP32 network plus calibration
//! inputs, records the activation ranges observed at every quantizable layer,
//! and produces a network whose convolutions and dense layers run on `i8`
//! payloads with `i32` accumulation. Retraining is, per the rules, not
//! available — the accuracy gap you measure is the honest PTQ gap.

use crate::layer::{Activation, Layer};
use crate::network::{Network, Node};
use crate::NnError;
use mlperf_tensor::quant::{qconv2d_per_channel, qdense_per_channel, ChannelQTensor, QuantParams};
use mlperf_tensor::{QTensor, Tensor};

/// A quantized layer: INT8 where supported, FP32 passthrough elsewhere.
#[derive(Debug, Clone, PartialEq)]
enum QLayer {
    Conv2d {
        weight: ChannelQTensor,
        bias: Tensor,
        params: mlperf_tensor::ops::Conv2dParams,
        activation: Activation,
        input_quant: QuantParams,
    },
    Dense {
        weight: ChannelQTensor,
        bias: Tensor,
        activation: Activation,
        input_quant: QuantParams,
    },
    /// Layers that stay in FP32 (pooling, flatten, softmax, depthwise —
    /// depthwise is kept FP32 like many early mobile runtimes did).
    Passthrough(Layer),
}

impl QLayer {
    fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        match self {
            QLayer::Conv2d {
                weight,
                bias,
                params,
                activation,
                input_quant,
            } => {
                let qin = QTensor::quantize_with(input, *input_quant);
                Ok(activation.apply(&qconv2d_per_channel(&qin, weight, bias, *params)?))
            }
            QLayer::Dense {
                weight,
                bias,
                activation,
                input_quant,
            } => {
                let qin = QTensor::quantize_with(input, *input_quant);
                Ok(activation.apply(&qdense_per_channel(&qin, weight, bias)?))
            }
            QLayer::Passthrough(layer) => Ok(layer.forward(input)?),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum QNode {
    Layer(QLayer),
    Residual {
        body: Vec<QLayer>,
        activation: Activation,
    },
}

/// An INT8-quantized network.
///
/// # Examples
///
/// ```
/// use mlperf_nn::network::NetworkBuilder;
/// use mlperf_nn::layer::Activation;
/// use mlperf_nn::QNetwork;
/// use mlperf_tensor::{Shape, Tensor};
/// use mlperf_stats::Rng64;
///
/// let mut rng = Rng64::new(3);
/// let net = NetworkBuilder::new(Shape::d3(1, 6, 6))
///     .conv2d(2, 3, 1, 1, Activation::Relu, &mut rng)?
///     .global_avgpool()?
///     .dense(4, Activation::None, &mut rng)?
///     .build();
/// let calib = vec![Tensor::fill_with(Shape::d3(1, 6, 6), |i| i[1] as f32 / 6.0)];
/// let qnet = QNetwork::quantize(&net, &calib)?;
/// let out = qnet.forward(&calib[0])?;
/// assert_eq!(out.len(), 4);
/// # Ok::<(), mlperf_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QNetwork {
    input_shape: mlperf_tensor::Shape,
    nodes: Vec<QNode>,
}

impl QNetwork {
    /// Quantizes `network` using `calibration` inputs to set activation
    /// ranges.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `calibration` is empty or a calibration input
    /// has the wrong shape.
    pub fn quantize(network: &Network, calibration: &[Tensor]) -> Result<Self, NnError> {
        Self::quantize_mixed(network, calibration, false)
    }

    /// Like [`QNetwork::quantize`], but with `fp32_head` the final
    /// parameterized layer stays in FP32 — the mixed-precision deployment
    /// common for detection heads, whose box/score regressions are more
    /// quantization-sensitive than backbone features.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QNetwork::quantize`].
    pub fn quantize_mixed(
        network: &Network,
        calibration: &[Tensor],
        fp32_head: bool,
    ) -> Result<Self, NnError> {
        if calibration.is_empty() {
            return Err(NnError::BadDefinition(
                "calibration set must not be empty".into(),
            ));
        }
        // Pass each calibration input through the FP32 network, recording the
        // abs-max of the activation arriving at every quantizable layer.
        // Ranges are indexed by traversal order: node index, then body index.
        let mut ranges: std::collections::HashMap<(usize, usize), f32> =
            std::collections::HashMap::new();
        for input in calibration {
            let mut x = input.clone();
            if x.shape() != network.input_shape() {
                return Err(NnError::BadDefinition(format!(
                    "calibration input shape {} does not match network input {}",
                    x.shape(),
                    network.input_shape()
                )));
            }
            for (ni, node) in network.nodes().iter().enumerate() {
                match node {
                    Node::Layer(layer) => {
                        record_range(&mut ranges, (ni, 0), layer, &x);
                        x = layer.forward(&x)?;
                    }
                    Node::Residual { body, activation } => {
                        let skip = x.clone();
                        let mut y = x;
                        for (bi, layer) in body.iter().enumerate() {
                            record_range(&mut ranges, (ni, bi), layer, &y);
                            y = layer.forward(&y)?;
                        }
                        x = activation.apply(&y.add(&skip)?);
                    }
                }
            }
        }
        // Index of the last parameterized node, kept FP32 in mixed mode.
        let head_index = if fp32_head {
            network.nodes().iter().rposition(|n| match n {
                Node::Layer(l) => matches!(l, Layer::Conv2d { .. } | Layer::Dense { .. }),
                Node::Residual { .. } => true,
            })
        } else {
            None
        };
        let nodes = network
            .nodes()
            .iter()
            .enumerate()
            .map(|(ni, node)| match node {
                Node::Layer(layer) => {
                    if head_index == Some(ni) {
                        QNode::Layer(QLayer::Passthrough(layer.clone()))
                    } else {
                        QNode::Layer(quantize_layer(layer, ranges.get(&(ni, 0))))
                    }
                }
                Node::Residual { body, activation } => QNode::Residual {
                    body: body
                        .iter()
                        .enumerate()
                        .map(|(bi, l)| {
                            if head_index == Some(ni) {
                                QLayer::Passthrough(l.clone())
                            } else {
                                quantize_layer(l, ranges.get(&(ni, bi)))
                            }
                        })
                        .collect(),
                    activation: *activation,
                },
            })
            .collect();
        Ok(Self {
            input_shape: network.input_shape().clone(),
            nodes,
        })
    }

    /// The expected input shape.
    pub fn input_shape(&self) -> &mlperf_tensor::Shape {
        &self.input_shape
    }

    /// Runs a quantized forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `input` does not match the network input shape.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.shape() != &self.input_shape {
            return Err(NnError::BadDefinition(format!(
                "input shape {} does not match network input {}",
                input.shape(),
                self.input_shape
            )));
        }
        let mut x = input.clone();
        for node in &self.nodes {
            x = match node {
                QNode::Layer(l) => l.forward(&x)?,
                QNode::Residual { body, activation } => {
                    let skip = x.clone();
                    let mut y = x;
                    for l in body {
                        y = l.forward(&y)?;
                    }
                    activation.apply(&y.add(&skip)?)
                }
            };
        }
        Ok(x)
    }
}

fn record_range(
    ranges: &mut std::collections::HashMap<(usize, usize), f32>,
    key: (usize, usize),
    layer: &Layer,
    input: &Tensor,
) {
    if matches!(layer, Layer::Conv2d { .. } | Layer::Dense { .. }) {
        let e = ranges.entry(key).or_insert(0.0);
        *e = e.max(input.abs_max());
    }
}

fn quantize_layer(layer: &Layer, range: Option<&f32>) -> QLayer {
    match layer {
        Layer::Conv2d {
            weight,
            bias,
            params,
            activation,
        } => QLayer::Conv2d {
            weight: ChannelQTensor::quantize_dim0(weight),
            bias: bias.clone(),
            params: *params,
            activation: *activation,
            input_quant: QuantParams::from_abs_max(range.copied().unwrap_or(1.0)),
        },
        Layer::Dense {
            weight,
            bias,
            activation,
        } => QLayer::Dense {
            weight: ChannelQTensor::quantize_dim0(weight),
            bias: bias.clone(),
            activation: *activation,
            input_quant: QuantParams::from_abs_max(range.copied().unwrap_or(1.0)),
        },
        other => QLayer::Passthrough(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::network::NetworkBuilder;
    use mlperf_stats::Rng64;
    use mlperf_tensor::Shape;

    fn net(seed: u64) -> Network {
        let mut rng = Rng64::new(seed);
        NetworkBuilder::new(Shape::d3(2, 8, 8))
            .conv2d(4, 3, 1, 1, Activation::Relu, &mut rng)
            .unwrap()
            .residual_block(Activation::Relu, &mut rng)
            .unwrap()
            .global_avgpool()
            .unwrap()
            .dense(6, Activation::None, &mut rng)
            .unwrap()
            .build()
    }

    fn inputs(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| Tensor::fill_with(Shape::d3(2, 8, 8), |_| rng.next_f64() as f32 * 2.0 - 1.0))
            .collect()
    }

    #[test]
    fn quantized_outputs_close_but_not_identical() {
        let network = net(1);
        let calib = inputs(8, 100);
        let qnet = QNetwork::quantize(&network, &calib).unwrap();
        let test = inputs(16, 200);
        let mut max_rel = 0.0f32;
        let mut any_diff = false;
        for x in &test {
            let exact = network.forward(x).unwrap();
            let approx = qnet.forward(x).unwrap();
            let scale = exact.abs_max().max(1e-3);
            for (e, a) in exact.data().iter().zip(approx.data()) {
                max_rel = max_rel.max((e - a).abs() / scale);
                any_diff |= e != a;
            }
        }
        assert!(any_diff, "quantization changed nothing");
        assert!(max_rel < 0.25, "relative error too large: {max_rel}");
    }

    #[test]
    fn argmax_mostly_preserved() {
        // The quality-window story in miniature: most predictions agree.
        let network = net(2);
        let calib = inputs(8, 300);
        let qnet = QNetwork::quantize(&network, &calib).unwrap();
        let test = inputs(64, 400);
        let agree = test
            .iter()
            .filter(|x| network.forward(x).unwrap().argmax() == qnet.forward(x).unwrap().argmax())
            .count();
        assert!(agree >= 56, "only {agree}/64 argmax agreements");
    }

    #[test]
    fn empty_calibration_rejected() {
        assert!(QNetwork::quantize(&net(3), &[]).is_err());
    }

    #[test]
    fn wrong_calibration_shape_rejected() {
        let bad = vec![Tensor::zeros(Shape::d3(1, 8, 8))];
        assert!(QNetwork::quantize(&net(4), &bad).is_err());
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let qnet = QNetwork::quantize(&net(5), &inputs(2, 1)).unwrap();
        assert!(qnet.forward(&Tensor::zeros(Shape::d3(2, 9, 9))).is_err());
    }

    #[test]
    fn quantization_is_deterministic() {
        let network = net(6);
        let calib = inputs(4, 7);
        let a = QNetwork::quantize(&network, &calib).unwrap();
        let b = QNetwork::quantize(&network, &calib).unwrap();
        let x = &inputs(1, 8)[0];
        assert_eq!(a.forward(x).unwrap(), b.forward(x).unwrap());
    }
}

//! Typed layers.

use mlperf_tensor::ops::{self, Conv2dParams};
use mlperf_tensor::{Shape, Tensor, TensorError};

/// Pointwise activation applied after a parameterized layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// `max(x, 0)`.
    Relu,
    /// `clamp(x, 0, 6)` — MobileNet's activation.
    Relu6,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        match self {
            Activation::None => t.clone(),
            Activation::Relu => ops::relu(t),
            Activation::Relu6 => ops::relu6(t),
            Activation::Tanh => ops::tanh(t),
            Activation::Sigmoid => ops::sigmoid(t),
        }
    }
}

/// A single network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Standard 2-D convolution.
    Conv2d {
        /// `[OutC, InC, KH, KW]` weights.
        weight: Tensor,
        /// `[OutC]` bias.
        bias: Tensor,
        /// Stride and padding.
        params: Conv2dParams,
        /// Post-activation.
        activation: Activation,
    },
    /// Depthwise 2-D convolution.
    DepthwiseConv2d {
        /// `[C, 1, KH, KW]` weights.
        weight: Tensor,
        /// `[C]` bias.
        bias: Tensor,
        /// Stride and padding.
        params: Conv2dParams,
        /// Post-activation.
        activation: Activation,
    },
    /// Fully connected layer over a rank-1 input.
    Dense {
        /// `[Out, In]` weights.
        weight: Tensor,
        /// `[Out]` bias.
        bias: Tensor,
        /// Post-activation.
        activation: Activation,
    },
    /// Non-overlapping max pooling with window and stride `k`.
    MaxPool {
        /// Window size.
        k: usize,
    },
    /// Global average pooling (`[C,H,W]` → `[C]`).
    GlobalAvgPool,
    /// Flattens any tensor to rank 1.
    Flatten,
    /// Softmax over a rank-1 tensor.
    Softmax,
}

impl Layer {
    /// Runs the layer forward.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`] from the underlying kernel on shape
    /// disagreements.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        match self {
            Layer::Conv2d {
                weight,
                bias,
                params,
                activation,
            } => Ok(activation.apply(&ops::conv2d(input, weight, bias, *params)?)),
            Layer::DepthwiseConv2d {
                weight,
                bias,
                params,
                activation,
            } => Ok(activation.apply(&ops::depthwise_conv2d(input, weight, bias, *params)?)),
            Layer::Dense {
                weight,
                bias,
                activation,
            } => Ok(activation.apply(&ops::dense(input, weight, bias)?)),
            Layer::MaxPool { k } => ops::maxpool2d(input, *k),
            Layer::GlobalAvgPool => ops::global_avgpool(input),
            Layer::Flatten => input.reshape(Shape::d1(input.len())),
            Layer::Softmax => ops::softmax(input),
        }
    }

    /// Output shape for a given input shape, or an error if incompatible.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when the layer cannot accept the shape.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape, TensorError> {
        match self {
            Layer::Conv2d { weight, params, .. } => {
                let (ic, h, w) = expect_rank3(input)?;
                let wd = weight.shape().dims();
                if wd[1] != ic {
                    return Err(TensorError::ShapeMismatch {
                        left: input.clone(),
                        right: weight.shape().clone(),
                    });
                }
                let oh = extent(params, h, wd[2])?;
                let ow = extent(params, w, wd[3])?;
                Ok(Shape::d3(wd[0], oh, ow))
            }
            Layer::DepthwiseConv2d { weight, params, .. } => {
                let (c, h, w) = expect_rank3(input)?;
                let wd = weight.shape().dims();
                if wd[0] != c {
                    return Err(TensorError::ShapeMismatch {
                        left: input.clone(),
                        right: weight.shape().clone(),
                    });
                }
                let oh = extent(params, h, wd[2])?;
                let ow = extent(params, w, wd[3])?;
                Ok(Shape::d3(c, oh, ow))
            }
            Layer::Dense { weight, .. } => {
                if input.rank() != 1 || input.len() != weight.shape().dim(1) {
                    return Err(TensorError::ShapeMismatch {
                        left: input.clone(),
                        right: weight.shape().clone(),
                    });
                }
                Ok(Shape::d1(weight.shape().dim(0)))
            }
            Layer::MaxPool { k } => {
                let (c, h, w) = expect_rank3(input)?;
                if *k == 0 || *k > h || *k > w {
                    return Err(TensorError::BadParameter(format!(
                        "pool window {k} invalid for {h}x{w}"
                    )));
                }
                Ok(Shape::d3(c, h / k, w / k))
            }
            Layer::GlobalAvgPool => {
                let (c, _, _) = expect_rank3(input)?;
                Ok(Shape::d1(c))
            }
            Layer::Flatten => Ok(Shape::d1(input.len())),
            Layer::Softmax => {
                if input.rank() != 1 {
                    return Err(TensorError::ShapeMismatch {
                        left: input.clone(),
                        right: Shape::d1(input.len()),
                    });
                }
                Ok(input.clone())
            }
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d { weight, bias, .. }
            | Layer::DepthwiseConv2d { weight, bias, .. }
            | Layer::Dense { weight, bias, .. } => weight.len() + bias.len(),
            _ => 0,
        }
    }

    /// Multiply-accumulate operations for one forward pass at `input` shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] when the layer cannot accept the shape.
    pub fn mac_count(&self, input: &Shape) -> Result<u64, TensorError> {
        let out = self.output_shape(input)?;
        Ok(match self {
            Layer::Conv2d { weight, .. } => {
                let wd = weight.shape().dims();
                out.len() as u64 * (wd[1] * wd[2] * wd[3]) as u64
            }
            Layer::DepthwiseConv2d { weight, .. } => {
                let wd = weight.shape().dims();
                out.len() as u64 * (wd[2] * wd[3]) as u64
            }
            Layer::Dense { weight, .. } => weight.len() as u64,
            _ => 0,
        })
    }
}

fn expect_rank3(s: &Shape) -> Result<(usize, usize, usize), TensorError> {
    let d = s.dims();
    if d.len() != 3 {
        return Err(TensorError::ShapeMismatch {
            left: s.clone(),
            right: Shape::d3(1, 1, 1),
        });
    }
    Ok((d[0], d[1], d[2]))
}

fn extent(p: &Conv2dParams, input: usize, kernel: usize) -> Result<usize, TensorError> {
    p.out_extent(input, kernel)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kernel} too large for {input}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::WeightInit;
    use mlperf_stats::Rng64;

    fn conv_layer(rng: &mut Rng64) -> Layer {
        let init = WeightInit::he();
        Layer::Conv2d {
            weight: init.conv_weight(4, 2, 3, rng),
            bias: init.bias(4),
            params: Conv2dParams::UNIT,
            activation: Activation::Relu,
        }
    }

    #[test]
    fn conv_output_shape_matches_forward() {
        let mut rng = Rng64::new(1);
        let layer = conv_layer(&mut rng);
        let input = Tensor::zeros(Shape::d3(2, 8, 8));
        let expected = layer.output_shape(input.shape()).unwrap();
        let out = layer.forward(&input).unwrap();
        assert_eq!(out.shape(), &expected);
        assert_eq!(expected.dims(), &[4, 8, 8]);
    }

    #[test]
    fn relu_activation_applied() {
        let layer = Layer::Dense {
            weight: Tensor::from_vec(Shape::d2(1, 1), vec![-1.0]).unwrap(),
            bias: Tensor::zeros(Shape::d1(1)),
            activation: Activation::Relu,
        };
        let out = layer
            .forward(&Tensor::from_vec(Shape::d1(1), vec![5.0]).unwrap())
            .unwrap();
        assert_eq!(out.data(), &[0.0]);
    }

    #[test]
    fn all_activations_apply() {
        let t = Tensor::from_vec(Shape::d1(2), vec![-1.0, 8.0]).unwrap();
        assert_eq!(Activation::None.apply(&t).data(), &[-1.0, 8.0]);
        assert_eq!(Activation::Relu.apply(&t).data(), &[0.0, 8.0]);
        assert_eq!(Activation::Relu6.apply(&t).data(), &[0.0, 6.0]);
        assert!(Activation::Sigmoid.apply(&t).data()[0] < 0.5);
        assert!(Activation::Tanh.apply(&t).data()[0] < 0.0);
    }

    #[test]
    fn flatten_and_pool_shapes() {
        let input = Shape::d3(3, 8, 8);
        assert_eq!(Layer::Flatten.output_shape(&input).unwrap().dims(), &[192]);
        assert_eq!(
            Layer::MaxPool { k: 2 }.output_shape(&input).unwrap().dims(),
            &[3, 4, 4]
        );
        assert_eq!(
            Layer::GlobalAvgPool.output_shape(&input).unwrap().dims(),
            &[3]
        );
    }

    #[test]
    fn mac_count_hand_checked() {
        // Conv: out elements (4*8*8) * per-element MACs (2*3*3) = 4608.
        let mut rng = Rng64::new(2);
        let layer = conv_layer(&mut rng);
        assert_eq!(layer.mac_count(&Shape::d3(2, 8, 8)).unwrap(), 256 * 18);
        let dense = Layer::Dense {
            weight: Tensor::zeros(Shape::d2(10, 4)),
            bias: Tensor::zeros(Shape::d1(10)),
            activation: Activation::None,
        };
        assert_eq!(dense.mac_count(&Shape::d1(4)).unwrap(), 40);
        assert_eq!(Layer::Flatten.mac_count(&Shape::d3(1, 2, 2)).unwrap(), 0);
    }

    #[test]
    fn param_count() {
        let dense = Layer::Dense {
            weight: Tensor::zeros(Shape::d2(10, 4)),
            bias: Tensor::zeros(Shape::d1(10)),
            activation: Activation::None,
        };
        assert_eq!(dense.param_count(), 50);
        assert_eq!(Layer::Softmax.param_count(), 0);
    }

    #[test]
    fn shape_errors_propagate() {
        let layer = Layer::Dense {
            weight: Tensor::zeros(Shape::d2(2, 3)),
            bias: Tensor::zeros(Shape::d1(2)),
            activation: Activation::None,
        };
        assert!(layer.output_shape(&Shape::d1(5)).is_err());
        assert!(layer.forward(&Tensor::zeros(Shape::d1(5))).is_err());
        assert!(Layer::Softmax.output_shape(&Shape::d2(2, 2)).is_err());
        assert!(Layer::MaxPool { k: 9 }
            .output_shape(&Shape::d3(1, 4, 4))
            .is_err());
    }
}

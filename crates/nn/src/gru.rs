//! A GRU cell for the GNMT-style recurrent proxy model.
//!
//! GNMT is the paper's RNN representative (Table I). The proxy translation
//! model in `mlperf-models` uses a single-layer GRU encoder and decoder built
//! from this cell; that is enough recurrence to exhibit the properties the
//! benchmark cares about (sequential data dependence, variable sequence
//! length, quantization sensitivity of recurrent state).

use crate::init::WeightInit;
use crate::NnError;
use mlperf_stats::Rng64;
use mlperf_tensor::ops::{concat1, dense, sigmoid, tanh};
use mlperf_tensor::{Shape, Tensor};

/// A gated recurrent unit: `h' = (1-z)·h + z·h̃`.
#[derive(Debug, Clone, PartialEq)]
pub struct GruCell {
    input_dim: usize,
    hidden_dim: usize,
    // Gate weights operate on [x ; h] concatenations.
    w_update: Tensor,
    b_update: Tensor,
    w_reset: Tensor,
    b_reset: Tensor,
    w_cand: Tensor,
    b_cand: Tensor,
}

impl GruCell {
    /// Creates a cell with deterministic Xavier-initialized weights.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut Rng64) -> Self {
        let init = WeightInit::xavier();
        let joint = input_dim + hidden_dim;
        Self {
            input_dim,
            hidden_dim,
            w_update: init.dense_weight(hidden_dim, joint, rng),
            b_update: init.bias(hidden_dim),
            w_reset: init.dense_weight(hidden_dim, joint, rng),
            b_reset: init.bias(hidden_dim),
            w_cand: init.dense_weight(hidden_dim, joint, rng),
            b_cand: init.bias(hidden_dim),
        }
    }

    /// The input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Fresh all-zero hidden state.
    pub fn zero_state(&self) -> Tensor {
        Tensor::zeros(Shape::d1(self.hidden_dim))
    }

    /// Advances the hidden state by one input step.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `x` or `h` have the wrong length.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Result<Tensor, NnError> {
        if x.shape().dims() != [self.input_dim] || h.shape().dims() != [self.hidden_dim] {
            return Err(NnError::BadDefinition(format!(
                "gru step expects x[{}] h[{}], got {} and {}",
                self.input_dim,
                self.hidden_dim,
                x.shape(),
                h.shape()
            )));
        }
        let xh = concat1(x, h)?;
        let z = sigmoid(&dense(&xh, &self.w_update, &self.b_update)?);
        let r = sigmoid(&dense(&xh, &self.w_reset, &self.b_reset)?);
        // Candidate uses the reset-gated hidden state.
        let rh = Tensor::from_vec(
            Shape::d1(self.hidden_dim),
            r.data().iter().zip(h.data()).map(|(a, b)| a * b).collect(),
        )?;
        let xrh = concat1(x, &rh)?;
        let cand = tanh(&dense(&xrh, &self.w_cand, &self.b_cand)?);
        let out = Tensor::from_vec(
            Shape::d1(self.hidden_dim),
            z.data()
                .iter()
                .zip(h.data())
                .zip(cand.data())
                .map(|((zi, hi), ci)| (1.0 - zi) * hi + zi * ci)
                .collect(),
        )?;
        Ok(out)
    }

    /// Runs the cell over a whole sequence, returning the final state.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if any step input has the wrong length.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Tensor, NnError> {
        let mut h = self.zero_state();
        for x in inputs {
            h = self.step(x, &h)?;
        }
        Ok(h)
    }

    /// Returns a cell with every weight matrix transformed by `f` (biases
    /// untouched). Used to build post-training-quantized variants: pass a
    /// quantize→dequantize roundtrip to emulate INT8 weight storage.
    pub fn map_weights<F: Fn(&Tensor) -> Tensor>(&self, f: F) -> Self {
        Self {
            input_dim: self.input_dim,
            hidden_dim: self.hidden_dim,
            w_update: f(&self.w_update),
            b_update: self.b_update.clone(),
            w_reset: f(&self.w_reset),
            b_reset: self.b_reset.clone(),
            w_cand: f(&self.w_cand),
            b_cand: self.b_cand.clone(),
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w_update.len()
            + self.w_reset.len()
            + self.w_cand.len()
            + self.b_update.len()
            + self.b_reset.len()
            + self.b_cand.len()
    }

    /// Multiply-accumulates per step.
    pub fn macs_per_step(&self) -> u64 {
        (self.w_update.len() + self.w_reset.len() + self.w_cand.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(dim: usize, i: usize) -> Tensor {
        Tensor::fill_with(Shape::d1(dim), |idx| if idx[0] == i { 1.0 } else { 0.0 })
    }

    #[test]
    fn state_stays_bounded() {
        let mut rng = Rng64::new(1);
        let cell = GruCell::new(4, 8, &mut rng);
        let mut h = cell.zero_state();
        for i in 0..100 {
            h = cell.step(&one_hot(4, i % 4), &h).unwrap();
        }
        // GRU state is a convex combination of tanh outputs: |h| <= 1.
        assert!(h.data().iter().all(|x| x.abs() <= 1.0));
    }

    #[test]
    fn zero_input_zero_state_moves_little() {
        let mut rng = Rng64::new(2);
        let cell = GruCell::new(3, 5, &mut rng);
        let h = cell
            .step(&Tensor::zeros(Shape::d1(3)), &cell.zero_state())
            .unwrap();
        // With zero biases the candidate is tanh(0)=0, so the state stays 0.
        assert!(h.data().iter().all(|x| x.abs() < 1e-6));
    }

    #[test]
    fn different_inputs_different_states() {
        let mut rng = Rng64::new(3);
        let cell = GruCell::new(4, 6, &mut rng);
        let a = cell.run(&[one_hot(4, 0), one_hot(4, 1)]).unwrap();
        let b = cell.run(&[one_hot(4, 1), one_hot(4, 0)]).unwrap();
        assert_ne!(a, b, "GRU must be order sensitive");
    }

    #[test]
    fn run_is_deterministic() {
        let mut r1 = Rng64::new(4);
        let mut r2 = Rng64::new(4);
        let c1 = GruCell::new(4, 6, &mut r1);
        let c2 = GruCell::new(4, 6, &mut r2);
        let seq = vec![one_hot(4, 2), one_hot(4, 0), one_hot(4, 3)];
        assert_eq!(c1.run(&seq).unwrap(), c2.run(&seq).unwrap());
    }

    #[test]
    fn rejects_wrong_dims() {
        let mut rng = Rng64::new(5);
        let cell = GruCell::new(4, 6, &mut rng);
        assert!(cell
            .step(&Tensor::zeros(Shape::d1(5)), &cell.zero_state())
            .is_err());
        assert!(cell
            .step(&Tensor::zeros(Shape::d1(4)), &Tensor::zeros(Shape::d1(7)))
            .is_err());
    }

    #[test]
    fn map_weights_quantization_roundtrip_changes_little() {
        use mlperf_tensor::QTensor;
        let mut rng = Rng64::new(9);
        let cell = GruCell::new(4, 6, &mut rng);
        let quantized = cell.map_weights(|w| QTensor::quantize(w).dequantize());
        let seq = vec![one_hot(4, 1), one_hot(4, 3), one_hot(4, 0)];
        let a = cell.run(&seq).unwrap();
        let b = quantized.run(&seq).unwrap();
        assert_ne!(a, b, "quantization must perturb the state");
        let max_err = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.1, "max_err={max_err}");
    }

    #[test]
    fn counts() {
        let mut rng = Rng64::new(6);
        let cell = GruCell::new(4, 6, &mut rng);
        // Three gate matrices of [6 x 10] plus three [6] biases.
        assert_eq!(cell.param_count(), 3 * 60 + 3 * 6);
        assert_eq!(cell.macs_per_step(), 180);
        assert_eq!(cell.input_dim(), 4);
        assert_eq!(cell.hidden_dim(), 6);
    }
}

//! Cost of the tracing hooks when tracing is off.
//!
//! `run_simulated` delegates to `run_simulated_traced` with a `NoopSink`,
//! so every hot-path event site pays one `sink.enabled()` virtual call.
//! This bench compares the plain entry point against an explicit
//! `NoopSink` and against a real `RingBufferSink`, so a regression in the
//! disabled-path overhead is visible as a gap between the first two
//! numbers.

use mlperf_bench::runner::Bench;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::{run_simulated, run_simulated_traced};
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_trace::{NoopSink, RingBufferSink};
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();
    let settings = TestSettings::server(10_000.0, Nanos::from_millis(10))
        .with_min_query_count(5_000)
        .with_min_duration(Nanos::from_micros(1));

    let baseline = bench.bench("run_simulated_no_sink_param", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
    });

    let noop = bench.bench("run_simulated_traced_noop_sink", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        black_box(run_simulated_traced(&settings, &mut qsl, &mut sut, &NoopSink).expect("runs"))
    });

    bench.bench("run_simulated_traced_ring_buffer", || {
        let sink = RingBufferSink::unbounded();
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        black_box(run_simulated_traced(&settings, &mut qsl, &mut sut, &sink).expect("runs"))
    });

    bench.finish();

    if let (Some(base), Some(noop)) = (baseline, noop) {
        let pct = (noop as f64 / base.max(1) as f64 - 1.0) * 100.0;
        println!("noop-sink overhead vs baseline: {pct:+.1}%");
        // Enforce mode for CI: with MLPERF_TRACE_OVERHEAD_MAX_PCT set, a
        // disabled sink costing more than the allowance fails the run.
        if let Some(max_pct) = std::env::var("MLPERF_TRACE_OVERHEAD_MAX_PCT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if pct > max_pct {
                eprintln!(
                    "trace overhead gate: noop-sink overhead {pct:+.1}% exceeds \
                     allowance {max_pct:.1}%"
                );
                std::process::exit(1);
            }
            println!("trace overhead gate: within {max_pct:.1}% allowance");
        }
    }
}

//! LoadGen event-loop overhead: how much a simulated query costs, which is
//! what bounds the scale of the reproducible experiments.

use mlperf_bench::runner::Bench;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::run_simulated;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::schedule::{sample_indices, server_arrivals};
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();
    for queries in [1_000u64, 10_000] {
        let settings = TestSettings::single_stream()
            .with_min_query_count(queries)
            .with_min_duration(Nanos::from_micros(1));
        bench.bench(&format!("des_single_stream_{queries}_queries"), || {
            let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
            black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
        });
        let settings = TestSettings::server(10_000.0, Nanos::from_millis(10))
            .with_min_query_count(queries)
            .with_min_duration(Nanos::from_micros(1));
        bench.bench(&format!("des_server_{queries}_queries"), || {
            let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
            let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
            black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
        });
    }

    let settings = TestSettings::server(1_000.0, Nanos::from_millis(10));
    bench.bench("poisson_schedule_100k_arrivals", || {
        black_box(server_arrivals(&settings, 100_000))
    });
    let ss = TestSettings::single_stream();
    bench.bench("sample_indices_100k_queries", || {
        black_box(sample_indices(&ss, 1_024, 100_000))
    });

    bench.finish();
}

//! LoadGen event-loop overhead: how much a simulated query costs, which is
//! what bounds the scale of the reproducible experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::run_simulated;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::schedule::{sample_indices, server_arrivals};
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use std::hint::black_box;

fn issue_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_issue_loop");
    for queries in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(queries));
        group.bench_with_input(
            BenchmarkId::new("single_stream", queries),
            &queries,
            |b, &queries| {
                let settings = TestSettings::single_stream()
                    .with_min_query_count(queries)
                    .with_min_duration(Nanos::from_micros(1));
                b.iter(|| {
                    let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
                    let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
                    black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("server", queries),
            &queries,
            |b, &queries| {
                let settings = TestSettings::server(10_000.0, Nanos::from_millis(10))
                    .with_min_query_count(queries)
                    .with_min_duration(Nanos::from_micros(1));
                b.iter(|| {
                    let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
                    let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
                    black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
                })
            },
        );
    }
    group.finish();
}

fn schedule_generation(c: &mut Criterion) {
    let settings = TestSettings::server(1_000.0, Nanos::from_millis(10));
    c.bench_function("poisson_schedule_100k_arrivals", |b| {
        b.iter(|| black_box(server_arrivals(&settings, 100_000)))
    });
    let ss = TestSettings::single_stream();
    c.bench_function("sample_indices_100k_queries", |b| {
        b.iter(|| black_box(sample_indices(&ss, 1_024, 100_000)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = issue_loops, schedule_generation
}
criterion_main!(benches);

//! Microbenchmarks for the tensor/NN substrate.

use mlperf_bench::runner::Bench;
use mlperf_nn::gru::GruCell;
use mlperf_nn::layer::Activation;
use mlperf_nn::network::NetworkBuilder;
use mlperf_nn::QNetwork;
use mlperf_stats::Rng64;
use mlperf_tensor::ops::{conv2d, dense, Conv2dParams};
use mlperf_tensor::quant::qconv2d;
use mlperf_tensor::{QTensor, Shape, Tensor};
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();

    let mut rng = Rng64::new(1);
    let input = Tensor::fill_with(Shape::d3(8, 16, 16), |_| rng.next_f64() as f32 - 0.5);
    let weight = Tensor::fill_with(Shape::d4(16, 8, 3, 3), |_| rng.next_f64() as f32 * 0.1);
    let bias = Tensor::zeros(Shape::d1(16));
    bench.bench("conv2d_8x16x16_to_16ch", || {
        black_box(conv2d(&input, &weight, &bias, Conv2dParams::UNIT).expect("shapes fixed"))
    });
    let qin = QTensor::quantize(&input);
    let qw = QTensor::quantize(&weight);
    bench.bench("qconv2d_8x16x16_to_16ch_int8", || {
        black_box(qconv2d(&qin, &qw, &bias, Conv2dParams::UNIT).expect("shapes fixed"))
    });
    let x = Tensor::fill_with(Shape::d1(256), |_| rng.next_f64() as f32);
    let w = Tensor::fill_with(Shape::d2(128, 256), |_| rng.next_f64() as f32 * 0.05);
    let db = Tensor::zeros(Shape::d1(128));
    bench.bench("dense_256_to_128", || {
        black_box(dense(&x, &w, &db).expect("shapes fixed"))
    });

    let mut rng = Rng64::new(2);
    let net = NetworkBuilder::new(Shape::d3(2, 12, 12))
        .conv2d(8, 3, 1, 1, Activation::Relu, &mut rng)
        .expect("static architecture")
        .residual_block(Activation::Relu, &mut rng)
        .expect("static architecture")
        .global_avgpool()
        .expect("static architecture")
        .dense(16, Activation::None, &mut rng)
        .expect("static architecture")
        .build();
    let input = Tensor::fill_with(Shape::d3(2, 12, 12), |_| rng.next_f64() as f32 - 0.5);
    bench.bench("miniresnet_forward_fp32", || {
        black_box(net.forward(&input).expect("shape fixed"))
    });
    let calib = vec![input.clone()];
    let qnet = QNetwork::quantize(&net, &calib).expect("calibration non-empty");
    bench.bench("miniresnet_forward_int8", || {
        black_box(qnet.forward(&input).expect("shape fixed"))
    });

    let mut rng = Rng64::new(3);
    let cell = GruCell::new(12, 20, &mut rng);
    let x = Tensor::fill_with(Shape::d1(12), |_| rng.next_f64() as f32 - 0.5);
    let h = cell.zero_state();
    bench.bench("gru_step_12_to_20", || {
        black_box(cell.step(&x, &h).expect("dims fixed"))
    });

    bench.finish();
}

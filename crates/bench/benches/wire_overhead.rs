//! Cost of putting the LoadGen/SUT boundary on a loopback TCP connection.
//!
//! Three numbers: the raw frame codec (encode+decode round-trip of a
//! completion message), an in-process realtime run against a sleeping
//! engine, and the same run driven through `RemoteSut` → loopback daemon.
//! The gap between the last two is the full wire tax — framing, syscalls,
//! the in-flight window, and the reader-thread handoff.

use mlperf_bench::runner::Bench;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::query::{Query, QuerySample, ResponsePayload, SampleCompletion};
use mlperf_loadgen::realtime::run_realtime;
use mlperf_loadgen::sut::SleepSut;
use mlperf_loadgen::time::Nanos;
use mlperf_wire::message::Message;
use mlperf_wire::{loopback, RemoteSut, RemoteSutConfig, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let bench = Bench::from_env();

    // --- codec microbench: one completion frame, encode + decode ---
    let completion = Message::Completion {
        query_id: 42,
        error: false,
        samples: (0..32)
            .map(|i| SampleCompletion {
                sample_id: i,
                payload: ResponsePayload::Class(i as usize % 1_000),
            })
            .collect(),
    };
    bench.bench("wire_completion_encode_decode", || {
        let bytes = completion.encode();
        black_box(Message::decode(&bytes).expect("roundtrip"))
    });

    let issue = Message::Issue(Query {
        id: 42,
        samples: (0..32).map(|i| QuerySample { id: i, index: 0 }).collect(),
        scheduled_at: Nanos::from_millis(3),
        tenant: 0,
    });
    bench.bench("wire_issue_encode_decode", || {
        let bytes = issue.encode();
        black_box(Message::decode(&bytes).expect("roundtrip"))
    });

    // --- end-to-end: the same run, direct vs over the loopback wire ---
    let settings = TestSettings::single_stream()
        .with_min_query_count(300)
        .with_min_duration(Nanos::from_micros(1));
    let per_sample = Duration::from_micros(100);

    let direct = bench.bench("run_realtime_direct", || {
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let sut = Arc::new(SleepSut::new("engine", per_sample));
        black_box(run_realtime(&settings, &mut qsl, sut).expect("runs"))
    });

    let wired = bench.bench("run_realtime_loopback_wire", || {
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let config = RemoteSutConfig::default();
        let hello = RemoteSut::hello_for(&settings, 64, &config);
        let service = Arc::new(SleepSut::new("engine", per_sample));
        let (client, server) =
            loopback(service, ServeConfig::default(), hello, config).expect("loopback");
        let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("runs");
        server.shutdown();
        black_box(out)
    });

    bench.finish();

    if let (Some(direct), Some(wired)) = (direct, wired) {
        let pct = (wired as f64 / direct.max(1) as f64 - 1.0) * 100.0;
        println!("loopback wire overhead vs in-process realtime: {pct:+.1}%");
        // Warn-only gate: loopback latency is scheduler- and kernel-
        // dependent, so CI reports drift without failing the build.
        if let Some(max_pct) = std::env::var("MLPERF_WIRE_OVERHEAD_MAX_PCT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if pct > max_pct {
                eprintln!(
                    "wire overhead gate (warn-only): loopback overhead {pct:+.1}% \
                     exceeds allowance {max_pct:.1}%"
                );
            } else {
                println!("wire overhead gate: within {max_pct:.1}% allowance");
            }
        }
    }
}

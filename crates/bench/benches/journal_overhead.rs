//! Cost of crash-safety: a journaled DES run vs the plain runner.
//!
//! `run_journaled` adds a durable write-ahead journal to the simulated
//! server scenario — one checkpoint frame (scenario cursor, RNG states,
//! recorder delta: each record serialized exactly once across the run)
//! per `checkpoint_every` issued queries, CRC-framed and fsync-batched. Two costs matter and they are very different: the CPU
//! tax of snapshotting and serializing checkpoints (steady-state, should
//! be small), and the wall-clock price of `fsync` durability (dominated
//! by the storage stack — a few ms per sync — and amortized by the
//! batching window). The rows below separate them: the gated number is
//! the serialization-only overhead; the fsync rows price durability.

use mlperf_bench::runner::Bench;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::{run_instrumented, run_journaled};
use mlperf_loadgen::journal::JournalConfig;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_loadgen::Instruments;
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();
    let settings = TestSettings::server(10_000.0, Nanos::from_millis(10))
        .with_min_query_count(5_000)
        .with_min_duration(Nanos::from_micros(1));
    let dir = std::env::temp_dir().join(format!("mlpj-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let baseline = bench.bench("run_server_plain", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        let instruments = Instruments::none();
        black_box(run_instrumented(&settings, &mut qsl, &mut sut, &instruments).expect("runs"))
    });

    // Serialization-only: the fsync batching window never fills, so this
    // row is the pure CPU tax of checkpointing every 64 queries.
    let serialized = bench.bench("run_server_journaled_no_fsync", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        let instruments = Instruments::none();
        let cfg = JournalConfig::new(dir.join("nofsync.mlpj"))
            .with_checkpoint_every(64)
            .with_fsync_every(u32::MAX);
        black_box(run_journaled(&settings, &mut qsl, &mut sut, &instruments, &cfg).expect("runs"))
    });

    // Durability pricing: fsync per checkpoint (the default), and batched
    // by 8 (the daemon's completion-journal window).
    bench.bench("run_server_journaled_fsync_each", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        let instruments = Instruments::none();
        let cfg = JournalConfig::new(dir.join("each.mlpj")).with_checkpoint_every(64);
        black_box(run_journaled(&settings, &mut qsl, &mut sut, &instruments, &cfg).expect("runs"))
    });

    bench.bench("run_server_journaled_fsync_batch_8", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        let instruments = Instruments::none();
        let cfg = JournalConfig::new(dir.join("batch8.mlpj"))
            .with_checkpoint_every(64)
            .with_fsync_every(8);
        black_box(run_journaled(&settings, &mut qsl, &mut sut, &instruments, &cfg).expect("runs"))
    });

    bench.finish();
    let _ = std::fs::remove_dir_all(&dir);

    if let (Some(base), Some(serialized)) = (baseline, serialized) {
        let pct = (serialized as f64 / base.max(1) as f64 - 1.0) * 100.0;
        // The percentage reads large because the plain DES baseline is
        // nearly free (~300 ns/query with no real SUT latency); the
        // absolute per-query cost — one delta-frame JSON encode of each
        // record, once — is the number a real deployment pays.
        let per_query = serialized.saturating_sub(base) as f64 / 5_000.0;
        println!(
            "journal serialization overhead vs plain run: {pct:+.1}% ({per_query:.0} ns/query)"
        );
        // Warn-only gate: with MLPERF_JOURNAL_OVERHEAD_MAX_PCT set, an
        // overshoot is called out loudly but never fails the run — the
        // fsync-free number still moves with filesystem cache weather.
        if let Some(max_pct) = std::env::var("MLPERF_JOURNAL_OVERHEAD_MAX_PCT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if pct > max_pct {
                eprintln!(
                    "journal overhead gate (warn-only): serialization overhead \
                     {pct:+.1}% exceeds allowance {max_pct:.1}%"
                );
            } else {
                println!("journal overhead gate: within {max_pct:.1}% allowance");
            }
        }
    }
}

//! Cost of the record–reduce–replay pipeline.
//!
//! Three questions, one bench binary:
//!
//! 1. How fast does `record_trace` turn a 100k-query detail log into a
//!    `RecordedTrace`? (`replay_record_100k`)
//! 2. How fast does `reduce_trace` compress it 100x while checking the
//!    equivalence bound? (`replay_reduce_100k`)
//! 3. What does replaying a recorded schedule through the DES cost
//!    versus generating the same run natively from the seed? The replay
//!    path swaps the Poisson scheduler for a pre-computed arrival list,
//!    so it should be no slower than the native run; with
//!    `MLPERF_REPLAY_OVERHEAD_MAX_PCT` set, a larger gap prints a
//!    warning (warn-only: both sides are full DES runs and shared CI
//!    machines are noisy).

use mlperf_bench::runner::Bench;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::run_simulated_traced;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::replay::run_simulated_replay_traced;
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_replay::{record_trace, reduce_trace, RecordOptions, ReduceOptions};
use mlperf_stats::rng::SeedTriple;
use mlperf_trace::{NoopSink, RingBufferSink, TraceRecord};
use std::hint::black_box;

const POPULATION: usize = 1_024;

/// One traced simulated server run; returns its detail records.
fn traced_run(settings: &TestSettings) -> Vec<TraceRecord> {
    let mut qsl = MemoryQsl::new("q", POPULATION, POPULATION);
    let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
    let sink = RingBufferSink::unbounded();
    run_simulated_traced(settings, &mut qsl, &mut sut, &sink).expect("runs");
    sink.snapshot()
}

fn main() {
    let bench = Bench::from_env();
    let seeds = SeedTriple::from_master(0xBE7C);

    // A 100k-query recorded run is the record/reduce corpus; generated
    // once outside the timed region.
    let big_settings = TestSettings::server(10_000.0, Nanos::from_millis(10))
        .with_min_query_count(100_000)
        .with_min_duration(Nanos::from_micros(1))
        .with_seeds(seeds);
    let records = traced_run(&big_settings);
    let opts = RecordOptions::for_population(POPULATION as u64)
        .with_qsl_seed(seeds.qsl_seed)
        .with_latency_target(Nanos::from_millis(10).as_nanos(), 99.0)
        .with_source("bench");

    bench.bench("replay_record_100k", || {
        black_box(record_trace(&records, &opts).expect("records"))
    });

    let trace = record_trace(&records, &opts).expect("records");
    bench.bench("replay_reduce_100k", || {
        black_box(reduce_trace(&trace, &ReduceOptions::new(1_000)).expect("reduces"))
    });

    // Replay-vs-native overhead on a smaller run (both sides are full DES
    // runs; 5k queries keeps the smoke budget honest).
    let small_settings = TestSettings::server(10_000.0, Nanos::from_millis(10))
        .with_min_query_count(5_000)
        .with_min_duration(Nanos::from_micros(1))
        .with_seeds(seeds);
    let small_trace = record_trace(&traced_run(&small_settings), &opts).expect("records");
    let schedule = small_trace.replay_schedule();
    let replay_settings = small_trace.replay_settings();

    let native = bench.bench("des_native_5k", || {
        let mut qsl = MemoryQsl::new("q", POPULATION, POPULATION);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        black_box(
            run_simulated_traced(&small_settings, &mut qsl, &mut sut, &NoopSink).expect("runs"),
        )
    });

    let replayed = bench.bench("des_replay_5k", || {
        let mut qsl = MemoryQsl::new("q", POPULATION, POPULATION);
        let mut sut = FixedLatencySut::new("s", Nanos::from_micros(50));
        black_box(
            run_simulated_replay_traced(&replay_settings, &schedule, &mut qsl, &mut sut, &NoopSink)
                .expect("replays"),
        )
    });

    bench.finish();

    if let (Some(native), Some(replayed)) = (native, replayed) {
        let pct = (replayed as f64 / native.max(1) as f64 - 1.0) * 100.0;
        println!("DES replay overhead vs native run: {pct:+.1}%");
        if let Some(max_pct) = std::env::var("MLPERF_REPLAY_OVERHEAD_MAX_PCT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if pct > max_pct {
                println!(
                    "WARNING: replay overhead gate: {pct:+.1}% exceeds allowance \
                     {max_pct:.1}% (warn-only)"
                );
            } else {
                println!("replay overhead gate: within {max_pct:.1}% allowance");
            }
        }
    }
}

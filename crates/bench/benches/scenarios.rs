//! Regeneration benches for the scenario experiments: one Figure 6 cell
//! (server peak search + offline run) and one Figure 8 column entry per
//! scenario, at smoke scale.

use mlperf_bench::runner::Bench;
use mlperf_harness::{fig6, fig8, Profile};
use mlperf_loadgen::scenario::Scenario;
use mlperf_models::TaskId;
use mlperf_sut::fleet::fleet;
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();
    let systems = fleet();

    let dc = systems
        .iter()
        .find(|s| s.spec.name == "datacenter-gpu")
        .expect("fleet contains the datacenter GPU");
    bench.bench("fig6_cell_resnet_on_datacenter_gpu", || {
        black_box(fig6::measure_cell(
            dc,
            TaskId::ImageClassificationHeavy,
            Profile::Smoke,
        ))
    });

    let sys = systems
        .iter()
        .find(|s| s.spec.name == "edge-asic")
        .expect("fleet contains the edge ASIC");
    for (name, scenario) in [
        ("fig8_single_stream_score", Scenario::SingleStream),
        ("fig8_multistream_score", Scenario::MultiStream),
        ("fig8_server_score", Scenario::Server),
        ("fig8_offline_score", Scenario::Offline),
    ] {
        bench.bench(name, || {
            black_box(fig8::score_combo(
                sys,
                TaskId::ImageClassificationLight,
                scenario,
                Profile::Smoke,
            ))
        });
    }

    bench.finish();
}

//! Regeneration benches for the scenario experiments: one Figure 6 cell
//! (server peak search + offline run) and one Figure 8 column entry per
//! scenario, at smoke scale.

use criterion::{criterion_group, criterion_main, Criterion};
use mlperf_harness::{fig6, fig8, Profile};
use mlperf_loadgen::scenario::Scenario;
use mlperf_models::TaskId;
use mlperf_sut::fleet::fleet;
use std::hint::black_box;

fn fig6_cell(c: &mut Criterion) {
    let systems = fleet();
    let dc = systems
        .iter()
        .find(|s| s.spec.name == "datacenter-gpu")
        .expect("fleet contains the datacenter GPU");
    c.bench_function("fig6_cell_resnet_on_datacenter_gpu", |b| {
        b.iter(|| {
            black_box(fig6::measure_cell(
                dc,
                TaskId::ImageClassificationHeavy,
                Profile::Smoke,
            ))
        })
    });
}

fn fig8_scores(c: &mut Criterion) {
    let systems = fleet();
    let sys = systems
        .iter()
        .find(|s| s.spec.name == "edge-asic")
        .expect("fleet contains the edge ASIC");
    for (name, scenario) in [
        ("fig8_single_stream_score", Scenario::SingleStream),
        ("fig8_multistream_score", Scenario::MultiStream),
        ("fig8_server_score", Scenario::Server),
        ("fig8_offline_score", Scenario::Offline),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(fig8::score_combo(
                    sys,
                    TaskId::ImageClassificationLight,
                    scenario,
                    Profile::Smoke,
                ))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(8));
    targets = fig6_cell, fig8_scores
}
criterion_main!(benches);

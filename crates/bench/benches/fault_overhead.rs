//! Cost of the fault-injection hooks when no fault is armed.
//!
//! `FaultySut` short-circuits to a plain pass-through when its
//! `FaultPlan` is unarmed, so wrapping a production engine in the chaos
//! decorator must cost nothing measurable. This bench compares a bare
//! engine against a disarmed `FaultySut` wrapper and against an armed
//! plan, so a regression in the disarmed path is visible as a gap
//! between the first two numbers.

use mlperf_bench::runner::Bench;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::run_simulated;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_sut::faults::{FaultPlan, FaultySut};
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();
    let settings = TestSettings::server(10_000.0, Nanos::from_millis(10))
        .with_min_query_count(5_000)
        .with_min_duration(Nanos::from_micros(1));
    let engine = || FixedLatencySut::new("s", Nanos::from_micros(50));

    let baseline = bench.bench("run_simulated_bare_engine", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = engine();
        black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
    });

    let disarmed = bench.bench("run_simulated_disarmed_faulty_sut", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let mut sut = FaultySut::new(engine(), FaultPlan::new(1));
        black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
    });

    bench.bench("run_simulated_armed_faulty_sut", || {
        let mut qsl = MemoryQsl::new("q", 1_024, 1_024);
        let plan = FaultPlan::new(1).with_latency_spikes(0.05, 10.0);
        let mut sut = FaultySut::new(engine(), plan);
        black_box(run_simulated(&settings, &mut qsl, &mut sut).expect("runs"))
    });

    bench.finish();

    if let (Some(base), Some(disarmed)) = (baseline, disarmed) {
        let pct = (disarmed as f64 / base.max(1) as f64 - 1.0) * 100.0;
        println!("disarmed fault-hook overhead vs bare engine: {pct:+.1}%");
        // Enforce mode for CI: with MLPERF_FAULT_OVERHEAD_MAX_PCT set, a
        // disarmed wrapper costing more than the allowance fails the run.
        if let Some(max_pct) = std::env::var("MLPERF_FAULT_OVERHEAD_MAX_PCT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if pct > max_pct {
                eprintln!(
                    "fault overhead gate: disarmed overhead {pct:+.1}% exceeds \
                     allowance {max_pct:.1}%"
                );
                std::process::exit(1);
            }
            println!("fault overhead gate: within {max_pct:.1}% allowance");
        }
    }
}

//! Cost of frame integrity and the chaos decorator on the wire path.
//!
//! Three comparisons. First, the CRC32 seal/open tax per frame: encoding
//! a completion bare versus sealing it and opening it back through the
//! checksum. Second and third, a full loopback run plain versus the same
//! run with a *disarmed* `ChaosTransport` wrapped around both endpoints —
//! the decorator promises to be a pass-through when no fault is armed, so
//! any gap between those two numbers is pure decorator overhead.
//!
//! With `MLPERF_WIRE_CHAOS_OVERHEAD_MAX_PCT` set the gate is warn-only:
//! an overshoot prints a warning but never fails the run, because
//! loopback timings on shared CI machines are too noisy to block on.

use mlperf_bench::runner::Bench;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::query::{ResponsePayload, SampleCompletion};
use mlperf_loadgen::realtime::run_realtime;
use mlperf_loadgen::sut::SleepSut;
use mlperf_loadgen::time::Nanos;
use mlperf_wire::frame::{open, seal};
use mlperf_wire::message::Message;
use mlperf_wire::{loopback, RemoteSut, RemoteSutConfig, ServeConfig, WireChaosPlan};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let bench = Bench::from_env();

    // --- CRC tax per frame: bare codec vs seal + open ---
    let completion = Message::Completion {
        query_id: 7,
        error: false,
        samples: (0..32)
            .map(|i| SampleCompletion {
                sample_id: i,
                payload: ResponsePayload::Class(i as usize % 1_000),
            })
            .collect(),
    };
    bench.bench("wire_completion_encode_bare", || {
        black_box(completion.encode())
    });
    bench.bench("wire_completion_seal_open", || {
        let sealed = seal(&completion.encode());
        black_box(open(&sealed).expect("crc must verify").len())
    });

    // --- decorator tax: plain loopback run vs disarmed chaos wrap ---
    let settings = TestSettings::single_stream()
        .with_min_query_count(200)
        .with_min_duration(Nanos::from_micros(1));
    let per_sample = Duration::from_micros(100);

    let run = |config: RemoteSutConfig, serve: ServeConfig| {
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let hello = RemoteSut::hello_for(&settings, 64, &config);
        let service = Arc::new(SleepSut::new("engine", per_sample));
        let (client, server) = loopback(service, serve, hello, config).expect("loopback");
        let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("runs");
        server.shutdown();
        out
    };

    let plain = bench.bench("run_realtime_loopback_plain", || {
        black_box(run(RemoteSutConfig::default(), ServeConfig::default()))
    });

    let disarmed = bench.bench("run_realtime_loopback_disarmed_chaos", || {
        // An empty plan never arms, so both endpoints run the decorator's
        // pass-through path on every frame.
        black_box(run(
            RemoteSutConfig::default().with_chaos(WireChaosPlan::new(1)),
            ServeConfig::default().with_chaos(WireChaosPlan::new(2)),
        ))
    });

    bench.finish();

    if let (Some(plain), Some(disarmed)) = (plain, disarmed) {
        let pct = (disarmed as f64 / plain.max(1) as f64 - 1.0) * 100.0;
        println!("disarmed wire-chaos overhead vs plain loopback: {pct:+.1}%");
        if let Some(max_pct) = std::env::var("MLPERF_WIRE_CHAOS_OVERHEAD_MAX_PCT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            if pct > max_pct {
                eprintln!(
                    "wire chaos overhead gate (warn-only): disarmed overhead \
                     {pct:+.1}% exceeds allowance {max_pct:.1}%"
                );
            } else {
                println!("wire chaos overhead gate: within {max_pct:.1}% allowance");
            }
        }
    }
}

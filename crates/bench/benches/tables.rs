//! Regeneration benches for the rulebook tables (I–V), Figure 1, and the
//! submission-round aggregations (Tables VI–VII, Figures 5 and 7).
//!
//! The round itself is generated once outside the measurement loops (it is
//! a multi-second fleet simulation); the benches measure regenerating each
//! table/figure from the raw result records, which is what the paper's
//! reporting pipeline does.

use mlperf_bench::reviewed_smoke_records;
use mlperf_bench::runner::Bench;
use mlperf_harness::tables;
use mlperf_submission::report::{
    figure5_distribution, figure7_by_architecture, render_table_vi, render_table_vii,
};
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();

    bench.bench("table1_model_registry", || {
        black_box(tables::render_table1())
    });
    bench.bench("table2_scenarios", || black_box(tables::render_table2()));
    bench.bench("table3_latency_constraints", || {
        black_box(tables::render_table3())
    });
    bench.bench("table4_query_requirements", || {
        black_box(tables::render_table4())
    });
    bench.bench("table5_query_sample_counts", || {
        black_box(tables::render_table5())
    });
    bench.bench(
        "fig1_model_zoo_scatter",
        || black_box(tables::render_fig1()),
    );

    let records = reviewed_smoke_records(0xbe9c);
    bench.bench("table6_results_per_model_scenario", || {
        black_box(render_table_vi(&records))
    });
    bench.bench("table7_framework_architecture_matrix", || {
        black_box(render_table_vii(&records))
    });
    bench.bench("fig5_results_per_model", || {
        black_box(figure5_distribution(&records))
    });
    bench.bench("fig7_results_per_architecture", || {
        black_box(figure7_by_architecture(&records))
    });

    bench.finish();
}

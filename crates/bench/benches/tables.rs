//! Regeneration benches for the rulebook tables (I–V), Figure 1, and the
//! submission-round aggregations (Tables VI–VII, Figures 5 and 7).
//!
//! The round itself is generated once outside the measurement loops (it is
//! a multi-second fleet simulation); the benches measure regenerating each
//! table/figure from the raw result records, which is what the paper's
//! reporting pipeline does.

use criterion::{criterion_group, criterion_main, Criterion};
use mlperf_bench::reviewed_smoke_records;
use mlperf_harness::tables;
use mlperf_submission::report::{
    figure5_distribution, figure7_by_architecture, render_table_vi, render_table_vii,
};
use std::hint::black_box;

fn rulebook_tables(c: &mut Criterion) {
    c.bench_function("table1_model_registry", |b| {
        b.iter(|| black_box(tables::render_table1()))
    });
    c.bench_function("table2_scenarios", |b| {
        b.iter(|| black_box(tables::render_table2()))
    });
    c.bench_function("table3_latency_constraints", |b| {
        b.iter(|| black_box(tables::render_table3()))
    });
    c.bench_function("table4_query_requirements", |b| {
        b.iter(|| black_box(tables::render_table4()))
    });
    c.bench_function("table5_query_sample_counts", |b| {
        b.iter(|| black_box(tables::render_table5()))
    });
    c.bench_function("fig1_model_zoo_scatter", |b| {
        b.iter(|| black_box(tables::render_fig1()))
    });
}

fn round_aggregations(c: &mut Criterion) {
    let records = reviewed_smoke_records(0xbe9c);
    c.bench_function("table6_results_per_model_scenario", |b| {
        b.iter(|| black_box(render_table_vi(&records)))
    });
    c.bench_function("table7_framework_architecture_matrix", |b| {
        b.iter(|| black_box(render_table_vii(&records)))
    });
    c.bench_function("fig5_results_per_model", |b| {
        b.iter(|| black_box(figure5_distribution(&records)))
    });
    c.bench_function("fig7_results_per_architecture", |b| {
        b.iter(|| black_box(figure7_by_architecture(&records)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = rulebook_tables, round_aggregations
}
criterion_main!(benches);

//! Accuracy-script benchmarks: Top-1, mAP, and BLEU at realistic log sizes.

use mlperf_bench::runner::Bench;
use mlperf_metrics::{
    corpus_bleu, mean_average_precision, top1_accuracy, BoundingBox, Detection, GroundTruth,
};
use mlperf_stats::Rng64;
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env();

    let mut rng = Rng64::new(1);
    let labels: Vec<usize> = (0..50_000).map(|_| rng.next_index(1_000)).collect();
    let preds: Vec<usize> = labels
        .iter()
        .map(|l| {
            if rng.next_bool(0.765) {
                *l
            } else {
                rng.next_index(1_000)
            }
        })
        .collect();
    bench.bench("top1_accuracy_50k_samples", || {
        black_box(top1_accuracy(&preds, &labels))
    });

    let mut rng = Rng64::new(2);
    let mut gts = Vec::new();
    let mut dets = Vec::new();
    for image in 0..500 {
        for _ in 0..5 {
            let x = rng.next_f64() as f32 * 50.0;
            let y = rng.next_f64() as f32 * 50.0;
            let bbox = BoundingBox::new(x, y, x + 8.0, y + 8.0);
            let class = rng.next_index(8);
            gts.push(GroundTruth {
                image_id: image,
                class,
                bbox,
            });
            if rng.next_bool(0.9) {
                dets.push(Detection {
                    image_id: image,
                    class,
                    score: rng.next_f64() as f32,
                    bbox: BoundingBox::new(x + 0.5, y + 0.5, x + 8.5, y + 8.5),
                });
            }
        }
    }
    bench.bench("map_500_images_2500_boxes", || {
        black_box(mean_average_precision(&dets, &gts, 0.5))
    });

    let mut rng = Rng64::new(3);
    let refs: Vec<Vec<u32>> = (0..3_000)
        .map(|_| (0..20).map(|_| rng.next_below(8_000) as u32).collect())
        .collect();
    let cands: Vec<Vec<u32>> = refs
        .iter()
        .map(|r| {
            r.iter()
                .map(|t| {
                    if rng.next_bool(0.9) {
                        *t
                    } else {
                        rng.next_below(8_000) as u32
                    }
                })
                .collect()
        })
        .collect();
    bench.bench("bleu_3k_sentence_corpus", || {
        black_box(corpus_bleu(&cands, &refs))
    });

    bench.finish();
}

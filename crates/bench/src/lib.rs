//! Shared fixtures and the mini harness for the benchmark suite.
//!
//! The benches serve two purposes: component microbenchmarks (tensor
//! kernels, LoadGen event-loop overhead, metric scoring) and
//! table/figure regeneration benches — one per artifact of the paper's
//! evaluation, exercising the same code paths as the `mlperf-harness`
//! binaries at smoke scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mlperf_submission::record::ResultRecord;
use mlperf_submission::review::review_round;
use mlperf_submission::round::{generate_round, RoundConfig};

/// Generates and reviews one smoke-profile submission round, for benches
/// that aggregate records (Tables VI–VII, Figures 5 and 7).
pub fn reviewed_smoke_records(seed: u64) -> Vec<ResultRecord> {
    let mut config = RoundConfig::smoke(seed);
    config.open_division_count = 8;
    config.violation_count = 3;
    let mut round = generate_round(&config);
    review_round(&mut round);
    round.records
}

pub mod runner {
    //! A minimal wall-clock benchmark harness.
    //!
    //! The workspace carries no external benchmarking framework, so the
    //! `[[bench]]` targets use this: warm up once, calibrate a batch size
    //! that takes roughly 10 ms, then time batches for a fixed budget and
    //! report the median ns/iter. Good enough for the relative comparisons
    //! these benches exist for (e.g. tracing overhead vs. baseline).

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Collects and prints benchmark measurements.
    pub struct Bench {
        filter: Option<String>,
        budget: Duration,
    }

    impl Bench {
        /// Builds a runner from the process arguments: any non-flag
        /// argument (cargo bench passes `--bench` and friends as flags)
        /// becomes a substring filter on benchmark names.
        pub fn from_env() -> Self {
            let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
            Self {
                filter,
                budget: Duration::from_millis(300),
            }
        }

        /// Overrides the per-benchmark measurement budget.
        pub fn with_budget(mut self, budget: Duration) -> Self {
            self.budget = budget;
            self
        }

        /// Measures `f`, printing `name`, the median ns/iter, and the
        /// sample spread. Returns the median so callers can compare
        /// benchmarks programmatically (the trace-overhead bench does).
        pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<u64> {
            if let Some(filter) = &self.filter {
                if !name.contains(filter.as_str()) {
                    return None;
                }
            }
            // Warm up and calibrate: aim for ~10 ms batches.
            let start = Instant::now();
            black_box(f());
            let once = start.elapsed().max(Duration::from_nanos(1));
            let batch = (10_000_000 / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
            let mut samples: Vec<u64> = Vec::new();
            let deadline = Instant::now() + self.budget;
            while samples.len() < 3 || (Instant::now() < deadline && samples.len() < 100) {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                samples.push((t.elapsed().as_nanos() as u64) / batch);
            }
            samples.sort_unstable();
            let median = samples[samples.len() / 2];
            println!(
                "{name:<44} {median:>12} ns/iter (min {}, {} samples x {batch})",
                samples[0],
                samples.len()
            );
            Some(median)
        }
    }
}

//! Shared fixtures and the mini harness for the benchmark suite.
//!
//! The benches serve two purposes: component microbenchmarks (tensor
//! kernels, LoadGen event-loop overhead, metric scoring) and
//! table/figure regeneration benches — one per artifact of the paper's
//! evaluation, exercising the same code paths as the `mlperf-harness`
//! binaries at smoke scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mlperf_submission::record::ResultRecord;
use mlperf_submission::review::review_round;
use mlperf_submission::round::{generate_round, RoundConfig};

/// Generates and reviews one smoke-profile submission round, for benches
/// that aggregate records (Tables VI–VII, Figures 5 and 7).
pub fn reviewed_smoke_records(seed: u64) -> Vec<ResultRecord> {
    let mut config = RoundConfig::smoke(seed);
    config.open_division_count = 8;
    config.violation_count = 3;
    let mut round = generate_round(&config);
    review_round(&mut round);
    round.records
}

pub mod runner {
    //! A minimal wall-clock benchmark harness.
    //!
    //! The workspace carries no external benchmarking framework, so the
    //! `[[bench]]` targets use this: warm up once, calibrate a batch size
    //! that takes roughly 10 ms, then time batches for a fixed budget and
    //! report the median ns/iter. Good enough for the relative comparisons
    //! these benches exist for (e.g. tracing overhead vs. baseline).
    //!
    //! Besides the printed table, every measurement lands in a
    //! [`BenchReport`]; call [`Bench::finish`] at the end of `main` to
    //! merge it into the JSON file named by `MLPERF_BENCH_JSON` (several
    //! bench binaries appending to one report is the intended use — ci.sh
    //! runs the whole suite into one file and diffs it against the
    //! committed baseline with `bench-compare`).

    use std::hint::black_box;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    use mlperf_trace::bench::BenchEntry;
    use mlperf_trace::{BenchReport, FromJson, ToJson};

    /// Environment variable naming the JSON report file [`Bench::finish`]
    /// merges into. Unset = no file output.
    pub const ENV_BENCH_JSON: &str = "MLPERF_BENCH_JSON";
    /// Environment variable overriding the per-benchmark budget, in ms.
    pub const ENV_BENCH_BUDGET_MS: &str = "MLPERF_BENCH_BUDGET_MS";
    /// Environment variable supplying the git commit recorded in reports.
    pub const ENV_GIT_COMMIT: &str = "MLPERF_GIT_COMMIT";
    /// Environment variable supplying the free-form report label.
    pub const ENV_BENCH_LABEL: &str = "MLPERF_BENCH_LABEL";

    /// Collects and prints benchmark measurements.
    pub struct Bench {
        filter: Option<String>,
        budget: Duration,
        report: Mutex<BenchReport>,
    }

    impl Bench {
        /// Builds a runner from the process arguments and environment: any
        /// non-flag argument (cargo bench passes `--bench` and friends as
        /// flags) becomes a substring filter on benchmark names, and
        /// `MLPERF_BENCH_BUDGET_MS` overrides the measurement budget (the
        /// CI smoke mode sets it low).
        pub fn from_env() -> Self {
            let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
            let budget = std::env::var(ENV_BENCH_BUDGET_MS)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map_or(Duration::from_millis(300), Duration::from_millis);
            let report = BenchReport {
                git_commit: std::env::var(ENV_GIT_COMMIT).unwrap_or_default(),
                label: std::env::var(ENV_BENCH_LABEL).unwrap_or_default(),
                ..BenchReport::default()
            };
            Self {
                filter,
                budget,
                report: Mutex::new(report),
            }
        }

        /// Overrides the per-benchmark measurement budget.
        pub fn with_budget(mut self, budget: Duration) -> Self {
            self.budget = budget;
            self
        }

        /// Measures `f`, printing `name`, the median ns/iter, and the
        /// sample spread. Returns the median so callers can compare
        /// benchmarks programmatically (the trace-overhead bench does).
        pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<u64> {
            if let Some(filter) = &self.filter {
                if !name.contains(filter.as_str()) {
                    return None;
                }
            }
            // Warm up and calibrate: aim for ~10 ms batches.
            let start = Instant::now();
            black_box(f());
            let once = start.elapsed().max(Duration::from_nanos(1));
            let batch = (10_000_000 / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
            let mut samples: Vec<u64> = Vec::new();
            let deadline = Instant::now() + self.budget;
            while samples.len() < 3 || (Instant::now() < deadline && samples.len() < 100) {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                samples.push((t.elapsed().as_nanos() as u64) / batch);
            }
            samples.sort_unstable();
            let median = samples[samples.len() / 2];
            println!(
                "{name:<44} {median:>12} ns/iter (min {}, {} samples x {batch})",
                samples[0],
                samples.len()
            );
            self.report.lock().expect("bench report lock").record(
                name,
                BenchEntry {
                    median_ns: median,
                    min_ns: samples[0],
                    max_ns: *samples.last().expect("at least 3 samples"),
                    samples: samples.len() as u64,
                    batch,
                },
            );
            Some(median)
        }

        /// Snapshot of everything measured so far.
        pub fn report(&self) -> BenchReport {
            self.report.lock().expect("bench report lock").clone()
        }

        /// Writes the collected measurements to the file named by
        /// `MLPERF_BENCH_JSON`, merging into it if it already holds a
        /// parseable report (so the six bench binaries accumulate one
        /// file). No-op when the variable is unset; call this last in every
        /// bench `main`.
        pub fn finish(&self) {
            let Ok(path) = std::env::var(ENV_BENCH_JSON) else {
                return;
            };
            let mine = self.report();
            let mut merged = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| BenchReport::from_json_str(&text).ok())
                .unwrap_or_default();
            merged.merge(&mine);
            let mut text = merged.to_json_value().to_pretty();
            text.push('\n');
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write bench report {path}: {e}");
            }
        }
    }
}

//! Shared fixtures for the Criterion benchmark suite.
//!
//! The benches serve two purposes: component microbenchmarks (tensor
//! kernels, LoadGen event-loop overhead, metric scoring) and
//! table/figure regeneration benches — one per artifact of the paper's
//! evaluation, exercising the same code paths as the `mlperf-harness`
//! binaries at smoke scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mlperf_submission::record::ResultRecord;
use mlperf_submission::review::review_round;
use mlperf_submission::round::{generate_round, RoundConfig};

/// Generates and reviews one smoke-profile submission round, for benches
/// that aggregate records (Tables VI–VII, Figures 5 and 7).
pub fn reviewed_smoke_records(seed: u64) -> Vec<ResultRecord> {
    let mut config = RoundConfig::smoke(seed);
    config.open_division_count = 8;
    config.violation_count = 3;
    let mut round = generate_round(&config);
    review_round(&mut round);
    round.records
}

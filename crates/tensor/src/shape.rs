//! Tensor shapes and index arithmetic.

use crate::tensor::TensorError;

/// An N-dimensional shape (up to rank 4, which covers every proxy model).
///
/// # Examples
///
/// ```
/// use mlperf_tensor::Shape;
///
/// let s = Shape::d3(3, 8, 8); // [C, H, W]
/// assert_eq!(s.len(), 192);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|d| *d > 0),
            "dimensions must be positive: {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// A rank-1 shape.
    pub fn d1(a: usize) -> Self {
        Self::new(&[a])
    }

    /// A rank-2 shape.
    pub fn d2(a: usize, b: usize) -> Self {
        Self::new(&[a, b])
    }

    /// A rank-3 shape (`[C, H, W]` for activations).
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Self::new(&[a, b, c])
    }

    /// A rank-4 shape (`[OutC, InC, KH, KW]` for convolution weights).
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Self::new(&[a, b, c, d])
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index to a linear offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                dims: self.dims.clone(),
            });
        }
        let mut off = 0;
        let strides = self.strides();
        for ((i, d), s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    dims: self.dims.clone(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert_eq!(Shape::d1(5).len(), 5);
        assert_eq!(Shape::d2(2, 3).len(), 6);
        assert_eq!(Shape::d3(3, 4, 5).len(), 60);
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert!(!Shape::d1(1).is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::d3(3, 4, 5).strides(), vec![20, 5, 1]);
        assert_eq!(Shape::d1(7).strides(), vec![1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::d3(2, 3, 4);
        let mut seen = vec![false; s.len()];
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    let off = s.offset(&[a, b, c]).unwrap();
                    assert!(!seen[off], "offset collision at {off}");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::d2(2, 3);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        Shape::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_shape_panics() {
        Shape::new(&[]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::d3(3, 224, 224).to_string(), "[3x224x224]");
    }
}

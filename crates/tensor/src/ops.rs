//! Neural-network kernels on f32 tensors.
//!
//! All activation tensors are `[C, H, W]`; convolution weights are
//! `[OutC, InC, KH, KW]` (depthwise: `[C, 1, KH, KW]`); dense weights are
//! `[Out, In]`. These are straightforward reference kernels — the benchmark's
//! latency numbers come from the simulated devices, not from these loops, so
//! clarity beats micro-optimization here.

use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// 2-D convolution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Symmetric zero padding along both spatial axes.
    pub padding: usize,
}

impl Conv2dParams {
    /// Stride-1, same-padding-for-3x3 convenience.
    pub const UNIT: Conv2dParams = Conv2dParams {
        stride: 1,
        padding: 1,
    };

    /// Creates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadParameter`] if `stride == 0`.
    pub fn new(stride: usize, padding: usize) -> Result<Self, TensorError> {
        if stride == 0 {
            return Err(TensorError::BadParameter("stride must be positive".into()));
        }
        Ok(Self { stride, padding })
    }

    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Option<usize> {
        let padded = input + 2 * self.padding;
        if padded < kernel {
            return None;
        }
        Some((padded - kernel) / self.stride + 1)
    }
}

/// Standard 2-D convolution: input `[InC, H, W]`, weight `[OutC, InC, KH, KW]`,
/// bias `[OutC]` → output `[OutC, H', W']`.
///
/// # Errors
///
/// Returns [`TensorError`] if ranks/channel counts disagree or the kernel
/// does not fit the padded input.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    let (ic, h, w) = rank3(input)?;
    let wd = weight.shape().dims();
    if weight.shape().rank() != 4 || wd[1] != ic {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weight.shape().clone(),
        });
    }
    let (oc, kh, kw) = (wd[0], wd[2], wd[3]);
    if bias.shape().dims() != [oc] {
        return Err(TensorError::ShapeMismatch {
            left: weight.shape().clone(),
            right: bias.shape().clone(),
        });
    }
    let oh = params
        .out_extent(h, kh)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kh} too large for input {h}")))?;
    let ow = params
        .out_extent(w, kw)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kw} too large for input {w}")))?;
    let x = input.data();
    let wt = weight.data();
    let b = bias.data();
    let mut out = vec![0.0f32; oc * oh * ow];
    for o in 0..oc {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b[o];
                for c in 0..ic {
                    for ky in 0..kh {
                        let iy = (oy * params.stride + ky) as isize - params.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * params.stride + kx) as isize - params.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xi = (c * h + iy as usize) * w + ix as usize;
                            let wi = ((o * ic + c) * kh + ky) * kw + kx;
                            acc += x[xi] * wt[wi];
                        }
                    }
                }
                out[(o * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Tensor::from_vec(Shape::d3(oc, oh, ow), out)
}

/// Depthwise 2-D convolution: input `[C, H, W]`, weight `[C, 1, KH, KW]`,
/// bias `[C]` → output `[C, H', W']`. The MobileNet building block.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    let (c, h, w) = rank3(input)?;
    let wd = weight.shape().dims();
    if weight.shape().rank() != 4 || wd[0] != c || wd[1] != 1 {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weight.shape().clone(),
        });
    }
    let (kh, kw) = (wd[2], wd[3]);
    if bias.shape().dims() != [c] {
        return Err(TensorError::ShapeMismatch {
            left: weight.shape().clone(),
            right: bias.shape().clone(),
        });
    }
    let oh = params
        .out_extent(h, kh)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kh} too large for input {h}")))?;
    let ow = params
        .out_extent(w, kw)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kw} too large for input {w}")))?;
    let x = input.data();
    let wt = weight.data();
    let b = bias.data();
    let mut out = vec![0.0f32; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b[ch];
                for ky in 0..kh {
                    let iy = (oy * params.stride + ky) as isize - params.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..kw {
                        let ix = (ox * params.stride + kx) as isize - params.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        acc += x[(ch * h + iy as usize) * w + ix as usize]
                            * wt[(ch * kh + ky) * kw + kx];
                    }
                }
                out[(ch * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Tensor::from_vec(Shape::d3(c, oh, ow), out)
}

/// 2-D max pooling with square window `k` and stride `k` (non-overlapping).
///
/// # Errors
///
/// Returns [`TensorError::BadParameter`] if `k` is zero or exceeds the input.
pub fn maxpool2d(input: &Tensor, k: usize) -> Result<Tensor, TensorError> {
    let (c, h, w) = rank3(input)?;
    if k == 0 || k > h || k > w {
        return Err(TensorError::BadParameter(format!(
            "pool window {k} invalid for input {h}x{w}"
        )));
    }
    let (oh, ow) = (h / k, w / k);
    let x = input.data();
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for dy in 0..k {
                    for dx in 0..k {
                        m = m.max(x[(ch * h + oy * k + dy) * w + ox * k + dx]);
                    }
                }
                out[(ch * oh + oy) * ow + ox] = m;
            }
        }
    }
    Tensor::from_vec(Shape::d3(c, oh, ow), out)
}

/// Global average pooling: `[C, H, W]` → `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the input is not rank 3.
pub fn global_avgpool(input: &Tensor) -> Result<Tensor, TensorError> {
    let (c, h, w) = rank3(input)?;
    let x = input.data();
    let hw = (h * w) as f32;
    let out = (0..c)
        .map(|ch| x[ch * h * w..(ch + 1) * h * w].iter().sum::<f32>() / hw)
        .collect();
    Tensor::from_vec(Shape::d1(c), out)
}

/// Rectified linear unit.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// ReLU clipped at 6 — the MobileNet activation, which also bounds the
/// activation range and is what makes INT8 quantization calibrate well.
pub fn relu6(input: &Tensor) -> Tensor {
    input.map(|x| x.clamp(0.0, 6.0))
}

/// Hyperbolic tangent, used by the GRU proxy.
pub fn tanh(input: &Tensor) -> Tensor {
    input.map(f32::tanh)
}

/// Logistic sigmoid, used by the GRU gates.
pub fn sigmoid(input: &Tensor) -> Tensor {
    input.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// Numerically stable softmax over a rank-1 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the input is not rank 1.
pub fn softmax(input: &Tensor) -> Result<Tensor, TensorError> {
    if input.shape().rank() != 1 {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: Shape::d1(input.len()),
        });
    }
    let max = input
        .data()
        .iter()
        .fold(f32::NEG_INFINITY, |m, x| m.max(*x));
    let exps: Vec<f32> = input.data().iter().map(|x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(
        input.shape().clone(),
        exps.into_iter().map(|e| e / sum).collect(),
    )
}

/// Dense (fully connected) layer: input `[In]`, weight `[Out, In]`,
/// bias `[Out]` → `[Out]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank or size disagreements.
pub fn dense(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    let wd = weight.shape().dims();
    if input.shape().rank() != 1 || weight.shape().rank() != 2 || wd[1] != input.len() {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weight.shape().clone(),
        });
    }
    let out_dim = wd[0];
    if bias.shape().dims() != [out_dim] {
        return Err(TensorError::ShapeMismatch {
            left: weight.shape().clone(),
            right: bias.shape().clone(),
        });
    }
    let x = input.data();
    let w = weight.data();
    let b = bias.data();
    let out = (0..out_dim)
        .map(|o| {
            b[o] + w[o * x.len()..(o + 1) * x.len()]
                .iter()
                .zip(x)
                .map(|(wi, xi)| wi * xi)
                .sum::<f32>()
        })
        .collect();
    Tensor::from_vec(Shape::d1(out_dim), out)
}

/// Matrix product of `[M, K]` and `[K, N]` → `[M, N]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank or inner-dimension
/// disagreements.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ad, bd) = (a.shape().dims(), b.shape().dims());
    if a.shape().rank() != 2 || b.shape().rank() != 2 || ad[1] != bd[0] {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    let (m, k, n) = (ad[0], ad[1], bd[1]);
    let (x, y) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let xv = x[i * k + kk];
            if xv == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += xv * y[kk * n + j];
            }
        }
    }
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// Concatenates two rank-1 tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if either input is not rank 1.
pub fn concat1(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.shape().rank() != 1 || b.shape().rank() != 1 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    let mut data = a.data().to_vec();
    data.extend_from_slice(b.data());
    Tensor::from_vec(Shape::d1(data.len()), data)
}

fn rank3(t: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    let d = t.shape().dims();
    if d.len() != 3 {
        return Err(TensorError::ShapeMismatch {
            left: t.shape().clone(),
            right: Shape::d3(1, 1, 1),
        });
    }
    Ok((d[0], d[1], d[2]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t1(data: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::d1(data.len()), data.to_vec()).unwrap()
    }

    #[test]
    fn conv2d_identity_kernel() {
        let input = Tensor::fill_with(Shape::d3(1, 3, 3), |i| (i[1] * 3 + i[2]) as f32);
        // 1x1 kernel with weight 1 is identity.
        let w = Tensor::from_vec(Shape::d4(1, 1, 1, 1), vec![1.0]).unwrap();
        let b = Tensor::zeros(Shape::d1(1));
        let out = conv2d(&input, &w, &b, Conv2dParams::new(1, 0).unwrap()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_hand_computed_3x3() {
        // 2x2 input, 3x3 all-ones kernel, padding 1: each output = sum of the
        // 3x3 neighborhood that exists.
        let input = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1., 2., 3., 4.]).unwrap();
        let w = Tensor::full(Shape::d4(1, 1, 3, 3), 1.0);
        let b = Tensor::zeros(Shape::d1(1));
        let out = conv2d(&input, &w, &b, Conv2dParams::UNIT).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        // Every 3x3 window over the padded 2x2 covers all four elements.
        assert_eq!(out.data(), &[10., 10., 10., 10.]);
    }

    #[test]
    fn conv2d_stride_and_bias() {
        let input = Tensor::fill_with(Shape::d3(1, 4, 4), |_| 1.0);
        let w = Tensor::full(Shape::d4(2, 1, 2, 2), 1.0);
        let b = t1(&[0.5, -0.5]);
        let out = conv2d(&input, &w, &b, Conv2dParams::new(2, 0).unwrap()).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2, 2]);
        assert_eq!(out.at(&[0, 0, 0]), 4.5);
        assert_eq!(out.at(&[1, 1, 1]), 3.5);
    }

    #[test]
    fn conv2d_multi_channel_sums_channels() {
        let input = Tensor::from_vec(Shape::d3(2, 1, 1), vec![3., 4.]).unwrap();
        let w = Tensor::from_vec(Shape::d4(1, 2, 1, 1), vec![1., 10.]).unwrap();
        let b = Tensor::zeros(Shape::d1(1));
        let out = conv2d(&input, &w, &b, Conv2dParams::new(1, 0).unwrap()).unwrap();
        assert_eq!(out.data(), &[43.0]);
    }

    #[test]
    fn conv2d_validates_shapes() {
        let input = Tensor::zeros(Shape::d3(2, 4, 4));
        let w = Tensor::zeros(Shape::d4(1, 3, 3, 3)); // wrong in-channels
        let b = Tensor::zeros(Shape::d1(1));
        assert!(conv2d(&input, &w, &b, Conv2dParams::UNIT).is_err());
        let w2 = Tensor::zeros(Shape::d4(1, 2, 3, 3));
        let b2 = Tensor::zeros(Shape::d1(2)); // wrong bias size
        assert!(conv2d(&input, &w2, &b2, Conv2dParams::UNIT).is_err());
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let input = Tensor::from_vec(Shape::d3(2, 1, 1), vec![3., 4.]).unwrap();
        let w = Tensor::from_vec(Shape::d4(2, 1, 1, 1), vec![2., 10.]).unwrap();
        let b = Tensor::zeros(Shape::d1(2));
        let out = depthwise_conv2d(&input, &w, &b, Conv2dParams::new(1, 0).unwrap()).unwrap();
        assert_eq!(out.data(), &[6., 40.]);
    }

    #[test]
    fn maxpool_halves_extent() {
        let input =
            Tensor::from_vec(Shape::d3(1, 2, 4), vec![1., 5., 2., 0., 3., 4., 9., 1.]).unwrap();
        let out = maxpool2d(&input, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2]);
        assert_eq!(out.data(), &[5., 9.]);
        assert!(maxpool2d(&input, 0).is_err());
        assert!(maxpool2d(&input, 5).is_err());
    }

    #[test]
    fn global_avgpool_means_per_channel() {
        let input = Tensor::from_vec(Shape::d3(2, 1, 2), vec![1., 3., 10., 20.]).unwrap();
        let out = global_avgpool(&input).unwrap();
        assert_eq!(out.data(), &[2., 15.]);
    }

    #[test]
    fn activations() {
        let x = t1(&[-2., 0.5, 8.]);
        assert_eq!(relu(&x).data(), &[0., 0.5, 8.]);
        assert_eq!(relu6(&x).data(), &[0., 0.5, 6.]);
        let s = sigmoid(&t1(&[0.0]));
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        let t = tanh(&t1(&[0.0]));
        assert_eq!(t.data()[0], 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let out = softmax(&t1(&[1., 2., 3.])).unwrap();
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(out.data()[2] > out.data()[1] && out.data()[1] > out.data()[0]);
        // Stable under large inputs.
        let big = softmax(&t1(&[1000., 1001.])).unwrap();
        assert!(big.data().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn dense_hand_computed() {
        let x = t1(&[1., 2.]);
        let w = Tensor::from_vec(Shape::d2(3, 2), vec![1., 0., 0., 1., 1., 1.]).unwrap();
        let b = t1(&[0., 0., 0.5]);
        let out = dense(&x, &w, &b).unwrap();
        assert_eq!(out.data(), &[1., 2., 3.5]);
        assert!(dense(&t1(&[1., 2., 3.]), &w, &b).is_err());
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn concat1_joins() {
        let out = concat1(&t1(&[1., 2.]), &t1(&[3.])).unwrap();
        assert_eq!(out.data(), &[1., 2., 3.]);
    }

    #[test]
    fn out_extent_math() {
        let p = Conv2dParams::new(2, 1).unwrap();
        assert_eq!(p.out_extent(4, 3), Some(2));
        assert_eq!(Conv2dParams::new(1, 0).unwrap().out_extent(2, 3), None);
        assert!(Conv2dParams::new(0, 0).is_err());
    }
}

//! A minimal, dependency-free tensor library for the MLPerf Inference
//! reproduction.
//!
//! The paper's submitters run reference models through full frameworks
//! (TensorFlow, PyTorch, TensorRT, ...). This crate is the corresponding
//! substrate here: just enough real numerical machinery — dense f32 tensors,
//! the NN kernels the proxy models need, and symmetric INT8 quantization with
//! i32 accumulation — for accuracy mode to produce *genuine* predictions and
//! for quantization to cause *genuine* (small) accuracy loss, which is what
//! the benchmark's quality-target rules are about.
//!
//! Layout convention: activations are `[C, H, W]` (single sample) and weights
//! are `[OutC, InC, KH, KW]`; batching is handled one level up in `mlperf-nn`.
//!
//! # Examples
//!
//! ```
//! use mlperf_tensor::{Tensor, Shape};
//!
//! let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.])?;
//! assert_eq!(t.shape().dims(), &[2, 3]);
//! assert_eq!(t.at(&[1, 2]), 6.0);
//! # Ok::<(), mlperf_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ops;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use quant::{QTensor, QuantParams};
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};

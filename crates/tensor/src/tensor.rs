//! Dense f32 tensors.

use crate::shape::Shape;

/// A dense, row-major f32 tensor.
///
/// # Examples
///
/// ```
/// use mlperf_tensor::{Shape, Tensor};
///
/// let z = Tensor::zeros(Shape::d2(2, 2));
/// assert_eq!(z.data(), &[0.0; 4]);
/// let f = Tensor::fill_with(Shape::d1(3), |i| i[0] as f32);
/// assert_eq!(f.data(), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Builds a tensor from existing row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Builds a tensor by evaluating `f` at every multi-index.
    pub fn fill_with<F: FnMut(&[usize]) -> f32>(shape: Shape, mut f: F) -> Self {
        let rank = shape.rank();
        let dims = shape.dims().to_vec();
        let mut index = vec![0usize; rank];
        let mut data = Vec::with_capacity(shape.len());
        loop {
            data.push(f(&index));
            // Odometer increment.
            let mut d = rank;
            loop {
                if d == 0 {
                    return Self { shape, data };
                }
                d -= 1;
                index[d] += 1;
                if index[d] < dims[d] {
                    break;
                }
                index[d] = 0;
            }
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds; use [`Shape::offset`] for a
    /// fallible path.
    pub fn at(&self, index: &[usize]) -> f32 {
        let off = self.shape.offset(index).expect("index in bounds");
        self.data[off]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index).expect("index in bounds");
        self.data[off] = value;
    }

    /// Returns a new tensor with `f` applied elementwise.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|x| f(*x)).collect(),
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Reinterprets the data under a new shape of equal length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if lengths differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor, TensorError> {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty (impossible by construction).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, v)| {
                if *v > bv {
                    (i, *v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Largest absolute value in the tensor (0 for all-zero tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

/// Errors from tensor construction and arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Data length does not match the shape's element count.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Left operand shape.
        left: Shape,
        /// Right operand shape.
        right: Shape,
    },
    /// A multi-index was out of bounds or of the wrong rank.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor dimensions.
        dims: Vec<usize>,
    },
    /// An operation's parameters were invalid (e.g. zero stride).
    BadParameter(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape length {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dimensions {dims:?}")
            }
            TensorError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|x| *x == 0.0));
        let f = Tensor::full(Shape::d1(4), 2.5);
        assert!(f.data().iter().all(|x| *x == 2.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 3]),
            Err(TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn fill_with_visits_row_major() {
        let t = Tensor::fill_with(Shape::d2(2, 3), |i| (i[0] * 10 + i[1]) as f32);
        assert_eq!(t.data(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::zeros(Shape::d3(2, 2, 2));
        t.set(&[1, 0, 1], 7.0);
        assert_eq!(t.at(&[1, 0, 1]), 7.0);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn add_and_shape_mismatch() {
        let a = Tensor::full(Shape::d1(3), 1.0);
        let b = Tensor::full(Shape::d1(3), 2.0);
        assert_eq!(a.add(&b).unwrap().data(), &[3.0; 3]);
        let c = Tensor::full(Shape::d1(4), 2.0);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn map_scale_mean() {
        let t = Tensor::from_vec(Shape::d1(4), vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(t.map(|x| x * x).data(), &[1., 4., 9., 16.]);
        assert_eq!(t.scale(2.0).data(), &[2., 4., 6., 8.]);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_vec(Shape::d1(5), vec![1., 5., 3., 5., 2.]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn abs_max() {
        let t = Tensor::from_vec(Shape::d1(3), vec![-7., 2., 5.]).unwrap();
        assert_eq!(t.abs_max(), 7.0);
        assert_eq!(Tensor::zeros(Shape::d1(2)).abs_max(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(Shape::d2(3, 2)).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::d1(5)).is_err());
    }

    #[test]
    fn error_display() {
        let e = TensorError::ShapeMismatch {
            left: Shape::d1(2),
            right: Shape::d1(3),
        };
        assert!(e.to_string().contains("mismatch"));
    }
}

//! Symmetric INT8 post-training quantization.
//!
//! The paper's rules allow quantization to many formats (INT4…FP32) with
//! calibration but **without retraining** (Section IV-A). This module
//! implements the most common deployment path the paper mentions — 8-bit
//! integer arithmetic with per-tensor symmetric scales — so that the
//! quality-target machinery in the benchmark operates on real numbers: a
//! quantized proxy model genuinely loses a little accuracy relative to its
//! FP32 reference.

use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// Per-tensor symmetric quantization parameters: `real = scale * q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
}

impl QuantParams {
    /// Derives parameters that cover `[-abs_max, abs_max]` with the full
    /// signed 8-bit range.
    ///
    /// A zero or non-finite `abs_max` falls back to scale 1, representing a
    /// degenerate all-zero tensor.
    pub fn from_abs_max(abs_max: f32) -> Self {
        let scale = if abs_max.is_finite() && abs_max > 0.0 {
            abs_max / 127.0
        } else {
            1.0
        };
        Self { scale }
    }

    /// Derives parameters by scanning a calibration tensor, exactly what the
    /// benchmark's fixed calibration set is for.
    pub fn calibrate(tensor: &Tensor) -> Self {
        Self::from_abs_max(tensor.abs_max())
    }

    /// Derives parameters from several calibration batches (max of maxima).
    pub fn calibrate_many<'a, I: IntoIterator<Item = &'a Tensor>>(tensors: I) -> Self {
        let m = tensors
            .into_iter()
            .fold(0.0f32, |acc, t| acc.max(t.abs_max()));
        Self::from_abs_max(m)
    }

    /// The real-value step per integer increment.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one real value to `i8` with round-to-nearest and saturation.
    pub fn quantize_value(&self, x: f32) -> i8 {
        (x / self.scale).round().clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one integer back to a real value.
    pub fn dequantize_value(&self, q: i8) -> f32 {
        f32::from(q) * self.scale
    }
}

/// A quantized tensor: `i8` payload plus its [`QuantParams`].
///
/// # Examples
///
/// ```
/// use mlperf_tensor::{QTensor, Shape, Tensor};
///
/// let t = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.0, 2.0])?;
/// let q = QTensor::quantize(&t);
/// let back = q.dequantize();
/// for (a, b) in t.data().iter().zip(back.data()) {
///     assert!((a - b).abs() <= q.params().scale() / 2.0 + 1e-6);
/// }
/// # Ok::<(), mlperf_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    shape: Shape,
    data: Vec<i8>,
    params: QuantParams,
}

impl QTensor {
    /// Quantizes a tensor with parameters calibrated from its own range.
    pub fn quantize(tensor: &Tensor) -> Self {
        Self::quantize_with(tensor, QuantParams::calibrate(tensor))
    }

    /// Quantizes a tensor with externally calibrated parameters (activation
    /// quantization uses the calibration data set, not the live tensor).
    pub fn quantize_with(tensor: &Tensor, params: QuantParams) -> Self {
        Self {
            shape: tensor.shape().clone(),
            data: tensor
                .data()
                .iter()
                .map(|x| params.quantize_value(*x))
                .collect(),
            params,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// The raw `i8` payload.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Expands back to f32.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.shape.clone(),
            self.data
                .iter()
                .map(|q| self.params.dequantize_value(*q))
                .collect(),
        )
        .expect("shape preserved by construction")
    }
}

/// A weight tensor quantized with one symmetric scale **per output
/// channel** (dimension 0) — the industry-standard INT8 weight layout
/// (TFLite/TensorRT): per-channel weight scales with per-tensor activation
/// scales cut quantization error dramatically versus per-tensor weights,
/// at no runtime cost beyond one rescale per output channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelQTensor {
    shape: Shape,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl ChannelQTensor {
    /// Quantizes `tensor` with one scale per slice along dimension 0.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 (impossible by [`Shape`]
    /// construction).
    pub fn quantize_dim0(tensor: &Tensor) -> Self {
        let shape = tensor.shape().clone();
        let channels = shape.dim(0);
        let per = tensor.len() / channels;
        let data = tensor.data();
        let mut out = Vec::with_capacity(tensor.len());
        let mut scales = Vec::with_capacity(channels);
        for c in 0..channels {
            let slice = &data[c * per..(c + 1) * per];
            let abs_max = slice.iter().fold(0.0f32, |m, x| m.max(x.abs()));
            let params = QuantParams::from_abs_max(abs_max);
            scales.push(params.scale());
            out.extend(slice.iter().map(|x| params.quantize_value(*x)));
        }
        Self {
            shape,
            data: out,
            scales,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The per-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The raw `i8` payload.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Expands back to f32.
    pub fn dequantize(&self) -> Tensor {
        let channels = self.scales.len();
        let per = self.data.len() / channels;
        let mut out = Vec::with_capacity(self.data.len());
        for c in 0..channels {
            let scale = self.scales[c];
            out.extend(
                self.data[c * per..(c + 1) * per]
                    .iter()
                    .map(|q| f32::from(*q) * scale),
            );
        }
        Tensor::from_vec(self.shape.clone(), out).expect("shape preserved by construction")
    }
}

/// Quantizes a tensor to 16-bit integers per output channel (dimension 0)
/// and dequantizes it back — emulating INT16/FP16-class weight storage,
/// the deployment numerics the v0.5 round actually used for the detection
/// and translation tasks (both are on the paper's approved list).
pub fn per_channel_i16_roundtrip(tensor: &Tensor) -> Tensor {
    let channels = tensor.shape().dim(0);
    let per = tensor.len() / channels;
    let data = tensor.data();
    let mut out = Vec::with_capacity(tensor.len());
    for c in 0..channels {
        let slice = &data[c * per..(c + 1) * per];
        let abs_max = slice.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let scale = if abs_max > 0.0 {
            abs_max / 32_767.0
        } else {
            1.0
        };
        out.extend(
            slice
                .iter()
                .map(|x| (x / scale).round().clamp(-32_767.0, 32_767.0) * scale),
        );
    }
    Tensor::from_vec(tensor.shape().clone(), out).expect("shape preserved by construction")
}

/// Quantized dense layer with per-output-channel weight scales.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank or size disagreements.
pub fn qdense_per_channel(
    input: &QTensor,
    weight: &ChannelQTensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    let wd = weight.shape().dims();
    if input.shape().rank() != 1 || weight.shape().rank() != 2 || wd[1] != input.data().len() {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weight.shape().clone(),
        });
    }
    let out_dim = wd[0];
    if bias.shape().dims() != [out_dim] {
        return Err(TensorError::ShapeMismatch {
            left: weight.shape().clone(),
            right: bias.shape().clone(),
        });
    }
    let k = input.data().len();
    let in_scale = input.params().scale();
    let out = (0..out_dim)
        .map(|o| {
            let acc: i32 = weight.data()[o * k..(o + 1) * k]
                .iter()
                .zip(input.data())
                .map(|(w, x)| i32::from(*w) * i32::from(*x))
                .sum();
            acc as f32 * in_scale * weight.scales()[o] + bias.data()[o]
        })
        .collect();
    Tensor::from_vec(Shape::d1(out_dim), out)
}

/// Quantized standard convolution with per-output-channel weight scales.
/// Shapes as in [`crate::ops::conv2d`].
///
/// # Errors
///
/// Same conditions as [`crate::ops::conv2d`].
pub fn qconv2d_per_channel(
    input: &QTensor,
    weight: &ChannelQTensor,
    bias: &Tensor,
    params: crate::ops::Conv2dParams,
) -> Result<Tensor, TensorError> {
    let id = input.shape().dims();
    if id.len() != 3 {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: Shape::d3(1, 1, 1),
        });
    }
    let (ic, h, w) = (id[0], id[1], id[2]);
    let wd = weight.shape().dims();
    if weight.shape().rank() != 4 || wd[1] != ic {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weight.shape().clone(),
        });
    }
    let (oc, kh, kw) = (wd[0], wd[2], wd[3]);
    if bias.shape().dims() != [oc] {
        return Err(TensorError::ShapeMismatch {
            left: weight.shape().clone(),
            right: bias.shape().clone(),
        });
    }
    let oh = params
        .out_extent(h, kh)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kh} too large for input {h}")))?;
    let ow = params
        .out_extent(w, kw)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kw} too large for input {w}")))?;
    let in_scale = input.params().scale();
    let mut out = vec![0.0f32; oc * oh * ow];
    for o in 0..oc {
        let rescale = in_scale * weight.scales()[o];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i32 = 0;
                for c in 0..ic {
                    for ky in 0..kh {
                        let iy = (oy * params.stride + ky) as isize - params.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * params.stride + kx) as isize - params.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xi = (c * h + iy as usize) * w + ix as usize;
                            let wi = ((o * ic + c) * kh + ky) * kw + kx;
                            acc += i32::from(input.data()[xi]) * i32::from(weight.data()[wi]);
                        }
                    }
                }
                out[(o * oh + oy) * ow + ox] = acc as f32 * rescale + bias.data()[o];
            }
        }
    }
    Tensor::from_vec(Shape::d3(oc, oh, ow), out)
}

/// Quantized dense layer with i32 accumulation: input and weight are INT8,
/// bias stays f32, output is f32 (the usual INT8 GEMM epilogue).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank or size disagreements.
pub fn qdense(input: &QTensor, weight: &QTensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    let wd = weight.shape().dims();
    if input.shape().rank() != 1 || weight.shape().rank() != 2 || wd[1] != input.data.len() {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weight.shape().clone(),
        });
    }
    let out_dim = wd[0];
    if bias.shape().dims() != [out_dim] {
        return Err(TensorError::ShapeMismatch {
            left: weight.shape().clone(),
            right: bias.shape().clone(),
        });
    }
    let k = input.data.len();
    let rescale = input.params.scale() * weight.params.scale();
    let out = (0..out_dim)
        .map(|o| {
            let acc: i32 = weight.data[o * k..(o + 1) * k]
                .iter()
                .zip(&input.data)
                .map(|(w, x)| i32::from(*w) * i32::from(*x))
                .sum();
            acc as f32 * rescale + bias.data()[o]
        })
        .collect();
    Tensor::from_vec(Shape::d1(out_dim), out)
}

/// Quantized standard convolution with i32 accumulation. Shapes as in
/// [`crate::ops::conv2d`].
///
/// # Errors
///
/// Same conditions as [`crate::ops::conv2d`].
pub fn qconv2d(
    input: &QTensor,
    weight: &QTensor,
    bias: &Tensor,
    params: crate::ops::Conv2dParams,
) -> Result<Tensor, TensorError> {
    let id = input.shape().dims();
    if id.len() != 3 {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: Shape::d3(1, 1, 1),
        });
    }
    let (ic, h, w) = (id[0], id[1], id[2]);
    let wd = weight.shape().dims();
    if weight.shape().rank() != 4 || wd[1] != ic {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weight.shape().clone(),
        });
    }
    let (oc, kh, kw) = (wd[0], wd[2], wd[3]);
    if bias.shape().dims() != [oc] {
        return Err(TensorError::ShapeMismatch {
            left: weight.shape().clone(),
            right: bias.shape().clone(),
        });
    }
    let oh = params
        .out_extent(h, kh)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kh} too large for input {h}")))?;
    let ow = params
        .out_extent(w, kw)
        .ok_or_else(|| TensorError::BadParameter(format!("kernel {kw} too large for input {w}")))?;
    let rescale = input.params.scale() * weight.params.scale();
    let mut out = vec![0.0f32; oc * oh * ow];
    for o in 0..oc {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i32 = 0;
                for c in 0..ic {
                    for ky in 0..kh {
                        let iy = (oy * params.stride + ky) as isize - params.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * params.stride + kx) as isize - params.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xi = (c * h + iy as usize) * w + ix as usize;
                            let wi = ((o * ic + c) * kh + ky) * kw + kx;
                            acc += i32::from(input.data[xi]) * i32::from(weight.data[wi]);
                        }
                    }
                }
                out[(o * oh + oy) * ow + ox] = acc as f32 * rescale + bias.data()[o];
            }
        }
    }
    Tensor::from_vec(Shape::d3(oc, oh, ow), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{conv2d, dense, Conv2dParams};

    #[test]
    fn quantize_roundtrip_error_bounded_by_half_scale() {
        let t = Tensor::from_vec(Shape::d1(6), vec![-3.0, -1.5, 0.0, 0.7, 2.2, 3.0]).unwrap();
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        let half = q.params().scale() / 2.0 + 1e-6;
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= half, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let p = QuantParams::from_abs_max(1.0);
        assert_eq!(p.quantize_value(100.0), 127);
        assert_eq!(p.quantize_value(-100.0), -127);
    }

    #[test]
    fn zero_tensor_degenerate_scale() {
        let t = Tensor::zeros(Shape::d1(4));
        let q = QTensor::quantize(&t);
        assert_eq!(q.params().scale(), 1.0);
        assert_eq!(q.dequantize().data(), &[0.0; 4]);
    }

    #[test]
    fn calibrate_many_takes_max() {
        let a = Tensor::full(Shape::d1(2), 1.0);
        let b = Tensor::full(Shape::d1(2), -5.0);
        let p = QuantParams::calibrate_many([&a, &b]);
        assert!((p.scale() - 5.0 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn qdense_close_to_fp32_dense() {
        let x = Tensor::from_vec(Shape::d1(3), vec![0.5, -1.0, 2.0]).unwrap();
        let w = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 0.5, -0.5, 2.0, -1.0, 0.25]).unwrap();
        let b = Tensor::from_vec(Shape::d1(2), vec![0.1, -0.2]).unwrap();
        let exact = dense(&x, &w, &b).unwrap();
        let approx = qdense(&QTensor::quantize(&x), &QTensor::quantize(&w), &b).unwrap();
        for (e, a) in exact.data().iter().zip(approx.data()) {
            assert!((e - a).abs() < 0.08, "{e} vs {a}");
        }
    }

    #[test]
    fn qconv_close_to_fp32_conv() {
        let input = Tensor::fill_with(Shape::d3(2, 4, 4), |i| {
            ((i[0] * 16 + i[1] * 4 + i[2]) as f32).sin()
        });
        let w = Tensor::fill_with(Shape::d4(3, 2, 3, 3), |i| {
            ((i[0] + i[1] * 2 + i[2] * 3 + i[3]) as f32 * 0.37).cos() * 0.5
        });
        let b = Tensor::from_vec(Shape::d1(3), vec![0.1, 0.0, -0.1]).unwrap();
        let exact = conv2d(&input, &w, &b, Conv2dParams::UNIT).unwrap();
        let approx = qconv2d(
            &QTensor::quantize(&input),
            &QTensor::quantize(&w),
            &b,
            Conv2dParams::UNIT,
        )
        .unwrap();
        let max_err = exact
            .data()
            .iter()
            .zip(approx.data())
            .map(|(e, a)| (e - a).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.2, "max error {max_err}");
        // But not bit-identical: quantization must actually perturb results.
        assert_ne!(exact.data(), approx.data());
    }

    #[test]
    fn qdense_validates_shapes() {
        let x = QTensor::quantize(&Tensor::zeros(Shape::d1(3)));
        let w = QTensor::quantize(&Tensor::zeros(Shape::d2(2, 4)));
        let b = Tensor::zeros(Shape::d1(2));
        assert!(qdense(&x, &w, &b).is_err());
    }

    #[test]
    fn per_channel_quantization_beats_per_tensor() {
        // A weight matrix with wildly different row magnitudes: per-tensor
        // scales crush the small rows; per-channel scales preserve them.
        let w = Tensor::fill_with(Shape::d2(2, 8), |i| {
            let base = if i[0] == 0 { 100.0 } else { 0.1 };
            base * (1.0 + i[1] as f32 / 10.0)
        });
        let per_tensor = QTensor::quantize(&w).dequantize();
        let per_channel = ChannelQTensor::quantize_dim0(&w).dequantize();
        let err = |approx: &Tensor| {
            w.data()
                .iter()
                .zip(approx.data())
                .map(|(a, b)| ((a - b) / a).abs())
                .fold(0.0f32, f32::max)
        };
        let e_tensor = err(&per_tensor);
        let e_channel = err(&per_channel);
        assert!(
            e_channel < e_tensor / 10.0,
            "per-channel {e_channel} should be far below per-tensor {e_tensor}"
        );
    }

    #[test]
    fn per_channel_roundtrip_bounded_per_row() {
        let w = Tensor::fill_with(Shape::d2(3, 4), |i| {
            (i[0] as f32 + 1.0) * (i[1] as f32 - 1.5)
        });
        let q = ChannelQTensor::quantize_dim0(&w);
        assert_eq!(q.scales().len(), 3);
        let back = q.dequantize();
        for c in 0..3 {
            let bound = q.scales()[c] / 2.0 + 1e-6;
            for j in 0..4 {
                let (a, b) = (w.at(&[c, j]), back.at(&[c, j]));
                assert!((a - b).abs() <= bound, "row {c}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn qdense_per_channel_close_to_fp32() {
        let x = Tensor::from_vec(Shape::d1(3), vec![0.5, -1.0, 2.0]).unwrap();
        let w = Tensor::from_vec(Shape::d2(2, 3), vec![10.0, 5.0, -5.0, 0.2, -0.1, 0.025]).unwrap();
        let b = Tensor::from_vec(Shape::d1(2), vec![0.1, -0.2]).unwrap();
        let exact = dense(&x, &w, &b).unwrap();
        let approx = qdense_per_channel(
            &QTensor::quantize(&x),
            &ChannelQTensor::quantize_dim0(&w),
            &b,
        )
        .unwrap();
        // Input quantization dominates: error bound ~ in_scale * sum|w|.
        for (e, a) in exact.data().iter().zip(approx.data()) {
            assert!((e - a).abs() < 0.25, "{e} vs {a}");
        }
    }

    #[test]
    fn qconv_per_channel_close_to_fp32() {
        let input = Tensor::fill_with(Shape::d3(2, 4, 4), |i| {
            ((i[0] * 16 + i[1] * 4 + i[2]) as f32).sin()
        });
        let w = Tensor::fill_with(Shape::d4(3, 2, 3, 3), |i| {
            let row_scale = [4.0, 0.1, 1.0][i[0]];
            row_scale * ((i[1] + i[2] * 2 + i[3]) as f32 * 0.37).cos()
        });
        let b = Tensor::zeros(Shape::d1(3));
        let exact = conv2d(&input, &w, &b, Conv2dParams::UNIT).unwrap();
        let approx = qconv2d_per_channel(
            &QTensor::quantize(&input),
            &ChannelQTensor::quantize_dim0(&w),
            &b,
            Conv2dParams::UNIT,
        )
        .unwrap();
        let max_rel = exact
            .data()
            .iter()
            .zip(approx.data())
            .map(|(e, a)| (e - a).abs() / exact.abs_max())
            .fold(0.0f32, f32::max);
        assert!(max_rel < 0.03, "max relative error {max_rel}");
    }

    #[test]
    fn per_channel_shape_validation() {
        let x = QTensor::quantize(&Tensor::zeros(Shape::d1(3)));
        let w = ChannelQTensor::quantize_dim0(&Tensor::zeros(Shape::d2(2, 4)));
        let b = Tensor::zeros(Shape::d1(2));
        assert!(qdense_per_channel(&x, &w, &b).is_err());
    }

    #[test]
    fn external_params_used_for_activations() {
        let t = Tensor::full(Shape::d1(2), 10.0);
        let p = QuantParams::from_abs_max(127.0); // scale 1.0
        let q = QTensor::quantize_with(&t, p);
        assert_eq!(q.data(), &[10, 10]);
    }
}

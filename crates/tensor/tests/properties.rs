//! Property-style tests for tensor kernels.
//!
//! Seeded `Rng64` case loops replace the former property-testing
//! framework; failure messages carry the case number for replay.

use mlperf_stats::Rng64;
use mlperf_tensor::ops::{conv2d, dense, matmul, relu, softmax, Conv2dParams};
use mlperf_tensor::{QTensor, Shape, Tensor};

const CASES: u64 = 32;

/// Small grid-aligned f32 values in [-10, 10), step 0.1.
fn small_f32(rng: &mut Rng64) -> f32 {
    (rng.next_below(200) as i64 - 100) as f32 / 10.0
}

fn small_vec(rng: &mut Rng64, len: usize) -> Vec<f32> {
    (0..len).map(|_| small_f32(rng)).collect()
}

#[test]
fn conv2d_is_linear_in_input() {
    let mut rng = Rng64::new(0x544e_0001);
    for case in 0..CASES {
        // conv(a + b) == conv(a) + conv(b) with zero bias.
        let a = small_vec(&mut rng, 16);
        let b = small_vec(&mut rng, 16);
        let w = small_vec(&mut rng, 9);
        let ta = Tensor::from_vec(Shape::d3(1, 4, 4), a).unwrap();
        let tb = Tensor::from_vec(Shape::d3(1, 4, 4), b).unwrap();
        let tw = Tensor::from_vec(Shape::d4(1, 1, 3, 3), w).unwrap();
        let bias = Tensor::zeros(Shape::d1(1));
        let lhs = conv2d(&ta.add(&tb).unwrap(), &tw, &bias, Conv2dParams::UNIT).unwrap();
        let ra = conv2d(&ta, &tw, &bias, Conv2dParams::UNIT).unwrap();
        let rb = conv2d(&tb, &tw, &bias, Conv2dParams::UNIT).unwrap();
        let rhs = ra.add(&rb).unwrap();
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            assert!((l - r).abs() < 1e-3, "case {case}: {l} vs {r}");
        }
    }
}

#[test]
fn matmul_matches_dense_per_row() {
    let mut rng = Rng64::new(0x544e_0002);
    for case in 0..CASES {
        // [2x3] * [3x2]: each output row equals dense() of that row against b^T.
        let a = small_vec(&mut rng, 6);
        let b = small_vec(&mut rng, 6);
        let ta = Tensor::from_vec(Shape::d2(2, 3), a.clone()).unwrap();
        let tb = Tensor::from_vec(Shape::d2(3, 2), b.clone()).unwrap();
        let mm = matmul(&ta, &tb).unwrap();
        // Build b^T as a dense weight [2, 3].
        let mut wt = vec![0.0f32; 6];
        for i in 0..3 {
            for j in 0..2 {
                wt[j * 3 + i] = b[i * 2 + j];
            }
        }
        let weight = Tensor::from_vec(Shape::d2(2, 3), wt).unwrap();
        let bias = Tensor::zeros(Shape::d1(2));
        for row in 0..2 {
            let x = Tensor::from_vec(Shape::d1(3), a[row * 3..(row + 1) * 3].to_vec()).unwrap();
            let d = dense(&x, &weight, &bias).unwrap();
            for j in 0..2 {
                assert!(
                    (d.data()[j] - mm.at(&[row, j])).abs() < 1e-3,
                    "case {case}: row={row} j={j}"
                );
            }
        }
    }
}

#[test]
fn relu_is_idempotent_and_nonnegative() {
    let mut rng = Rng64::new(0x544e_0003);
    for case in 0..CASES {
        let len = 1 + rng.next_index(63);
        let data = small_vec(&mut rng, len);
        let t = Tensor::from_vec(Shape::d1(len), data).unwrap();
        let once = relu(&t);
        assert!(once.data().iter().all(|x| *x >= 0.0), "case {case}");
        let twice = relu(&once);
        assert_eq!(twice.data(), once.data(), "case {case}");
    }
}

#[test]
fn softmax_is_distribution() {
    let mut rng = Rng64::new(0x544e_0004);
    for case in 0..CASES {
        let len = 1 + rng.next_index(31);
        let data = small_vec(&mut rng, len);
        let t = Tensor::from_vec(Shape::d1(len), data).unwrap();
        let s = softmax(&t).unwrap();
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "case {case}: sum={sum}");
        assert!(
            s.data().iter().all(|p| *p >= 0.0 && *p <= 1.0),
            "case {case}"
        );
    }
}

#[test]
fn softmax_preserves_argmax() {
    let mut rng = Rng64::new(0x544e_0005);
    let mut accepted = 0;
    while accepted < CASES {
        let len = 2 + rng.next_index(30);
        let data: Vec<i32> = (0..len).map(|_| rng.next_below(100) as i32 - 50).collect();
        // Distinct integer logits: argmax survives softmax exactly.
        let mut seen = std::collections::HashSet::new();
        if !data.iter().all(|x| seen.insert(*x)) {
            continue;
        }
        accepted += 1;
        let t = Tensor::from_vec(Shape::d1(len), data.iter().map(|x| *x as f32).collect()).unwrap();
        assert_eq!(softmax(&t).unwrap().argmax(), t.argmax(), "data={data:?}");
    }
}

#[test]
fn quantize_dequantize_error_bound() {
    let mut rng = Rng64::new(0x544e_0006);
    for case in 0..CASES {
        let len = 1 + rng.next_index(127);
        let data = small_vec(&mut rng, len);
        let t = Tensor::from_vec(Shape::d1(len), data).unwrap();
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        let bound = q.params().scale() / 2.0 + 1e-6;
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!(
                (a - b).abs() <= bound,
                "case {case}: {a} vs {b} bound {bound}"
            );
        }
    }
}

#[test]
fn quantize_is_idempotent_on_grid() {
    let mut rng = Rng64::new(0x544e_0007);
    for case in 0..CASES {
        // Quantizing an already-dequantized tensor with the same params is lossless.
        let len = 1 + rng.next_index(63);
        let data = small_vec(&mut rng, len);
        let t = Tensor::from_vec(Shape::d1(len), data).unwrap();
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        let q2 = QTensor::quantize_with(&back, q.params());
        assert_eq!(q.data(), q2.data(), "case {case}");
    }
}

#[test]
fn fill_with_matches_at() {
    let mut rng = Rng64::new(0x544e_0008);
    for case in 0..CASES {
        let rank = 1 + rng.next_index(3);
        let dims: Vec<usize> = (0..rank).map(|_| 1 + rng.next_index(4)).collect();
        let shape = Shape::new(&dims);
        let t = Tensor::fill_with(shape.clone(), |i| i.iter().sum::<usize>() as f32);
        // Spot-check the first and last index.
        let zero = vec![0usize; dims.len()];
        assert_eq!(t.at(&zero), 0.0, "case {case}: dims={dims:?}");
        let last: Vec<usize> = dims.iter().map(|d| d - 1).collect();
        assert_eq!(
            t.at(&last),
            last.iter().sum::<usize>() as f32,
            "case {case}: dims={dims:?}"
        );
    }
}

//! Property-based tests for tensor kernels.

use mlperf_tensor::ops::{conv2d, dense, matmul, relu, softmax, Conv2dParams};
use mlperf_tensor::{QTensor, Shape, Tensor};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..100).prop_map(|x| x as f32 / 10.0)
}

proptest! {
    #[test]
    fn conv2d_is_linear_in_input(
        a in prop::collection::vec(small_f32(), 16),
        b in prop::collection::vec(small_f32(), 16),
        w in prop::collection::vec(small_f32(), 9),
    ) {
        // conv(a + b) == conv(a) + conv(b) with zero bias.
        let ta = Tensor::from_vec(Shape::d3(1, 4, 4), a).unwrap();
        let tb = Tensor::from_vec(Shape::d3(1, 4, 4), b).unwrap();
        let tw = Tensor::from_vec(Shape::d4(1, 1, 3, 3), w).unwrap();
        let bias = Tensor::zeros(Shape::d1(1));
        let lhs = conv2d(&ta.add(&tb).unwrap(), &tw, &bias, Conv2dParams::UNIT).unwrap();
        let ra = conv2d(&ta, &tw, &bias, Conv2dParams::UNIT).unwrap();
        let rb = conv2d(&tb, &tw, &bias, Conv2dParams::UNIT).unwrap();
        let rhs = ra.add(&rb).unwrap();
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-3, "{} vs {}", l, r);
        }
    }

    #[test]
    fn matmul_matches_dense_per_row(
        a in prop::collection::vec(small_f32(), 6),
        b in prop::collection::vec(small_f32(), 6),
    ) {
        // [2x3] * [3x2]: each output row equals dense() of that row against b^T.
        let ta = Tensor::from_vec(Shape::d2(2, 3), a.clone()).unwrap();
        let tb = Tensor::from_vec(Shape::d2(3, 2), b.clone()).unwrap();
        let mm = matmul(&ta, &tb).unwrap();
        // Build b^T as a dense weight [2, 3].
        let mut wt = vec![0.0f32; 6];
        for i in 0..3 {
            for j in 0..2 {
                wt[j * 3 + i] = b[i * 2 + j];
            }
        }
        let weight = Tensor::from_vec(Shape::d2(2, 3), wt).unwrap();
        let bias = Tensor::zeros(Shape::d1(2));
        for row in 0..2 {
            let x = Tensor::from_vec(Shape::d1(3), a[row * 3..(row + 1) * 3].to_vec()).unwrap();
            let d = dense(&x, &weight, &bias).unwrap();
            for j in 0..2 {
                prop_assert!((d.data()[j] - mm.at(&[row, j])).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(data in prop::collection::vec(small_f32(), 1..64)) {
        let t = Tensor::from_vec(Shape::d1(data.len()), data).unwrap();
        let once = relu(&t);
        prop_assert!(once.data().iter().all(|x| *x >= 0.0));
        let twice = relu(&once);
        prop_assert_eq!(twice.data(), once.data());
    }

    #[test]
    fn softmax_is_distribution(data in prop::collection::vec(small_f32(), 1..32)) {
        let t = Tensor::from_vec(Shape::d1(data.len()), data).unwrap();
        let s = softmax(&t).unwrap();
        let sum: f32 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.data().iter().all(|p| *p >= 0.0 && *p <= 1.0));
    }

    #[test]
    fn softmax_preserves_argmax(data in prop::collection::vec(-50i32..50, 2..32)) {
        // Distinct integer logits: argmax survives softmax exactly.
        let mut seen = std::collections::HashSet::new();
        prop_assume!(data.iter().all(|x| seen.insert(*x)));
        let t = Tensor::from_vec(Shape::d1(data.len()), data.iter().map(|x| *x as f32).collect()).unwrap();
        prop_assert_eq!(softmax(&t).unwrap().argmax(), t.argmax());
    }

    #[test]
    fn quantize_dequantize_error_bound(data in prop::collection::vec(small_f32(), 1..128)) {
        let t = Tensor::from_vec(Shape::d1(data.len()), data).unwrap();
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        let bound = q.params().scale() / 2.0 + 1e-6;
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} bound {}", a, b, bound);
        }
    }

    #[test]
    fn quantize_is_idempotent_on_grid(data in prop::collection::vec(small_f32(), 1..64)) {
        // Quantizing an already-dequantized tensor with the same params is lossless.
        let t = Tensor::from_vec(Shape::d1(data.len()), data).unwrap();
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        let q2 = QTensor::quantize_with(&back, q.params());
        prop_assert_eq!(q.data(), q2.data());
    }

    #[test]
    fn fill_with_matches_at(dims in prop::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(&dims);
        let t = Tensor::fill_with(shape.clone(), |i| i.iter().sum::<usize>() as f32);
        // Spot-check the first and last index.
        let zero = vec![0usize; dims.len()];
        prop_assert_eq!(t.at(&zero), 0.0);
        let last: Vec<usize> = dims.iter().map(|d| d - 1).collect();
        prop_assert_eq!(t.at(&last), last.iter().sum::<usize>() as f32);
    }
}

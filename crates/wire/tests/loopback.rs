//! End-to-end loopback tests: LoadGen driving a remote SUT through a real
//! TCP connection on 127.0.0.1, including every failure path the protocol
//! promises to surface as a structured verdict instead of a hang.

use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::{MemoryQsl, QuerySampleLibrary};
use mlperf_loadgen::realtime::run_realtime;
use mlperf_loadgen::sut::{FixedLatencySut, IssueOutcome, RealtimeSut, SleepSut};
use mlperf_loadgen::time::Nanos;
use mlperf_loadgen::validate::ValidityIssue;
use mlperf_loadgen::Query;
use mlperf_trace::metrics::MetricsRegistry;
use mlperf_trace::RingBufferSink;
use mlperf_wire::frame::{read_frame, write_frame};
use mlperf_wire::message::{Hello, Message, PROTOCOL_VERSION};
use mlperf_wire::{
    loopback, loopback_instrumented, serve_on, RemoteSut, RemoteSutConfig, ServeConfig,
    SilentDropService, SimHost, WireChaosPlan, WireError,
};

fn hello_for(settings: &TestSettings, qsl: &MemoryQsl, config: &RemoteSutConfig) -> Hello {
    RemoteSut::hello_for(settings, qsl.total_sample_count() as u64, config)
}

#[test]
fn loopback_offline_run_is_valid() {
    let settings = TestSettings::offline()
        .with_min_duration(Nanos::from_micros(1))
        .with_offline_min_sample_count(64);
    let mut qsl = MemoryQsl::new("loop-qsl", 32, 32);
    let config = RemoteSutConfig::default();
    let hello = hello_for(&settings, &qsl, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "remote-dev",
        Nanos::from_micros(5),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");
    assert_eq!(RealtimeSut::name(&client), "remote-dev");

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run");
    assert!(out.result.is_valid(), "{:?}", out.result.validity);
    assert!(out.result.sample_count >= 64);
    assert!(server.served() >= 1);
    server.shutdown();
}

#[test]
fn loopback_single_stream_collects_wire_metrics() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(20)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("loop-qsl", 16, 16);
    let config = RemoteSutConfig::default();
    let hello = hello_for(&settings, &qsl, &config);
    let sink = Arc::new(RingBufferSink::new(4096));
    let metrics = Arc::new(MetricsRegistry::new());
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "remote-dev",
        Nanos::from_micros(10),
    )));
    let (client, server) = loopback_instrumented(
        service,
        ServeConfig::default(),
        hello,
        config,
        Some(sink.clone()),
        Some(metrics.clone()),
    )
    .expect("loopback");

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run");
    assert!(out.result.is_valid(), "{:?}", out.result.validity);

    let snapshot = metrics.snapshot();
    let frames = snapshot
        .counters
        .get("wire_frames_sent")
        .copied()
        .unwrap_or(0);
    assert!(frames >= 20, "expected >=20 frames sent, saw {frames}");
    let rtt = snapshot
        .histograms
        .get("wire_rtt_ns")
        .expect("wire_rtt_ns histogram");
    assert!(rtt.count() >= 20, "expected >=20 RTT observations");
    assert!(snapshot.histograms.contains_key("wire_encode_ns"));
    server.shutdown();
}

#[test]
fn killing_the_server_mid_run_yields_structured_invalid() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(200)
        .with_min_duration(Nanos::from_millis(50));
    let mut qsl = MemoryQsl::new("loop-qsl", 16, 16);
    // Short response timeout so even a query caught mid-flight resolves
    // quickly; the disconnect path itself is immediate.
    let config = RemoteSutConfig::default().with_response_timeout(Duration::from_millis(500));
    let hello = hello_for(&settings, &qsl, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "doomed",
        Nanos::from_micros(200),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");
    let server = Arc::new(server);

    let killer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            server.kill();
        })
    };

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run must not hang");
    killer.join().unwrap();
    assert!(!out.result.is_valid(), "a killed server cannot yield VALID");
    assert!(
        out.result.validity.iter().any(|i| matches!(
            i,
            ValidityIssue::ErrorFractionExceeded { .. } | ValidityIssue::IncompleteQueries { .. }
        )),
        "expected an error-fraction or incomplete-queries verdict, got {:?}",
        out.result.validity
    );
}

#[test]
fn version_mismatch_is_rejected() {
    let settings = TestSettings::single_stream();
    let qsl = MemoryQsl::new("loop-qsl", 4, 4);
    let config = RemoteSutConfig::default();
    let mut hello = hello_for(&settings, &qsl, &config);
    hello.version = PROTOCOL_VERSION + 1;
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "strict",
        Nanos::from_micros(1),
    )));
    let err =
        loopback(service, ServeConfig::default(), hello, config).expect_err("handshake must fail");
    assert!(
        matches!(err, WireError::Rejected(_)),
        "expected Rejected, got {err:?}"
    );
}

#[test]
fn heartbeat_loss_fails_pending_queries_instead_of_hanging() {
    // A hand-rolled zombie server: completes the handshake, then reads
    // and discards every frame — no completions, no heartbeat acks. The
    // socket stays open, so only the heartbeat monitor can notice.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let zombie = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let _hello = read_frame(&mut stream).expect("hello frame");
        let ack = Message::HelloAck {
            version: PROTOCOL_VERSION,
            sut_name: "zombie".to_string(),
            max_in_flight: 4,
        };
        write_frame(&mut stream, &ack.to_wire()).expect("ack");
        stream.flush().ok();
        while read_frame(&mut stream).is_ok() {}
    });

    let settings = TestSettings::single_stream();
    let qsl = MemoryQsl::new("loop-qsl", 4, 4);
    let config = RemoteSutConfig::default()
        .with_heartbeat(Duration::from_millis(10), Duration::from_millis(80))
        .with_response_timeout(Duration::from_secs(30));
    let hello = hello_for(&settings, &qsl, &config);
    let client = RemoteSut::connect(addr, hello, config).expect("handshake");

    let query = Query {
        id: 1,
        samples: vec![mlperf_loadgen::QuerySample { id: 10, index: 0 }],
        scheduled_at: Nanos::ZERO,
        tenant: 0,
    };
    let started = std::time::Instant::now();
    let outcome = client.issue_outcome(&query);
    assert_eq!(outcome, IssueOutcome::Errored, "heartbeat loss => errored");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "heartbeat loss must beat the 30s response timeout"
    );
    assert!(!client.is_connected());
    client.shutdown();
    zombie.join().unwrap();
}

#[test]
fn heartbeat_loss_run_ends_error_fraction_exceeded_not_a_hang() {
    // Deterministic heartbeat loss: a one-way recv partition after the
    // handshake's HelloAck. The server keeps answering — the client's
    // chaos layer discards every inbound frame, so no completions and no
    // heartbeat acks arrive. The heartbeat monitor must fail the run as
    // *errored* (the socket is provably alive, the peer just isn't
    // answering) well inside the 5 s response timeout.
    let settings = TestSettings::single_stream()
        .with_min_query_count(5)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("loop-qsl", 8, 8);
    let config = RemoteSutConfig::default()
        .with_heartbeat(Duration::from_millis(10), Duration::from_millis(60))
        .with_response_timeout(Duration::from_secs(5))
        .with_chaos(WireChaosPlan::new(0xBEA7).with_partition_recv_after(1));
    let hello = hello_for(&settings, &qsl, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "muted",
        Nanos::from_micros(50),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");

    let started = std::time::Instant::now();
    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run must not hang");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "heartbeat loss must resolve the run well before the response timeout"
    );
    assert!(!out.result.is_valid());
    assert!(
        out.result
            .validity
            .iter()
            .any(|i| matches!(i, ValidityIssue::ErrorFractionExceeded { .. })),
        "heartbeat loss must surface as error fraction, got {:?}",
        out.result.validity
    );
    server.shutdown();
}

#[test]
fn daemon_shutdown_joins_threads_and_releases_the_port() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(5)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("loop-qsl", 8, 8);
    let config = RemoteSutConfig::default();
    let hello = hello_for(&settings, &qsl, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "short-lived",
        Nanos::from_micros(5),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");
    let addr = server.addr();

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run");
    assert!(out.result.is_valid(), "{:?}", out.result.validity);
    // `run_realtime` consumed (and dropped) the client, so its Drain
    // already closed the connection; shutdown must reap every thread and
    // the listener so the exact same port binds again.
    server.shutdown();

    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "second-tenant",
        Nanos::from_micros(5),
    )));
    let second = serve_on(&addr.to_string(), service, ServeConfig::default())
        .expect("the port must be rebindable immediately after shutdown");
    assert_eq!(second.addr(), addr);
    second.shutdown();
}

#[test]
fn silently_dropped_queries_vanish_and_stay_outstanding() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(5)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("loop-qsl", 8, 8);
    let config = RemoteSutConfig::default().with_response_timeout(Duration::from_millis(100));
    let hello = hello_for(&settings, &qsl, &config);
    // Drop everything: every query vanishes, none completes.
    let service = Arc::new(SilentDropService::new(
        SleepSut::new("cheater", Duration::ZERO),
        1.0,
        13,
    ));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run must not hang");
    assert!(!out.result.is_valid());
    assert!(
        out.result
            .validity
            .iter()
            .any(|i| matches!(i, ValidityIssue::IncompleteQueries { .. })),
        "silent drops must surface as incomplete queries, got {:?}",
        out.result.validity
    );
    server.shutdown();
}

/// A client pinned to protocol v2 still completes a VALID run against a
/// v3 daemon: the handshake negotiates down, and none of the v3 traffic
/// (traced issues, clock probes, event shipping) appears on the wire.
#[test]
fn v2_client_interoperates_with_a_v3_daemon() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(10)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("loop-qsl", 8, 8);
    let config = RemoteSutConfig::default().with_protocol(2);
    let hello = hello_for(&settings, &qsl, &config);
    assert_eq!(hello.version, 2);
    let sink = Arc::new(RingBufferSink::unbounded());
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "legacy-peer",
        Nanos::from_micros(10),
    )));
    let (client, server) = loopback_instrumented(
        service,
        ServeConfig::default(),
        hello,
        config,
        Some(sink.clone()),
        None,
    )
    .expect("v2 handshake must be accepted");
    assert_eq!(client.negotiated_version(), 2);

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run");
    assert!(out.result.is_valid(), "{:?}", out.result.validity);

    // An untraced link produces wire events but never spans or syncs.
    for record in sink.snapshot() {
        assert!(
            !matches!(
                record.event,
                mlperf_trace::TraceEvent::SpanEvent { .. }
                    | mlperf_trace::TraceEvent::ClockSync { .. }
            ),
            "v2 link leaked v3 telemetry: {:?}",
            record.event
        );
    }
    server.shutdown();
}

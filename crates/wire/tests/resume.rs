//! Session-resume integration tests: a mid-run disconnect rescued by
//! reconnect + journal replay, and the same disconnect left unrescued.
//!
//! The contract under test: a resumed run finishes VALID with every query
//! resolved exactly once (the server's completion journal dedups replayed
//! issues), while the identical fault without a resume policy leaves the
//! in-flight window unresolved and the run INVALID with
//! `IncompleteQueries`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::{MemoryQsl, QuerySampleLibrary};
use mlperf_loadgen::realtime::{run_realtime, run_realtime_traced};
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_loadgen::validate::ValidityIssue;
use mlperf_trace::metrics::MetricsRegistry;
use mlperf_trace::{RingBufferSink, TraceEvent};
use mlperf_wire::{
    loopback_instrumented, RemoteSut, RemoteSutConfig, ResumePolicy, ServeConfig, SimHost,
    WireChaosPlan,
};

fn settings() -> TestSettings {
    TestSettings::single_stream()
        .with_min_query_count(10)
        .with_min_duration(Nanos::from_micros(1))
}

/// Client chaos: sever the socket right after the second sent frame
/// (frame 1 = Hello, frame 2 = the first issue), one-shot — the
/// reconnected link is healthy.
fn disconnect_plan() -> WireChaosPlan {
    WireChaosPlan::new(0xD15C).with_disconnect_after_send(2)
}

#[test]
fn disconnect_with_resume_finishes_valid_without_double_counting() {
    let settings = settings();
    let mut qsl = MemoryQsl::new("resume-qsl", 8, 8);
    let config = RemoteSutConfig::default()
        .with_response_timeout(Duration::from_secs(5))
        .with_resume(ResumePolicy {
            max_attempts: 5,
            // Long enough that the server has resolved the in-flight
            // query before the redial, so the replay is answered from the
            // journal, not re-run.
            backoff: Duration::from_millis(40),
        })
        .with_chaos(disconnect_plan());
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "resumable",
        Nanos::from_micros(100),
    )));

    let sink = Arc::new(RingBufferSink::unbounded());
    let metrics = Arc::new(MetricsRegistry::new());
    let (client, server) = loopback_instrumented(
        service,
        ServeConfig::default().with_sink(sink.clone()),
        hello,
        config,
        Some(sink.clone()),
        Some(metrics.clone()),
    )
    .expect("loopback");

    let run_sink = RingBufferSink::unbounded();
    let out = run_realtime_traced(&settings, &mut qsl, Arc::new(client), &run_sink)
        .expect("run must not hang");
    assert!(
        out.result.is_valid(),
        "a resumed disconnect must be rescued: {:?}",
        out.result.validity
    );

    // Exactly one resume happened, and it replayed the in-flight window.
    let resumes = metrics
        .snapshot()
        .counters
        .get("wire_resumes")
        .copied()
        .unwrap_or(0);
    assert_eq!(resumes, 1, "expected exactly one resume");
    let wire_events = sink.snapshot();
    assert!(
        wire_events.iter().any(|r| matches!(
            &r.event,
            TraceEvent::WireEvent { endpoint, kind, .. }
                if endpoint == "client" && kind == "resume"
        )),
        "the client must record the resume"
    );
    assert!(
        wire_events.iter().any(|r| matches!(
            &r.event,
            TraceEvent::WireEvent { endpoint, kind, .. }
                if endpoint == "server" && kind == "replay"
        )),
        "the replayed issue must be answered from the server journal"
    );

    // Every query resolved exactly once: journal replay must never
    // double-count.
    let mut resolutions: HashMap<u64, usize> = HashMap::new();
    for record in run_sink.snapshot() {
        match record.event {
            TraceEvent::QueryCompleted { query_id, .. }
            | TraceEvent::QueryErrored { query_id, .. } => {
                *resolutions.entry(query_id).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    assert!(resolutions.len() >= 10);
    for (id, count) in resolutions {
        assert_eq!(count, 1, "query {id} resolved {count} times");
    }
    server.shutdown();
}

#[test]
fn same_disconnect_without_resume_ends_incomplete_queries() {
    let settings = settings();
    let mut qsl = MemoryQsl::new("resume-qsl", 8, 8);
    let config = RemoteSutConfig::default()
        .with_response_timeout(Duration::from_secs(5))
        .with_chaos(disconnect_plan());
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "unrescued",
        Nanos::from_micros(100),
    )));
    let (client, server) =
        loopback_instrumented(service, ServeConfig::default(), hello, config, None, None)
            .expect("loopback");

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run must not hang");
    assert!(!out.result.is_valid());
    assert!(
        out.result
            .validity
            .iter()
            .any(|i| matches!(i, ValidityIssue::IncompleteQueries { .. })),
        "an unresumed disconnect leaves queries outstanding, got {:?}",
        out.result.validity
    );
    server.shutdown();
}

//! Session-resume integration tests: a mid-run disconnect rescued by
//! reconnect + journal replay, and the same disconnect left unrescued.
//!
//! The contract under test: a resumed run finishes VALID with every query
//! resolved exactly once (the server's completion journal dedups replayed
//! issues), while the identical fault without a resume policy leaves the
//! in-flight window unresolved and the run INVALID with
//! `IncompleteQueries`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use mlperf_audit::tests::completeness_report;
use mlperf_audit::AuditOutcome;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::{MemoryQsl, QuerySampleLibrary};
use mlperf_loadgen::realtime::{run_realtime, run_realtime_traced, run_realtime_traced_at};
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_loadgen::validate::ValidityIssue;
use mlperf_trace::metrics::MetricsRegistry;
use mlperf_trace::{RingBufferSink, TraceEvent};
use mlperf_wire::{
    loopback_instrumented, RemoteSut, RemoteSutConfig, ResumePolicy, ServeConfig, SimHost,
    WireChaosPlan,
};

fn settings() -> TestSettings {
    TestSettings::single_stream()
        .with_min_query_count(10)
        .with_min_duration(Nanos::from_micros(1))
}

/// Client chaos: sever the socket right after the third sent frame
/// (frame 1 = Hello, frame 2 = the clock probe, frame 3 = the first
/// issue), one-shot — the reconnected link is healthy.
fn disconnect_plan() -> WireChaosPlan {
    WireChaosPlan::new(0xD15C).with_disconnect_after_send(3)
}

#[test]
fn disconnect_with_resume_finishes_valid_without_double_counting() {
    let settings = settings();
    let mut qsl = MemoryQsl::new("resume-qsl", 8, 8);
    let config = RemoteSutConfig::default()
        .with_response_timeout(Duration::from_secs(5))
        .with_resume(ResumePolicy {
            max_attempts: 5,
            // Long enough that the server has resolved the in-flight
            // query before the redial, so the replay is answered from the
            // journal, not re-run.
            backoff: Duration::from_millis(40),
        })
        .with_chaos(disconnect_plan());
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "resumable",
        Nanos::from_micros(100),
    )));

    let sink = Arc::new(RingBufferSink::unbounded());
    let metrics = Arc::new(MetricsRegistry::new());
    let (client, server) = loopback_instrumented(
        service,
        ServeConfig::default().with_sink(sink.clone()),
        hello,
        config,
        Some(sink.clone()),
        Some(metrics.clone()),
    )
    .expect("loopback");

    let run_sink = RingBufferSink::unbounded();
    let out = run_realtime_traced(&settings, &mut qsl, Arc::new(client), &run_sink)
        .expect("run must not hang");
    assert!(
        out.result.is_valid(),
        "a resumed disconnect must be rescued: {:?}",
        out.result.validity
    );

    // Exactly one resume happened, and it replayed the in-flight window.
    let resumes = metrics
        .snapshot()
        .counters
        .get("wire_resumes")
        .copied()
        .unwrap_or(0);
    assert_eq!(resumes, 1, "expected exactly one resume");
    let wire_events = sink.snapshot();
    assert!(
        wire_events.iter().any(|r| matches!(
            &r.event,
            TraceEvent::WireEvent { endpoint, kind, .. }
                if endpoint == "client" && kind == "resume"
        )),
        "the client must record the resume"
    );
    assert!(
        wire_events.iter().any(|r| matches!(
            &r.event,
            TraceEvent::WireEvent { endpoint, kind, .. }
                if endpoint == "server" && kind == "replay"
        )),
        "the replayed issue must be answered from the server journal"
    );

    // Every query resolved exactly once: journal replay must never
    // double-count.
    let mut resolutions: HashMap<u64, usize> = HashMap::new();
    for record in run_sink.snapshot() {
        match record.event {
            TraceEvent::QueryCompleted { query_id, .. }
            | TraceEvent::QueryErrored { query_id, .. } => {
                *resolutions.entry(query_id).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    assert!(resolutions.len() >= 10);
    for (id, count) in resolutions {
        assert_eq!(count, 1, "query {id} resolved {count} times");
    }
    server.shutdown();
}

/// Tentpole contract under chaos: a resumed session replays its in-flight
/// window under the *same* trace ids, so the merged (client + shipped
/// server) detail log stays exactly-once per trace and passes the TEST06
/// completeness audit.
#[test]
fn resume_replays_under_the_same_trace_ids_exactly_once() {
    let settings = settings();
    let mut qsl = MemoryQsl::new("resume-qsl", 8, 8);
    let config = RemoteSutConfig::default()
        .with_response_timeout(Duration::from_secs(5))
        .with_resume(ResumePolicy {
            max_attempts: 5,
            backoff: Duration::from_millis(40),
        })
        .with_chaos(disconnect_plan());
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "traced-resume",
        Nanos::from_micros(100),
    )));

    // ONE sink for everything: run events, client wire events and spans,
    // and the server spans shipped back at drain.
    let merged = Arc::new(RingBufferSink::unbounded());
    let metrics = Arc::new(MetricsRegistry::new());
    let (client, server) = loopback_instrumented(
        service,
        ServeConfig::default(),
        hello,
        config,
        Some(merged.clone()),
        Some(metrics.clone()),
    )
    .expect("loopback");

    let origin = client.clock_origin();
    let out = run_realtime_traced_at(
        &settings,
        &mut qsl,
        Arc::new(client),
        merged.as_ref(),
        origin,
    )
    .expect("run must not hang");
    assert!(out.result.is_valid(), "{:?}", out.result.validity);
    server.shutdown();

    let records = merged.snapshot();
    let resumes = metrics
        .snapshot()
        .counters
        .get("wire_resumes")
        .copied()
        .unwrap_or(0);
    assert_eq!(resumes, 1, "the chaos plan must force exactly one resume");

    // The merged log passes the completeness audit: every issued query
    // resolved exactly once despite the replay.
    let report = completeness_report(&records);
    assert_eq!(
        report.outcome,
        AuditOutcome::Pass,
        "TEST06 on the merged log: {report:?}"
    );

    // Per trace id, each phase appears exactly once — the replayed issue
    // reused its original id and the journal answered without re-running.
    let mut phases: HashMap<(u64, String), usize> = HashMap::new();
    for record in &records {
        if let TraceEvent::SpanEvent {
            trace_id, phase, ..
        } = &record.event
        {
            *phases.entry((*trace_id, phase.clone())).or_insert(0) += 1;
        }
    }
    assert!(!phases.is_empty(), "the merged log must contain spans");
    for ((trace_id, phase), count) in &phases {
        assert_eq!(
            *count, 1,
            "trace {trace_id:#x} phase {phase} appeared {count} times"
        );
    }
    // And at least one trace spans both hosts end to end.
    let complete_traces = phases
        .keys()
        .filter(|(id, phase)| {
            phase == "issue" && {
                phases.contains_key(&(*id, "compute".to_string()))
                    && phases.contains_key(&(*id, "complete".to_string()))
            }
        })
        .count();
    assert!(
        complete_traces > 0,
        "no trace covers client issue -> server compute -> client complete"
    );
}

#[test]
fn same_disconnect_without_resume_ends_incomplete_queries() {
    let settings = settings();
    let mut qsl = MemoryQsl::new("resume-qsl", 8, 8);
    let config = RemoteSutConfig::default()
        .with_response_timeout(Duration::from_secs(5))
        .with_chaos(disconnect_plan());
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "unrescued",
        Nanos::from_micros(100),
    )));
    let (client, server) =
        loopback_instrumented(service, ServeConfig::default(), hello, config, None, None)
            .expect("loopback");

    let out = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("run must not hang");
    assert!(!out.result.is_valid());
    assert!(
        out.result
            .validity
            .iter()
            .any(|i| matches!(i, ValidityIssue::IncompleteQueries { .. })),
        "an unresumed disconnect leaves queries outstanding, got {:?}",
        out.result.validity
    );
    server.shutdown();
}

//! Clock-offset estimation over a live loopback link.
//!
//! Unit tests in `wire::clock` cover the arithmetic; these tests cover
//! the protocol: the handshake probe yields an estimate immediately,
//! heartbeat re-probes only ever tighten the error bound, and an
//! asymmetric-delay path (injected by the wire chaos layer) stays within
//! the bound the estimator reports.

use std::sync::Arc;
use std::time::Duration;

use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_wire::{loopback, RemoteSut, RemoteSutConfig, ServeConfig, SimHost, WireChaosPlan};

fn service() -> Arc<SimHost<FixedLatencySut>> {
    Arc::new(SimHost::new(FixedLatencySut::new(
        "clock-sut",
        Nanos::from_micros(50),
    )))
}

fn settings() -> TestSettings {
    TestSettings::single_stream()
        .with_min_query_count(1)
        .with_min_duration(Nanos::from_micros(1))
}

/// Waits (bounded) until at least one probe has completed.
fn wait_for_estimate(client: &RemoteSut) -> (i64, u64) {
    for _ in 0..200 {
        if let (Some(offset), Some(bound)) =
            (client.clock_offset_ns(), client.clock_error_bound_ns())
        {
            return (offset, bound);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("no clock estimate after 1 s of probing");
}

#[test]
fn handshake_probe_yields_a_tight_loopback_estimate() {
    let config = RemoteSutConfig::default();
    let hello = RemoteSut::hello_for(&settings(), 8, &config);
    let (client, server) =
        loopback(service(), ServeConfig::default(), hello, config).expect("loopback");
    let (offset, bound) = wait_for_estimate(&client);
    // Loopback RTT is far under 100 ms even on a loaded CI box.
    assert!(bound < 100_000_000, "loopback bound {bound} ns is absurd");
    // The server's clock started first, so its offset relative to the
    // client's (later) origin is positive, up to the error bound.
    assert!(
        offset >= -(bound as i64),
        "offset {offset} ns below -bound {bound} ns"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn heartbeat_reestimation_never_widens_the_bound() {
    let config = RemoteSutConfig::default()
        .with_heartbeat(Duration::from_millis(10), Duration::from_secs(2));
    let hello = RemoteSut::hello_for(&settings(), 8, &config);
    let (client, server) =
        loopback(service(), ServeConfig::default(), hello, config).expect("loopback");
    wait_for_estimate(&client);
    let mut bounds = Vec::new();
    for _ in 0..20 {
        if let Some(bound) = client.clock_error_bound_ns() {
            bounds.push(bound);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(bounds.len() >= 2, "expected repeated estimates");
    for pair in bounds.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "error bound widened across heartbeats: {} -> {} ns",
            pair[0],
            pair[1]
        );
    }
    drop(client);
    server.shutdown();
}

#[test]
fn asymmetric_delay_stays_within_the_reported_bound() {
    // Reference client: clean path, tight estimate of the server clock.
    let config_a = RemoteSutConfig::default();
    let hello_a = RemoteSut::hello_for(&settings(), 8, &config_a);
    let (client_a, server) =
        loopback(service(), ServeConfig::default(), hello_a, config_a).expect("loopback");
    let (offset_a, bound_a) = wait_for_estimate(&client_a);

    // Probe client: every inbound frame (including probe acks) is delayed
    // by the chaos layer, so its path is strongly asymmetric.
    let delay = Duration::from_millis(5);
    let config_b =
        RemoteSutConfig::default().with_chaos(WireChaosPlan::new(0xC10C).with_delay_recv(delay));
    let mut hello_b = RemoteSut::hello_for(&settings(), 8, &config_b);
    hello_b.session ^= 1; // a distinct session: this is a second run
    let client_b = RemoteSut::connect(server.addr(), hello_b, config_b).expect("delayed connect");
    let (offset_b, bound_b) = wait_for_estimate(&client_b);

    // The injected delay rides entirely on the return path, so the
    // estimator must report a bound at least half of it.
    assert!(
        bound_b >= delay.as_nanos() as u64 / 2,
        "bound {bound_b} ns ignores the {delay:?} injected delay"
    );

    // Both clients estimate the same server clock against their own
    // origins, which differ by a measurable amount; the two estimates
    // must agree within their combined error bounds (plus scheduler
    // slack).
    let origin_delta = client_b
        .clock_origin()
        .duration_since(client_a.clock_origin())
        .as_nanos() as i64;
    let expected_b = offset_a + origin_delta;
    let error = (offset_b - expected_b).unsigned_abs();
    let budget = bound_a + bound_b + 20_000_000; // 20 ms slack for CI jitter
    assert!(
        error <= budget,
        "asymmetric-path estimate off by {error} ns, budget {budget} ns"
    );

    drop(client_b);
    drop(client_a);
    server.shutdown();
}

//! Crash-resume integration tests: a journaled wall-clock run killed at a
//! checkpoint boundary, then rescued by a fresh client process — against
//! the surviving daemon (client crash) and against a restarted daemon
//! re-adopting its session journal from disk (daemon crash, both crash).
//!
//! The contract under test: every rescued run finishes VALID, its logical
//! record stream (ids, schedule, sample counts, error flags) is identical
//! to the uninterrupted baseline's, and its detail log passes the TEST06
//! completeness audit — queries outstanding at the kill are re-issued
//! under their original ids and answered exactly once (from the daemon's
//! completion journal where it survived, by re-execution where it did
//! not).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mlperf_audit::tests::completeness_report;
use mlperf_audit::AuditOutcome;
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::journal::{load_run_journal, JournalConfig};
use mlperf_loadgen::qsl::{MemoryQsl, QuerySampleLibrary};
use mlperf_loadgen::realtime::run_realtime_journaled;
use mlperf_loadgen::record::QueryRecord;
use mlperf_loadgen::sut::{FixedLatencySut, RealtimeSut};
use mlperf_loadgen::time::Nanos;
use mlperf_loadgen::JournaledRun;
use mlperf_trace::metrics::MetricsRegistry;
use mlperf_trace::{NoopSink, RingBufferSink};
use mlperf_wire::{serve_on, RemoteSut, RemoteSutConfig, ServeConfig, ServerHandle, SimHost};

fn settings() -> TestSettings {
    TestSettings::server(2_000.0, Nanos::from_millis(50))
        .with_min_query_count(24)
        .with_min_duration(Nanos::from_millis(1))
}

fn service() -> Arc<SimHost<FixedLatencySut>> {
    Arc::new(SimHost::new(FixedLatencySut::new(
        "crashable",
        Nanos::from_micros(100),
    )))
}

/// The fields a crash + resume must reproduce exactly; latencies
/// legitimately differ between executions.
fn logical(records: &[QueryRecord]) -> Vec<(u64, u64, usize, bool)> {
    records
        .iter()
        .map(|r| (r.id, r.scheduled_at.as_nanos(), r.sample_count, r.error))
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlpj-wire-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn connect(server: &ServerHandle, config: RemoteSutConfig) -> Arc<RemoteSut> {
    let settings = settings();
    let hello = RemoteSut::hello_for(&settings, 16, &config);
    Arc::new(RemoteSut::connect(server.addr(), hello, config).expect("connect"))
}

/// An uninterrupted journaled run; its records are the baseline every
/// rescued cell must match.
fn baseline(server: &ServerHandle, journal: &Path) -> Vec<QueryRecord> {
    let settings = settings();
    let mut qsl = MemoryQsl::new("crash-qsl", 16, 16);
    assert_eq!(qsl.total_sample_count(), 16);
    let client = connect(server, RemoteSutConfig::default());
    let sut: Arc<dyn RealtimeSut> = client.clone();
    let cfg = JournalConfig::new(journal).with_checkpoint_every(8);
    let out = run_realtime_journaled(&settings, &mut qsl, sut, &NoopSink, &cfg, false)
        .expect("baseline run")
        .finished()
        .expect("no halt armed");
    assert!(out.result.is_valid(), "{:?}", out.result.validity);
    out.records
}

/// Halts a journaled run at checkpoint `halt_at`, then severs the client
/// without drain — the in-process stand-in for `SIGKILL`ing the client.
fn crash_client_at(server: &ServerHandle, journal: &Path, halt_at: u64) {
    let settings = settings();
    let mut qsl = MemoryQsl::new("crash-qsl", 16, 16);
    let client = connect(server, RemoteSutConfig::default());
    let sut: Arc<dyn RealtimeSut> = client.clone();
    let cfg = JournalConfig::new(journal)
        .with_checkpoint_every(8)
        .with_halt_after(halt_at)
        .with_epoch_source(client.epoch_source());
    let halted = run_realtime_journaled(&settings, &mut qsl, sut, &NoopSink, &cfg, false)
        .expect("halted run");
    match halted {
        JournaledRun::Halted { checkpoint } => assert_eq!(checkpoint, halt_at),
        JournaledRun::Finished(_) => panic!("halt_after({halt_at}) did not fire"),
    }
    client.abandon();
}

/// Resumes the journaled run against `server`, asserting validity and
/// TEST06 completeness; returns the rescued records.
fn resume(server: &ServerHandle, journal: &Path) -> Vec<QueryRecord> {
    let settings = settings();
    let mut qsl = MemoryQsl::new("crash-qsl", 16, 16);
    let loaded = load_run_journal(journal).expect("load journal");
    let epoch = loaded.last.as_ref().map_or(0, |cp| cp.epoch);
    let client = connect(
        server,
        RemoteSutConfig::default().with_initial_epoch(epoch + 1),
    );
    let sut: Arc<dyn RealtimeSut> = client.clone();
    let cfg = JournalConfig::new(journal)
        .with_checkpoint_every(8)
        .with_epoch_source(client.epoch_source());
    let sink = RingBufferSink::unbounded();
    let out = run_realtime_journaled(&settings, &mut qsl, sut, &sink, &cfg, true)
        .expect("resumed run")
        .finished()
        .expect("resume runs to completion");
    assert!(out.result.is_valid(), "{:?}", out.result.validity);
    let report = completeness_report(&sink.snapshot());
    assert_eq!(
        report.outcome,
        AuditOutcome::Pass,
        "TEST06 on the resumed log: {report:?}"
    );
    out.records
}

/// Client killed at every checkpoint boundary; the daemon survives and its
/// in-memory session answers the replayed window.
#[test]
fn client_crash_at_every_checkpoint_matches_uninterrupted() {
    let dir = tmp_dir("client");
    let server = serve_on(
        "127.0.0.1:0",
        service(),
        ServeConfig::default().with_journal_dir(dir.join("daemon")),
    )
    .expect("serve");
    let expected = logical(&baseline(&server, &dir.join("baseline.mlpj")));
    // 24 queries / checkpoint every 8 = checkpoints seq 0..=2.
    for halt_at in 0..3u64 {
        let journal = dir.join(format!("halt{halt_at}.mlpj"));
        crash_client_at(&server, &journal, halt_at);
        let rescued = logical(&resume(&server, &journal));
        assert_eq!(rescued, expected, "halt_at={halt_at}");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Daemon killed too: a freshly started daemon re-adopts the session's
/// completion journal from disk, so pre-crash completions replay without
/// re-running and the rescued run still matches the baseline.
#[test]
fn daemon_restart_resumes_the_session_from_disk() {
    let dir = tmp_dir("daemon");
    let daemon_dir = dir.join("daemon");
    let first = serve_on(
        "127.0.0.1:0",
        service(),
        ServeConfig::default().with_journal_dir(&daemon_dir),
    )
    .expect("serve");
    let expected = logical(&baseline(&first, &dir.join("baseline.mlpj")));
    let journal = dir.join("crash.mlpj");
    crash_client_at(&first, &journal, 1);
    // Both processes die: the client severed without drain above, and the
    // daemon goes down hard — kill severs the sockets, shutdown reaps the
    // threads so the process can host its successor.
    first.kill();
    first.shutdown();

    let metrics = Arc::new(MetricsRegistry::new());
    let second = serve_on(
        "127.0.0.1:0",
        service(),
        ServeConfig::default()
            .with_journal_dir(&daemon_dir)
            .with_metrics(metrics.clone()),
    )
    .expect("serve again");
    let rescued = logical(&resume(&second, &journal));
    assert_eq!(rescued, expected);
    // The restarted daemon answered at least one replayed query straight
    // from the recovered journal instead of re-running it.
    let replays = metrics
        .snapshot()
        .counters
        .get("wire_replays")
        .copied()
        .unwrap_or(0);
    assert!(
        replays >= 1,
        "expected journal replays from the recovered session, got {replays}"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

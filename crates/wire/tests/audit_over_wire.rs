//! TEST06 query-completeness auditing across the wire.
//!
//! The network gives a SUT a brand-new way to cheat — swallow a frame and
//! say nothing — and a brand-new way to fail honestly — die mid-run.
//! These tests pin down how each shows up in the detail log: silent drops
//! as issued-but-never-resolved queries (completeness FAIL), disconnects
//! as explicit errored completions (completeness PASS, validity INVALID).

use std::sync::Arc;
use std::time::Duration;

use mlperf_audit::tests::{completeness_check_realtime, completeness_report, AuditOutcome};
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::{MemoryQsl, QuerySampleLibrary};
use mlperf_loadgen::realtime::run_realtime_traced;
use mlperf_loadgen::sut::{FixedLatencySut, SleepSut};
use mlperf_loadgen::time::Nanos;
use mlperf_trace::{RingBufferSink, TraceEvent};
use mlperf_wire::{loopback, RemoteSut, RemoteSutConfig, ServeConfig, SilentDropService, SimHost};

#[test]
fn honest_wire_sut_passes_completeness() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(15)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("audit-qsl", 8, 8);
    let config = RemoteSutConfig::default();
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "honest-remote",
        Nanos::from_micros(10),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");

    let report = completeness_check_realtime(&settings, &mut qsl, Arc::new(client)).unwrap();
    assert!(report.passed(), "{report}");
    server.shutdown();
}

#[test]
fn silently_dropping_server_fails_completeness() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(12)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("audit-qsl", 8, 8);
    // A dropped frame only surfaces after the response timeout; keep it
    // short so the audit run stays fast.
    let config = RemoteSutConfig::default().with_response_timeout(Duration::from_millis(80));
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SilentDropService::new(
        SleepSut::new("cheating-remote", Duration::ZERO),
        0.3,
        17,
    ));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");

    let report = completeness_check_realtime(&settings, &mut qsl, Arc::new(client)).unwrap();
    match &report.outcome {
        AuditOutcome::Fail(reason) => {
            assert!(
                reason.contains("silently vanished"),
                "unexpected failure reason: {reason}"
            );
        }
        AuditOutcome::Pass => panic!("a frame-dropping server must fail TEST06: {report}"),
    }
    server.shutdown();
}

#[test]
fn mid_run_disconnect_lands_in_the_detail_log_as_errored_queries() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(100)
        .with_min_duration(Nanos::from_millis(30));
    let mut qsl = MemoryQsl::new("audit-qsl", 8, 8);
    let config = RemoteSutConfig::default().with_response_timeout(Duration::from_millis(500));
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "doomed-remote",
        Nanos::from_micros(200),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");
    let server = Arc::new(server);

    let killer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(8));
            server.kill();
        })
    };

    let sink = RingBufferSink::unbounded();
    let out = run_realtime_traced(&settings, &mut qsl, Arc::new(client), &sink).expect("run");
    killer.join().unwrap();

    let records = sink.snapshot();
    let errored = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::QueryErrored { .. }))
        .count();
    assert!(
        errored > 0,
        "disconnected queries must land as explicit errored completions"
    );
    // A disconnect is an *honest* failure: every query resolves (as an
    // error), so completeness passes while the run verdict is INVALID.
    let report = completeness_report(&records);
    assert!(report.passed(), "{report}");
    assert!(!out.result.is_valid());
}

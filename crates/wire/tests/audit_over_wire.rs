//! TEST06 query-completeness auditing across the wire.
//!
//! The network gives a SUT a brand-new way to cheat — swallow a frame and
//! say nothing — and a brand-new way to fail honestly — die mid-run.
//! These tests pin down how each shows up in the detail log: silent drops
//! and unresumed disconnects as issued-but-never-resolved queries
//! (completeness FAIL), a disconnect rescued by reconnect-and-resume as a
//! fully resolved, VALID run that still passes the audit — the server's
//! journal replay must never double-count a query.

use std::sync::Arc;
use std::time::Duration;

use mlperf_audit::tests::{completeness_check_realtime, completeness_report, AuditOutcome};
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::{MemoryQsl, QuerySampleLibrary};
use mlperf_loadgen::realtime::run_realtime_traced;
use mlperf_loadgen::sut::{FixedLatencySut, SleepSut};
use mlperf_loadgen::time::Nanos;
use mlperf_trace::RingBufferSink;
use mlperf_wire::{
    loopback, RemoteSut, RemoteSutConfig, ResumePolicy, ServeConfig, SilentDropService, SimHost,
    WireChaosPlan,
};

#[test]
fn honest_wire_sut_passes_completeness() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(15)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("audit-qsl", 8, 8);
    let config = RemoteSutConfig::default();
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "honest-remote",
        Nanos::from_micros(10),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");

    let report = completeness_check_realtime(&settings, &mut qsl, Arc::new(client)).unwrap();
    assert!(report.passed(), "{report}");
    server.shutdown();
}

#[test]
fn silently_dropping_server_fails_completeness() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(12)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("audit-qsl", 8, 8);
    // A dropped frame only surfaces after the response timeout; keep it
    // short so the audit run stays fast.
    let config = RemoteSutConfig::default().with_response_timeout(Duration::from_millis(80));
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SilentDropService::new(
        SleepSut::new("cheating-remote", Duration::ZERO),
        0.3,
        17,
    ));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");

    let report = completeness_check_realtime(&settings, &mut qsl, Arc::new(client)).unwrap();
    match &report.outcome {
        AuditOutcome::Fail(reason) => {
            assert!(
                reason.contains("silently vanished"),
                "unexpected failure reason: {reason}"
            );
        }
        AuditOutcome::Pass => panic!("a frame-dropping server must fail TEST06: {report}"),
    }
    server.shutdown();
}

#[test]
fn mid_run_disconnect_without_resume_fails_completeness() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(100)
        .with_min_duration(Nanos::from_millis(30));
    let mut qsl = MemoryQsl::new("audit-qsl", 8, 8);
    let config = RemoteSutConfig::default().with_response_timeout(Duration::from_millis(500));
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "doomed-remote",
        Nanos::from_micros(200),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");
    let server = Arc::new(server);

    let killer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(8));
            server.kill();
        })
    };

    let sink = RingBufferSink::unbounded();
    let out = run_realtime_traced(&settings, &mut qsl, Arc::new(client), &sink).expect("run");
    killer.join().unwrap();

    // The in-flight completions' fate is genuinely unknown: without a
    // resume the queries stay outstanding, so the run is INVALID *and*
    // the completeness audit refuses to sign off on it. Claiming
    // "errored" here would fabricate resolutions the SUT never produced.
    let records = sink.snapshot();
    let report = completeness_report(&records);
    match &report.outcome {
        AuditOutcome::Fail(reason) => {
            assert!(
                reason.contains("silently vanished"),
                "unexpected failure reason: {reason}"
            );
        }
        AuditOutcome::Pass => {
            panic!("an unresumed disconnect must leave unresolved queries: {report}")
        }
    }
    assert!(!out.result.is_valid());
}

#[test]
fn disconnect_rescued_by_resume_passes_completeness() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(12)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("audit-qsl", 8, 8);
    // The chaos layer severs the socket right after the first issue frame
    // (frame 1 is the Hello); the resume policy redials and replays the
    // in-flight window, and the server's journal answers anything that
    // resolved during the outage — exactly once.
    let config = RemoteSutConfig::default()
        .with_response_timeout(Duration::from_secs(5))
        .with_resume(ResumePolicy {
            max_attempts: 5,
            backoff: Duration::from_millis(25),
        })
        .with_chaos(WireChaosPlan::new(0x5E55).with_disconnect_after_send(2));
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "resilient-remote",
        Nanos::from_micros(100),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");

    let report = completeness_check_realtime(&settings, &mut qsl, Arc::new(client)).unwrap();
    assert!(
        report.passed(),
        "a resumed run resolves every query and must pass TEST06: {report}"
    );
    server.shutdown();
}

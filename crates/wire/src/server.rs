//! The daemon-side endpoint: [`serve`] and [`ServerHandle`].
//!
//! `serve` exports any [`WireService`] over a TCP listener. Each accepted
//! connection performs the versioned handshake, then runs a worker pool
//! (one worker per connection by default) pulling issue frames off the
//! socket, resolving them through the service, and writing completion
//! frames back. Heartbeats are answered inline; `Drain` waits for the
//! connection's outstanding queries to resolve, then answers `Goodbye`
//! and closes.
//!
//! Connections belong to **sessions** (the `session` id in the `Hello`).
//! A session outlives its connections: it keeps a journal of every
//! resolved query and the set still in progress, so a client that loses
//! its link mid-run can reconnect at a bumped epoch and replay its
//! in-flight window. Replayed queries that already resolved are answered
//! straight from the journal — served exactly once, never re-run and
//! never double-counted. Epoch 0 always starts the session (and the
//! service) fresh.
//!
//! [`ServerHandle::kill`] exists for resilience testing: it severs every
//! live connection abruptly — the moral equivalent of yanking the
//! machine's power cord mid-run — so clients exercise their disconnect
//! path. [`ServerHandle::shutdown`] is the opposite: it stops accepting,
//! severs what remains, and joins every accept, connection, and worker
//! thread, so the port is immediately rebindable.

use std::collections::{HashMap, HashSet};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mlperf_loadgen::query::{Query, SampleCompletion};
use mlperf_trace::event::{RingBufferSink, TraceEvent, TraceSink};
use mlperf_trace::json::ToJson;
use mlperf_trace::metrics::MetricsRegistry;
use mlperf_trace::JournalWriter;

use crate::message::{Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::service::WireService;
use crate::stats::DaemonStats;
use crate::transport::{ChaosSession, TcpTransport, Transport, WireChaosPlan};

/// Server-side spans retained per session for shipping at drain. Bounded:
/// a pathological run keeps the freshest tail, which is what a post-mortem
/// wants anyway.
const SESSION_EVENT_CAPACITY: usize = 65_536;

/// `TraceRecord` rows per `Events` frame at drain. Keeps every frame far
/// under the 64 MiB frame ceiling.
const EVENTS_CHUNK: usize = 256;

/// `fsync` batching window for session journals. Completions lost in the
/// unsynced tail of a killed daemon simply re-run on resume (the service
/// is deterministic per query), so batching trades a bounded amount of
/// re-execution for not paying an `fsync` per completion.
const JOURNAL_FSYNC_BATCH: u32 = 8;

/// Tuning knobs for a serving daemon.
#[derive(Clone, Default)]
pub struct ServeConfig {
    /// Workers resolving queries per connection. `0` means one.
    pub workers_per_conn: usize,
    /// Optional sink receiving server-side `WireEvent`s
    /// (connect, reject, drain, disconnect, replay).
    pub sink: Option<Arc<dyn TraceSink>>,
    /// Server-side wire chaos plan, for fault-injection testing. `None`
    /// (or a disarmed plan) leaves every transport untouched.
    pub chaos: Option<WireChaosPlan>,
    /// Metrics registry backing the daemon's `Stats` snapshots. A default
    /// registry is created when not provided, so stats always work.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Daemon-assigned shard label. When set, server-side spans carry it
    /// as their `host` (so a merged fleet log attributes work per shard)
    /// and `Stats` snapshots report it; when `None` the daemon is a
    /// plain single host named `server`.
    pub shard_label: Option<String>,
    /// Directory for durable per-session completion journals. When set,
    /// every resolved query is appended (wire-codec bytes in an `MLPJ`
    /// frame) to `session_<id>.mlpj` before its completion frame is sent,
    /// and a restarted daemon re-adopts a session's journal when a client
    /// reconnects at a nonzero epoch — completions recorded before the
    /// crash are answered from disk, never re-run. `None` (the default)
    /// keeps session journals in memory only, as before.
    pub journal_dir: Option<PathBuf>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("workers_per_conn", &self.workers_per_conn)
            .field("sink", &self.sink.is_some())
            .field("chaos", &self.chaos)
            .field("metrics", &self.metrics.is_some())
            .field("shard_label", &self.shard_label)
            .field("journal_dir", &self.journal_dir)
            .finish()
    }
}

impl ServeConfig {
    /// Overrides the per-connection worker count.
    #[must_use]
    pub fn with_workers_per_conn(mut self, n: usize) -> Self {
        self.workers_per_conn = n;
        self
    }

    /// Attaches a trace sink for server-side wire events.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Arms a server-side wire chaos plan.
    #[must_use]
    pub fn with_chaos(mut self, plan: WireChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Shares a metrics registry with the daemon (exposed via `Stats`).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Names this daemon's shard within a fleet (span host + `Stats`).
    #[must_use]
    pub fn with_shard_label(mut self, label: &str) -> Self {
        self.shard_label = Some(label.to_string());
        self
    }

    /// Persists per-session completion journals under `dir`, making the
    /// daemon's exactly-once replay guarantee survive a daemon restart.
    #[must_use]
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }
}

/// wire query id → resolved reply `(error, samples)`, kept for journal
/// replay within a session and recovered from disk across daemon restarts.
type CompletionMap = HashMap<u64, (bool, Vec<SampleCompletion>)>;

/// Everything a session remembers across connections, under one lock so a
/// completion can never fall between "no longer in progress" and "not yet
/// journaled".
struct SessionBook {
    /// wire query id → resolved reply, kept for journal replay.
    journal: CompletionMap,
    /// Queries handed to workers but not yet resolved.
    in_progress: HashSet<u64>,
    /// Durable mirror of `journal`, when the daemon has a journal dir:
    /// completions are appended (as wire-codec `Completion` frames) under
    /// the same lock that updates the map, so the disk image can never
    /// miss an entry the memory image has acknowledged.
    disk: Option<JournalWriter>,
}

/// One logical client run. Connections come and go (each at a distinct
/// epoch); the session's journal, worker pool, and outstanding counter
/// persist until the run drains cleanly or the daemon shuts down.
struct Session {
    book: Mutex<SessionBook>,
    /// Outstanding = queries accepted but not yet resolved; `Drain` waits
    /// on this.
    outstanding: (Mutex<usize>, Condvar),
    /// The live connection's writer half, tagged with its epoch so a dead
    /// connection's epilogue cannot clear a successor's writer.
    writer: Mutex<Option<(u32, Box<dyn Transport>)>>,
    work_tx: Mutex<Option<mpsc::Sender<WorkItem>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Server-side queue/compute spans for traced (v3) queries, shipped to
    /// the client at drain so one run yields one merged detail log.
    events: Arc<RingBufferSink>,
    /// The on-disk journal path, kept so a cleanly drained session can
    /// delete its file (the run is over; nothing is left to resume).
    disk_path: Option<PathBuf>,
}

/// One query handed to the worker pool, with its trace context and the
/// server-clock instant it entered the queue.
struct WorkItem {
    query: Query,
    /// `0` means untraced (a v2 `Issue` frame).
    trace_id: u64,
    enqueued_ns: u64,
}

impl Session {
    /// Sends one frame on the session's current writer, if any. Errors are
    /// swallowed: the journal preserves the reply for the next epoch.
    fn send(&self, msg: &Message) {
        let payload = msg.to_wire();
        let mut guard = self.writer.lock().expect("session writer poisoned");
        if let Some((_, transport)) = guard.as_mut() {
            let _ = transport.send(&payload);
        }
    }

    /// Drops the work queue, joins the workers, and closes the writer.
    fn retire(&self) {
        self.work_tx
            .lock()
            .expect("session work_tx poisoned")
            .take();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("session workers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some((_, transport)) = self.writer.lock().expect("session writer poisoned").take() {
            transport.shutdown();
        }
    }
}

struct ServerShared {
    stop: AtomicBool,
    served: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    chaos: Option<Arc<ChaosSession>>,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Arc<MetricsRegistry>,
    start: Instant,
    /// `host` label stamped on server-side spans: the shard label when
    /// this daemon is part of a fleet, else `server`.
    host_label: String,
    /// Daemon-assigned shard label for `Stats` (empty = not sharded).
    shard: String,
    /// Directory for durable session journals (`None` = memory only).
    journal_dir: Option<PathBuf>,
}

impl ServerShared {
    /// Nanoseconds since the daemon started — the server's span clock.
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn wire_event(&self, kind: &str, query_id: u64, detail: &str) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(
                    self.now_ns(),
                    &TraceEvent::WireEvent {
                        endpoint: "server".to_string(),
                        kind: kind.to_string(),
                        query_id,
                        detail: detail.to_string(),
                    },
                );
            }
        }
    }
}

/// Handle to a running daemon. Dropping the handle does *not* stop the
/// daemon; call [`ServerHandle::shutdown`] (graceful) or
/// [`ServerHandle::kill`] (abrupt).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the daemon is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries resolved across all connections so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Severs every live connection abruptly, without drain or goodbye —
    /// simulates the serving machine dying mid-run. The listener also
    /// stops accepting. No threads are joined; pair with
    /// [`ServerHandle::shutdown`] to reap them.
    pub fn kill(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let conns = self.shared.conns.lock().expect("server conns poisoned");
        for conn in conns.iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        self.shared.wire_event("kill", 0, "all connections severed");
        self.unblock_accept();
    }

    /// Stops accepting, severs any connection still open, and joins the
    /// accept thread, every connection thread, and every session's worker
    /// pool. When this returns the daemon holds no threads and no
    /// sockets — the port can be rebound immediately.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.unblock_accept();
        if let Some(handle) = self.accept.lock().expect("accept handle poisoned").take() {
            let _ = handle.join();
        }
        {
            let conns = self.shared.conns.lock().expect("server conns poisoned");
            for conn in conns.iter() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        let conn_threads: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .expect("server conn threads poisoned"),
        );
        for handle in conn_threads {
            let _ = handle.join();
        }
        let sessions: Vec<Arc<Session>> = self
            .shared
            .sessions
            .lock()
            .expect("server sessions poisoned")
            .drain()
            .map(|(_, s)| s)
            .collect();
        for session in sessions {
            session.retire();
        }
        self.shared
            .conns
            .lock()
            .expect("server conns poisoned")
            .clear();
    }

    /// The accept loop blocks in `accept()`; poke it with a throwaway
    /// connection so it notices the stop flag.
    fn unblock_accept(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

/// Starts a daemon exporting `service` on `listener`.
///
/// Returns immediately; connections are handled on background threads.
///
/// # Errors
///
/// Returns [`WireError::Io`] if the listener's local address cannot be
/// resolved or the accept thread cannot spawn.
pub fn serve(
    listener: TcpListener,
    service: Arc<dyn WireService>,
    config: ServeConfig,
) -> Result<ServerHandle, crate::frame::WireError> {
    let addr = listener.local_addr()?;
    let chaos = config
        .chaos
        .clone()
        .map(|plan| Arc::new(ChaosSession::new(plan, "server", config.sink.clone())));
    let shared = Arc::new(ServerShared {
        stop: AtomicBool::new(false),
        served: AtomicU64::new(0),
        conns: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
        sessions: Mutex::new(HashMap::new()),
        chaos,
        sink: config.sink.clone(),
        metrics: config
            .metrics
            .clone()
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new())),
        start: Instant::now(),
        host_label: config
            .shard_label
            .clone()
            .unwrap_or_else(|| "server".to_string()),
        shard: config.shard_label.clone().unwrap_or_default(),
        journal_dir: config.journal_dir.clone(),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        let workers = config.workers_per_conn.max(1);
        std::thread::Builder::new()
            .name("wire-accept".to_string())
            .spawn(move || accept_loop(&listener, &service, workers, &shared))
            .map_err(crate::frame::WireError::Io)?
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Mutex::new(Some(accept)),
    })
}

/// Binds `addr` and starts a daemon on it. `"127.0.0.1:0"` picks a free
/// port; read it back from [`ServerHandle::addr`].
///
/// # Errors
///
/// Returns [`WireError::Io`] if the bind fails, plus [`serve`]'s failures.
pub fn serve_on(
    addr: &str,
    service: Arc<dyn WireService>,
    config: ServeConfig,
) -> Result<ServerHandle, crate::frame::WireError> {
    serve(TcpListener::bind(addr)?, service, config)
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<dyn WireService>,
    workers: usize,
    shared: &Arc<ServerShared>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => return,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        {
            let mut conns = shared.conns.lock().expect("server conns poisoned");
            if let Ok(clone) = stream.try_clone() {
                conns.push(clone);
            }
        }
        shared.wire_event("connect", 0, &peer.to_string());
        let service = Arc::clone(service);
        let shared_t = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("wire-conn-{peer}"))
            .spawn(move || {
                handle_conn(stream, &service, workers, &shared_t);
                shared_t.wire_event("disconnect", 0, &peer.to_string());
            });
        if let Ok(handle) = handle {
            shared
                .conn_threads
                .lock()
                .expect("server conn threads poisoned")
                .push(handle);
        }
    }
}

/// Opens (or, on resume, re-adopts) a session's durable journal. Returns
/// the writer, the path, and the completion map recovered from disk —
/// empty unless `resume` found a journal left by a previous daemon
/// process. Disk failures degrade to a memory-only session: the run
/// proceeds, it just cannot survive another daemon death.
fn open_session_disk(
    shared: &ServerShared,
    session_id: u64,
    resume: bool,
) -> (Option<JournalWriter>, Option<PathBuf>, CompletionMap) {
    let mut recovered = HashMap::new();
    let Some(dir) = &shared.journal_dir else {
        return (None, None, recovered);
    };
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("session_{session_id:016x}.mlpj"));
    let writer = if resume && path.exists() {
        match JournalWriter::open_append(&path, JOURNAL_FSYNC_BATCH) {
            Ok((writer, scan)) => {
                for frame in &scan.records {
                    if let Ok(Message::Completion {
                        query_id,
                        error,
                        samples,
                    }) = Message::from_wire(frame)
                    {
                        recovered.insert(query_id, (error, samples));
                    }
                }
                if let Some(torn) = &scan.torn {
                    shared.wire_event("journal_salvage", 0, &torn.to_string());
                }
                shared.wire_event(
                    "journal_recover",
                    0,
                    &format!("session={session_id:#x} completions={}", recovered.len()),
                );
                Some(writer)
            }
            Err(e) => {
                shared.wire_event("journal_error", 0, &format!("open: {e}"));
                None
            }
        }
    } else {
        // Epoch 0 (or no surviving file): a fresh run truncates whatever
        // a same-id predecessor left behind.
        JournalWriter::create(&path, JOURNAL_FSYNC_BATCH).ok()
    };
    (writer, Some(path), recovered)
}

/// Spawns a fresh session with its worker pool. With a journal dir
/// configured, the session's completion book is mirrored to (and, at a
/// nonzero epoch, recovered from) `session_<id>.mlpj` in that dir.
fn spawn_session(
    service: &Arc<dyn WireService>,
    workers: usize,
    shared: &Arc<ServerShared>,
    session_id: u64,
    resume: bool,
) -> Arc<Session> {
    let (work_tx, work_rx) = mpsc::channel::<WorkItem>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let (disk, disk_path, recovered) = open_session_disk(shared, session_id, resume);
    let session = Arc::new(Session {
        book: Mutex::new(SessionBook {
            journal: recovered,
            in_progress: HashSet::new(),
            disk,
        }),
        outstanding: (Mutex::new(0usize), Condvar::new()),
        writer: Mutex::new(None),
        work_tx: Mutex::new(Some(work_tx)),
        workers: Mutex::new(Vec::with_capacity(workers)),
        events: Arc::new(RingBufferSink::new(SESSION_EVENT_CAPACITY)),
        disk_path,
    });
    let mut pool = Vec::with_capacity(workers);
    for i in 0..workers {
        let work_rx = Arc::clone(&work_rx);
        let session_t = Arc::clone(&session);
        let service = Arc::clone(service);
        let shared = Arc::clone(shared);
        let worker = std::thread::Builder::new()
            .name(format!("wire-worker-{i}"))
            .spawn(move || loop {
                let item = {
                    let rx = work_rx.lock().expect("server work queue poisoned");
                    rx.recv()
                };
                let Ok(WorkItem {
                    query,
                    trace_id,
                    enqueued_ns,
                }) = item
                else {
                    return;
                };
                let dequeued_ns = shared.now_ns();
                shared
                    .metrics
                    .observe("wire_queue_ns", dequeued_ns.saturating_sub(enqueued_ns));
                if trace_id != 0 {
                    session_t.events.record(
                        enqueued_ns,
                        &TraceEvent::SpanEvent {
                            host: shared.host_label.clone(),
                            trace_id,
                            query_id: query.id,
                            phase: "queue".to_string(),
                            dur_ns: dequeued_ns.saturating_sub(enqueued_ns),
                        },
                    );
                }
                let reply = service.serve(&query);
                let served_ns = shared.now_ns();
                shared
                    .metrics
                    .observe("wire_serve_ns", served_ns.saturating_sub(dequeued_ns));
                if trace_id != 0 {
                    session_t.events.record(
                        dequeued_ns,
                        &TraceEvent::SpanEvent {
                            host: shared.host_label.clone(),
                            trace_id,
                            query_id: query.id,
                            phase: "compute".to_string(),
                            dur_ns: served_ns.saturating_sub(dequeued_ns),
                        },
                    );
                }
                match reply {
                    Some(reply) => {
                        // Journal first, then send: if the connection dies
                        // between the two, the reply survives for replay.
                        // One critical section retires "in progress" and
                        // records the journal entry atomically.
                        let completion = Message::Completion {
                            query_id: query.id,
                            error: reply.error,
                            samples: reply.samples,
                        };
                        {
                            let mut book = session_t.book.lock().expect("session book poisoned");
                            book.in_progress.remove(&query.id);
                            if let Some(disk) = book.disk.as_mut() {
                                // Durable mirror first: the wire-codec
                                // bytes are the journal payload, so replay
                                // after a daemon restart parses them back
                                // with the same decoder the socket uses.
                                let _ = disk.append(&completion.to_wire());
                            }
                            let Message::Completion { error, samples, .. } = &completion else {
                                unreachable!("constructed above");
                            };
                            book.journal.insert(query.id, (*error, samples.clone()));
                        }
                        session_t.send(&completion);
                        shared.served.fetch_add(1, Ordering::SeqCst);
                        shared.metrics.incr("wire_served", 1);
                    }
                    None => {
                        // The service swallowed the query: no frame goes
                        // back, and nothing is journaled — a replay will
                        // be swallowed again, which is the point.
                        session_t
                            .book
                            .lock()
                            .expect("session book poisoned")
                            .in_progress
                            .remove(&query.id);
                        shared.wire_event("dropped_reply", query.id, "service returned nothing");
                    }
                }
                let (count, cv) = &session_t.outstanding;
                let mut n = count.lock().expect("server outstanding poisoned");
                *n = n.saturating_sub(1);
                cv.notify_all();
            });
        if let Ok(handle) = worker {
            pool.push(handle);
        }
    }
    *session.workers.lock().expect("session workers poisoned") = pool;
    session
}

/// Routes one issued query (traced or not) through the session's journal
/// discipline: fresh queries go to the worker pool, journaled ones are
/// answered by replay, in-progress duplicates are skipped. Returns `false`
/// when the connection must drop (the work queue is gone).
fn handle_issue(
    session: &Arc<Session>,
    shared: &Arc<ServerShared>,
    query: Query,
    trace_id: u64,
) -> bool {
    enum IssueAction {
        Fresh,
        Replay(bool, Vec<SampleCompletion>),
        Skip,
    }
    let action = {
        let mut book = session.book.lock().expect("session book poisoned");
        if let Some((error, samples)) = book.journal.get(&query.id) {
            IssueAction::Replay(*error, samples.clone())
        } else if book.in_progress.contains(&query.id) {
            IssueAction::Skip
        } else {
            book.in_progress.insert(query.id);
            IssueAction::Fresh
        }
    };
    match action {
        IssueAction::Fresh => {
            {
                let (count, _) = &session.outstanding;
                *count.lock().expect("server outstanding poisoned") += 1;
            }
            let item = WorkItem {
                query,
                trace_id,
                enqueued_ns: shared.now_ns(),
            };
            let sent = {
                let tx = session.work_tx.lock().expect("session work_tx poisoned");
                match tx.as_ref() {
                    Some(tx) => tx.send(item).is_ok(),
                    None => false,
                }
            };
            if !sent {
                let (count, cv) = &session.outstanding;
                let mut n = count.lock().expect("server outstanding poisoned");
                *n = n.saturating_sub(1);
                cv.notify_all();
                return false;
            }
        }
        IssueAction::Replay(error, samples) => {
            // Resolved in a previous epoch (or while the link
            // was down): answer from the journal, do not re-run.
            shared.wire_event("replay", query.id, "journal hit");
            shared.metrics.incr("wire_replays", 1);
            session.send(&Message::Completion {
                query_id: query.id,
                error,
                samples,
            });
        }
        IssueAction::Skip => {
            // Replayed while the original is still in a worker:
            // the worker's completion will answer both.
            shared.wire_event("dup_issue", query.id, "already in progress");
            shared.metrics.incr("wire_dup_issues", 1);
        }
    }
    true
}

/// Answers a `StatsRequest` probe connection with one `Stats` frame.
fn answer_stats(
    transport: &mut Box<dyn Transport>,
    service: &Arc<dyn WireService>,
    shared: &Arc<ServerShared>,
) {
    shared.metrics.incr("wire_stats_requests", 1);
    let (sessions, in_flight, session_outstanding) = {
        let sessions = shared.sessions.lock().expect("server sessions poisoned");
        let mut per_session: Vec<(u64, u64)> = sessions
            .iter()
            .map(|(id, s)| {
                let outstanding =
                    *s.outstanding.0.lock().expect("server outstanding poisoned") as u64;
                (*id, outstanding)
            })
            .collect();
        per_session.sort_unstable();
        let in_flight: u64 = per_session.iter().map(|(_, n)| n).sum();
        (sessions.len() as u64, in_flight, per_session)
    };
    let stats = DaemonStats {
        sut_name: service.name().to_string(),
        shard: shared.shard.clone(),
        uptime_ns: shared.now_ns(),
        served: shared.served.load(Ordering::SeqCst),
        sessions,
        in_flight,
        session_outstanding,
        snapshot: shared.metrics.snapshot(),
    };
    let _ = transport.send(
        &Message::Stats {
            json: stats.to_json_string(),
        }
        .to_wire(),
    );
}

/// Runs one connection: handshake, session attach, then the
/// issue/complete loop until the client drains or the socket dies.
fn handle_conn(
    stream: TcpStream,
    service: &Arc<dyn WireService>,
    workers: usize,
    shared: &Arc<ServerShared>,
) {
    let base: Box<dyn Transport> = Box::new(TcpTransport::new(stream));
    let mut transport = match &shared.chaos {
        Some(session) => session.wrap(base),
        None => base,
    };

    // --- handshake (or a one-shot stats probe) ---
    let hello = match transport.recv().and_then(|p| Message::from_wire(&p)) {
        Ok(Message::Hello(h)) => h,
        Ok(Message::StatsRequest) => {
            // A telemetry poll, not a run: answer and close. It never
            // touches the serving path's sessions.
            answer_stats(&mut transport, service, shared);
            return;
        }
        _ => return, // includes the shutdown poke connection
    };
    // Negotiate: the server speaks every version in the supported range
    // and answers at the client's offered version. Anything outside the
    // range — including a *newer* client — is rejected rather than
    // silently downgraded.
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&hello.version) {
        shared.wire_event(
            "reject",
            0,
            &format!("version mismatch: client v{}", hello.version),
        );
        let reject = Message::Reject {
            reason: format!(
                "protocol version mismatch: server v{MIN_PROTOCOL_VERSION}..v{PROTOCOL_VERSION}, client v{}",
                hello.version
            ),
        };
        let _ = transport.send(&reject.to_wire());
        return;
    }

    // --- session attach ---
    // Epoch 0 is the authoritative start of a run: any stale session with
    // the same id is retired and the service state cleared. A non-zero
    // epoch resumes the existing session (or, if the daemon restarted and
    // forgot it, starts an empty one — the replayed queries simply re-run).
    let session = if hello.epoch == 0 {
        let stale = shared
            .sessions
            .lock()
            .expect("server sessions poisoned")
            .remove(&hello.session);
        if let Some(stale) = stale {
            stale.retire();
        }
        // A fresh session is a fresh run: let stateful services clear.
        service.reset();
        let session = spawn_session(service, workers, shared, hello.session, false);
        shared
            .sessions
            .lock()
            .expect("server sessions poisoned")
            .insert(hello.session, Arc::clone(&session));
        session
    } else {
        let existing = shared
            .sessions
            .lock()
            .expect("server sessions poisoned")
            .get(&hello.session)
            .cloned();
        match existing {
            Some(session) => session,
            None => {
                // The daemon forgot this session (it restarted). With a
                // journal dir the session book is rebuilt from disk and
                // replayed queries answer without re-running; without one
                // the book starts empty and they simply re-run.
                let session = spawn_session(service, workers, shared, hello.session, true);
                shared
                    .sessions
                    .lock()
                    .expect("server sessions poisoned")
                    .insert(hello.session, Arc::clone(&session));
                session
            }
        }
    };

    let ack = Message::HelloAck {
        version: hello.version,
        sut_name: service.name().to_string(),
        max_in_flight: hello.max_in_flight,
    };
    if transport.send(&ack.to_wire()).is_err() {
        return;
    }
    // Install this connection's writer; the epoch tag keeps a dead
    // predecessor's epilogue from clearing it.
    {
        let writer = match transport.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        *session.writer.lock().expect("session writer poisoned") = Some((hello.epoch, writer));
    }
    shared.wire_event(
        "handshake",
        0,
        &format!(
            "scenario={:?} qsl_size={} window={} session={:#x} epoch={}",
            hello.scenario, hello.qsl_size, hello.max_in_flight, hello.session, hello.epoch
        ),
    );

    // --- read loop ---
    let mut clean = false;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match transport.recv().and_then(|p| Message::from_wire(&p)) {
            Ok(Message::Issue(query)) => {
                if !handle_issue(&session, shared, query, 0) {
                    break;
                }
            }
            Ok(Message::IssueTraced { trace_id, query }) => {
                if !handle_issue(&session, shared, query, trace_id) {
                    break;
                }
            }
            // A duplicated Hello frame (chaos duplicate-send hits the
            // handshake) is harmless noise, not a protocol violation.
            Ok(Message::Hello(_)) => continue,
            Ok(Message::Heartbeat { seq }) => {
                session.send(&Message::HeartbeatAck { seq });
            }
            Ok(Message::ClockProbe { seq, t0 }) => {
                // Stamp receive and transmit on the server's clock; the
                // client turns the four timestamps into an offset sample.
                let t1 = shared.now_ns();
                let t2 = shared.now_ns();
                session.send(&Message::ClockProbeAck { seq, t0, t1, t2 });
            }
            Ok(Message::Drain) => {
                let (count, cv) = &session.outstanding;
                let mut n = count.lock().expect("server outstanding poisoned");
                while *n > 0 && !shared.stop.load(Ordering::SeqCst) {
                    let (guard, _timeout) = cv
                        .wait_timeout(n, Duration::from_millis(100))
                        .expect("server outstanding poisoned");
                    n = guard;
                }
                drop(n);
                shared.wire_event("drain", 0, "flushed outstanding queries");
                // A v3 client gets the session's server-side spans shipped
                // back before the goodbye, so its detail log covers both
                // hosts. Chunked: each frame stays far below the cap.
                if hello.version >= 3 {
                    let records = session.events.snapshot();
                    for chunk in records.chunks(EVENTS_CHUNK) {
                        let mut jsonl = String::new();
                        for record in chunk {
                            jsonl.push_str(&record.to_json_string());
                            jsonl.push('\n');
                        }
                        session.send(&Message::Events { jsonl });
                    }
                }
                session.send(&Message::Goodbye {
                    served: shared.served.load(Ordering::SeqCst),
                });
                clean = true;
                break;
            }
            Ok(Message::Goodbye { .. }) => break,
            Ok(_) => break, // protocol violation: drop the connection
            Err(_) => break,
        }
    }

    transport.shutdown();
    if clean {
        // The run drained: the session is complete, reap it — including
        // its on-disk journal, which exists only to rescue unfinished runs.
        let removed = shared
            .sessions
            .lock()
            .expect("server sessions poisoned")
            .remove(&hello.session);
        if let Some(session) = removed {
            session.retire();
            if let Some(path) = &session.disk_path {
                let _ = std::fs::remove_file(path);
            }
        }
    } else {
        // The link died dirty: the session lives on for a resume. Clear
        // the writer only if it is still ours — a successor epoch may
        // already have installed a new one.
        let mut writer = session.writer.lock().expect("session writer poisoned");
        if let Some((epoch, _)) = writer.as_ref() {
            if *epoch == hello.epoch {
                if let Some((_, transport)) = writer.take() {
                    transport.shutdown();
                }
            }
        }
    }
}

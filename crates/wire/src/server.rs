//! The daemon-side endpoint: [`serve`] and [`ServerHandle`].
//!
//! `serve` exports any [`WireService`] over a TCP listener. Each accepted
//! connection performs the versioned handshake, then runs a worker pool
//! (one worker per connection by default) pulling issue frames off the
//! socket, resolving them through the service, and writing completion
//! frames back. Heartbeats are answered inline; `Drain` waits for the
//! connection's outstanding queries to resolve, then answers `Goodbye`
//! and closes.
//!
//! [`ServerHandle::kill`] exists for resilience testing: it severs every
//! live connection abruptly — the moral equivalent of yanking the
//! machine's power cord mid-run — so clients exercise their disconnect
//! path.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mlperf_loadgen::query::Query;
use mlperf_trace::event::{TraceEvent, TraceSink};

use crate::frame::{read_frame, write_frame, WireError};
use crate::message::{Message, PROTOCOL_VERSION};
use crate::service::WireService;

/// Tuning knobs for a serving daemon.
#[derive(Clone, Default)]
pub struct ServeConfig {
    /// Workers resolving queries per connection. `0` means one.
    pub workers_per_conn: usize,
    /// Optional sink receiving server-side `WireEvent`s
    /// (connect, reject, drain, disconnect).
    pub sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("workers_per_conn", &self.workers_per_conn)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl ServeConfig {
    /// Overrides the per-connection worker count.
    #[must_use]
    pub fn with_workers_per_conn(mut self, n: usize) -> Self {
        self.workers_per_conn = n;
        self
    }

    /// Attaches a trace sink for server-side wire events.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }
}

struct ServerShared {
    stop: AtomicBool,
    served: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
    sink: Option<Arc<dyn TraceSink>>,
    start: Instant,
}

impl ServerShared {
    fn wire_event(&self, kind: &str, query_id: u64, detail: &str) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(
                    self.start.elapsed().as_nanos() as u64,
                    &TraceEvent::WireEvent {
                        endpoint: "server".to_string(),
                        kind: kind.to_string(),
                        query_id,
                        detail: detail.to_string(),
                    },
                );
            }
        }
    }
}

/// Handle to a running daemon. Dropping the handle does *not* stop the
/// daemon; call [`ServerHandle::shutdown`] (graceful) or
/// [`ServerHandle::kill`] (abrupt).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the daemon is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries resolved across all connections so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Severs every live connection abruptly, without drain or goodbye —
    /// simulates the serving machine dying mid-run. The listener also
    /// stops accepting.
    pub fn kill(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let conns = self.shared.conns.lock().expect("server conns poisoned");
        for conn in conns.iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        self.shared.wire_event("kill", 0, "all connections severed");
        self.unblock_accept();
    }

    /// Stops accepting new connections and waits for the accept thread.
    /// Existing connections finish naturally (clients drain and leave).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.unblock_accept();
        if let Some(handle) = self.accept.lock().expect("accept handle poisoned").take() {
            let _ = handle.join();
        }
    }

    /// The accept loop blocks in `accept()`; poke it with a throwaway
    /// connection so it notices the stop flag.
    fn unblock_accept(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

/// Starts a daemon exporting `service` on `listener`.
///
/// Returns immediately; connections are handled on background threads.
///
/// # Errors
///
/// Returns [`WireError::Io`] if the listener's local address cannot be
/// resolved or the accept thread cannot spawn.
pub fn serve(
    listener: TcpListener,
    service: Arc<dyn WireService>,
    config: ServeConfig,
) -> Result<ServerHandle, WireError> {
    let addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        stop: AtomicBool::new(false),
        served: AtomicU64::new(0),
        conns: Mutex::new(Vec::new()),
        sink: config.sink.clone(),
        start: Instant::now(),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        let workers = config.workers_per_conn.max(1);
        std::thread::Builder::new()
            .name("wire-accept".to_string())
            .spawn(move || accept_loop(&listener, &service, workers, &shared))
            .map_err(WireError::Io)?
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Mutex::new(Some(accept)),
    })
}

/// Binds `addr` and starts a daemon on it. `"127.0.0.1:0"` picks a free
/// port; read it back from [`ServerHandle::addr`].
///
/// # Errors
///
/// Returns [`WireError::Io`] if the bind fails, plus [`serve`]'s failures.
pub fn serve_on(
    addr: &str,
    service: Arc<dyn WireService>,
    config: ServeConfig,
) -> Result<ServerHandle, WireError> {
    serve(TcpListener::bind(addr)?, service, config)
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<dyn WireService>,
    workers: usize,
    shared: &Arc<ServerShared>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => return,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        {
            let mut conns = shared.conns.lock().expect("server conns poisoned");
            if let Ok(clone) = stream.try_clone() {
                conns.push(clone);
            }
        }
        shared.wire_event("connect", 0, &peer.to_string());
        let service = Arc::clone(service);
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name(format!("wire-conn-{peer}"))
            .spawn(move || {
                handle_conn(stream, &service, workers, &shared);
                shared.wire_event("disconnect", 0, &peer.to_string());
            });
    }
}

/// Runs one connection: handshake, then the issue/complete loop until the
/// client drains or the socket dies.
fn handle_conn(
    mut stream: TcpStream,
    service: &Arc<dyn WireService>,
    workers: usize,
    shared: &Arc<ServerShared>,
) {
    // --- handshake ---
    let hello = match read_frame(&mut stream).and_then(|p| Message::decode(&p)) {
        Ok(Message::Hello(h)) => h,
        _ => return, // includes the shutdown poke connection
    };
    if hello.version != PROTOCOL_VERSION {
        shared.wire_event(
            "reject",
            0,
            &format!("version mismatch: client v{}", hello.version),
        );
        let reject = Message::Reject {
            reason: format!(
                "protocol version mismatch: server v{PROTOCOL_VERSION}, client v{}",
                hello.version
            ),
        };
        let _ = write_frame(&mut stream, &reject.encode());
        return;
    }
    // A connection is a run: let stateful services clear between runs.
    service.reset();
    let ack = Message::HelloAck {
        version: PROTOCOL_VERSION,
        sut_name: service.name().to_string(),
        max_in_flight: hello.max_in_flight,
    };
    if write_frame(&mut stream, &ack.encode()).is_err() {
        return;
    }
    shared.wire_event(
        "handshake",
        0,
        &format!(
            "scenario={:?} qsl_size={} window={}",
            hello.scenario, hello.qsl_size, hello.max_in_flight
        ),
    );

    // --- worker pool ---
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let (work_tx, work_rx) = mpsc::channel::<Query>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let outstanding = Arc::new((Mutex::new(0usize), Condvar::new()));
    let mut pool = Vec::with_capacity(workers);
    for i in 0..workers {
        let work_rx = Arc::clone(&work_rx);
        let writer = Arc::clone(&writer);
        let outstanding = Arc::clone(&outstanding);
        let service = Arc::clone(service);
        let shared = Arc::clone(shared);
        let worker = std::thread::Builder::new()
            .name(format!("wire-worker-{i}"))
            .spawn(move || loop {
                let query = {
                    let rx = work_rx.lock().expect("server work queue poisoned");
                    rx.recv()
                };
                let Ok(query) = query else { return };
                if let Some(reply) = service.serve(&query) {
                    let completion = Message::Completion {
                        query_id: query.id,
                        error: reply.error,
                        samples: reply.samples,
                    };
                    let payload = completion.encode();
                    let mut w = writer.lock().expect("server writer poisoned");
                    let _ = write_frame(&mut *w, &payload);
                    shared.served.fetch_add(1, Ordering::SeqCst);
                } else {
                    // The service swallowed the query: no frame goes back.
                    shared.wire_event("dropped_reply", query.id, "service returned nothing");
                }
                let (count, cv) = &*outstanding;
                let mut n = count.lock().expect("server outstanding poisoned");
                *n -= 1;
                cv.notify_all();
            });
        match worker {
            Ok(handle) => pool.push(handle),
            Err(_) => break,
        }
    }

    // --- read loop ---
    loop {
        match read_frame(&mut stream).and_then(|p| Message::decode(&p)) {
            Ok(Message::Issue(query)) => {
                let (count, _) = &*outstanding;
                *count.lock().expect("server outstanding poisoned") += 1;
                if work_tx.send(query).is_err() {
                    break;
                }
            }
            Ok(Message::Heartbeat { seq }) => {
                let ack = Message::HeartbeatAck { seq };
                let mut w = writer.lock().expect("server writer poisoned");
                if write_frame(&mut *w, &ack.encode()).is_err() {
                    break;
                }
            }
            Ok(Message::Drain) => {
                let (count, cv) = &*outstanding;
                let mut n = count.lock().expect("server outstanding poisoned");
                while *n > 0 {
                    n = cv.wait(n).expect("server outstanding poisoned");
                }
                drop(n);
                shared.wire_event("drain", 0, "flushed outstanding queries");
                let goodbye = Message::Goodbye {
                    served: shared.served.load(Ordering::SeqCst),
                };
                let mut w = writer.lock().expect("server writer poisoned");
                let _ = write_frame(&mut *w, &goodbye.encode());
                break;
            }
            Ok(Message::Goodbye { .. }) => break,
            Ok(_) => break, // protocol violation: drop the connection
            Err(_) => break,
        }
    }

    // Unblock any worker mid-write, stop the pool, and close.
    drop(work_tx);
    let _ = stream.shutdown(Shutdown::Both);
    for handle in pool {
        let _ = handle.join();
    }
}

//! The LoadGen-side endpoint: [`RemoteSut`].
//!
//! `RemoteSut` implements [`RealtimeSut`], so `run_realtime` drives a
//! machine on the other end of a TCP connection exactly as it drives an
//! in-process SUT. Internally it keeps a bounded in-flight window
//! (backpressure), a reader thread routing completion frames to blocked
//! issuers, and a heartbeat thread that detects a silently dead peer.
//!
//! Failure mapping — this is the contract the validity rules lean on:
//!
//! * disconnect / heartbeat loss / remote errored reply →
//!   [`IssueOutcome::Errored`] → an errored completion → the
//!   `ErrorFractionExceeded` rule;
//! * response timeout on a live connection (the server swallowed the
//!   frame) → [`IssueOutcome::Vanished`] → the query stays outstanding →
//!   the `IncompleteQueries` rule and the TEST06 completeness audit.
//!
//! Neither path can hang the run.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::query::{Query, SampleCompletion};
use mlperf_loadgen::sut::{IssueOutcome, RealtimeSut};
use mlperf_trace::event::{TraceEvent, TraceSink};
use mlperf_trace::metrics::MetricsRegistry;

use crate::frame::{read_frame, write_frame, WireError};
use crate::message::{Hello, Message, PROTOCOL_VERSION};

/// Tuning knobs for a [`RemoteSut`] connection.
#[derive(Debug, Clone)]
pub struct RemoteSutConfig {
    /// Backpressure window: issuers block once this many queries are on
    /// the wire without a completion.
    pub max_in_flight: u32,
    /// How long an issuer waits for its completion frame before declaring
    /// the query vanished.
    pub response_timeout: Duration,
    /// Interval between heartbeat frames.
    pub heartbeat_interval: Duration,
    /// Silence tolerated (no heartbeat ack, no completion) before the
    /// connection is declared dead.
    pub heartbeat_grace: Duration,
}

impl Default for RemoteSutConfig {
    fn default() -> Self {
        RemoteSutConfig {
            max_in_flight: 64,
            response_timeout: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_grace: Duration::from_secs(2),
        }
    }
}

impl RemoteSutConfig {
    /// Overrides the in-flight window.
    #[must_use]
    pub fn with_max_in_flight(mut self, n: u32) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Overrides the per-query response timeout.
    #[must_use]
    pub fn with_response_timeout(mut self, t: Duration) -> Self {
        self.response_timeout = t;
        self
    }

    /// Overrides the heartbeat interval and grace window.
    #[must_use]
    pub fn with_heartbeat(mut self, interval: Duration, grace: Duration) -> Self {
        self.heartbeat_interval = interval;
        self.heartbeat_grace = grace;
        self
    }
}

/// What the reader thread hands back to a blocked issuer.
enum Reply {
    Completion {
        error: bool,
        samples: Vec<SampleCompletion>,
    },
    Disconnected,
}

struct Pending {
    tx: mpsc::Sender<Reply>,
    sent_at: Instant,
}

struct ClientState {
    connected: bool,
    reason: String,
    in_flight: u32,
    pending: HashMap<u64, Pending>,
}

struct ClientShared {
    config: RemoteSutConfig,
    writer: Mutex<TcpStream>,
    state: Mutex<ClientState>,
    window: Condvar,
    start: Instant,
    last_pong: Mutex<Instant>,
    stopping: AtomicBool,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ClientShared {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn wire_event(&self, kind: &str, query_id: u64, detail: &str) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(
                    self.now_ns(),
                    &TraceEvent::WireEvent {
                        endpoint: "client".to_string(),
                        kind: kind.to_string(),
                        query_id,
                        detail: detail.to_string(),
                    },
                );
            }
        }
    }

    fn incr(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.incr(name, 1);
        }
    }

    fn observe(&self, name: &str, value: u64) {
        if let Some(m) = &self.metrics {
            m.observe(name, value);
        }
    }

    /// Marks the connection dead and wakes every blocked issuer with
    /// [`Reply::Disconnected`]. Idempotent; the first reason wins.
    fn fail(&self, reason: &str) {
        let mut st = self.state.lock().expect("wire client state poisoned");
        if !st.connected {
            return;
        }
        st.connected = false;
        st.reason = reason.to_string();
        st.in_flight = 0;
        for (_, pending) in st.pending.drain() {
            let _ = pending.tx.send(Reply::Disconnected);
        }
        drop(st);
        self.window.notify_all();
        self.incr("wire_disconnects");
        if !self.stopping.load(Ordering::SeqCst) {
            self.wire_event("disconnect", 0, reason);
        }
    }

    /// Encodes and sends one frame, timing the encode and failing the
    /// connection on socket errors.
    fn send(&self, msg: &Message) -> Result<(), WireError> {
        let encode_started = Instant::now();
        let payload = msg.encode();
        self.observe("wire_encode_ns", encode_started.elapsed().as_nanos() as u64);
        let result = {
            let mut writer = self.writer.lock().expect("wire writer poisoned");
            write_frame(&mut *writer, &payload)
        };
        match result {
            Ok(()) => {
                self.incr("wire_frames_sent");
                Ok(())
            }
            Err(e) => {
                if !self.stopping.load(Ordering::SeqCst) {
                    self.fail(&format!("send failed: {e}"));
                }
                Err(e)
            }
        }
    }
}

/// A [`RealtimeSut`] whose machinery lives on the other end of a TCP
/// connection. See the module docs for the failure mapping.
pub struct RemoteSut {
    name: String,
    peer: String,
    shared: Arc<ClientShared>,
    reader: Mutex<Option<JoinHandle<()>>>,
    heartbeat: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for RemoteSut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSut")
            .field("name", &self.name)
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

impl RemoteSut {
    /// Connects and performs the versioned handshake.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the TCP connect fails,
    /// [`WireError::VersionMismatch`] / [`WireError::Rejected`] if the
    /// server refuses the handshake, and [`WireError::Protocol`] if the
    /// server answers with anything but `HelloAck`/`Reject`.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        hello: Hello,
        config: RemoteSutConfig,
    ) -> Result<Self, WireError> {
        Self::connect_instrumented(addr, hello, config, None, None)
    }

    /// [`RemoteSut::connect`], wiring trace events and wire histograms
    /// into the given sink and registry.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`RemoteSut::connect`].
    pub fn connect_instrumented<A: ToSocketAddrs>(
        addr: A,
        hello: Hello,
        config: RemoteSutConfig,
        sink: Option<Arc<dyn TraceSink>>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Result<Self, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());

        write_frame(&mut stream, &Message::Hello(hello).encode())?;
        let ack = Message::decode(&read_frame(&mut stream)?)?;
        let (version, sut_name) = match ack {
            Message::HelloAck {
                version, sut_name, ..
            } => (version, sut_name),
            Message::Reject { reason } => return Err(WireError::Rejected(reason)),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected HelloAck, got {}",
                    other.tag_name()
                )))
            }
        };
        if version != PROTOCOL_VERSION {
            return Err(WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            });
        }

        let reader_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            config,
            writer: Mutex::new(stream),
            state: Mutex::new(ClientState {
                connected: true,
                reason: String::new(),
                in_flight: 0,
                pending: HashMap::new(),
            }),
            window: Condvar::new(),
            start: Instant::now(),
            last_pong: Mutex::new(Instant::now()),
            stopping: AtomicBool::new(false),
            sink,
            metrics,
        });
        shared.wire_event("handshake", 0, &format!("peer={peer} sut={sut_name}"));

        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wire-reader".to_string())
                .spawn(move || reader_loop(&shared, reader_stream))
                .map_err(WireError::Io)?
        };
        let heartbeat = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wire-heartbeat".to_string())
                .spawn(move || heartbeat_loop(&shared))
                .map_err(WireError::Io)?
        };

        Ok(RemoteSut {
            name: sut_name,
            peer,
            shared,
            reader: Mutex::new(Some(reader)),
            heartbeat: Mutex::new(Some(heartbeat)),
        })
    }

    /// Builds the handshake `Hello` for a run: scenario, seeds, and QSL
    /// size are negotiated up front so both ends agree on what the run is.
    pub fn hello_for(settings: &TestSettings, qsl_size: u64, config: &RemoteSutConfig) -> Hello {
        Hello {
            version: PROTOCOL_VERSION,
            scenario: settings.scenario,
            seeds: settings.seeds,
            qsl_size,
            max_in_flight: config.max_in_flight,
        }
    }

    /// The peer address this client connected to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Whether the connection is still up.
    pub fn is_connected(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("wire client state poisoned")
            .connected
    }

    /// Sends `Drain`, closes the socket, and joins the worker threads.
    /// Called by `Drop`; safe to call more than once.
    pub fn shutdown(&self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        let still_connected = self.is_connected();
        if still_connected {
            let _ = self.shared.send(&Message::Drain);
            self.shared.wire_event("drain", 0, "");
        }
        {
            let writer = self.shared.writer.lock().expect("wire writer poisoned");
            let _ = writer.shutdown(Shutdown::Both);
        }
        self.shared.fail("client shutdown");
        if let Some(handle) = self.reader.lock().expect("reader handle poisoned").take() {
            let _ = handle.join();
        }
        if let Some(handle) = self
            .heartbeat
            .lock()
            .expect("heartbeat handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for RemoteSut {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl RealtimeSut for RemoteSut {
    fn name(&self) -> &str {
        &self.name
    }

    fn issue(&self, query: &Query) -> Vec<SampleCompletion> {
        match self.issue_outcome(query) {
            IssueOutcome::Completed(samples) => samples,
            // `issue` has no failure channel; echo empty payloads so the
            // recorder's sample-id checks still hold. `run_realtime` uses
            // `issue_outcome` and never hits this path.
            IssueOutcome::Errored | IssueOutcome::Vanished => query
                .samples
                .iter()
                .map(|s| SampleCompletion {
                    sample_id: s.id,
                    payload: Default::default(),
                })
                .collect(),
        }
    }

    fn issue_outcome(&self, query: &Query) -> IssueOutcome {
        let shared = &self.shared;

        // Backpressure: wait for a slot in the in-flight window, then
        // register ourselves before the frame leaves so a fast reply
        // cannot race past the routing table.
        let rx = {
            let mut st = shared.state.lock().expect("wire client state poisoned");
            while st.connected && st.in_flight >= shared.config.max_in_flight {
                st = shared.window.wait(st).expect("wire client state poisoned");
            }
            if !st.connected {
                return IssueOutcome::Errored;
            }
            let (tx, rx) = mpsc::channel();
            st.in_flight += 1;
            st.pending.insert(
                query.id,
                Pending {
                    tx,
                    sent_at: Instant::now(),
                },
            );
            rx
        };

        if shared.send(&Message::Issue(query.clone())).is_err() {
            // `fail` already drained our pending entry and released the
            // window slot.
            return IssueOutcome::Errored;
        }

        match rx.recv_timeout(shared.config.response_timeout) {
            Ok(Reply::Completion { error, samples }) => {
                if error {
                    IssueOutcome::Errored
                } else {
                    IssueOutcome::Completed(samples)
                }
            }
            Ok(Reply::Disconnected) => IssueOutcome::Errored,
            Err(_) => {
                let mut st = shared.state.lock().expect("wire client state poisoned");
                if st.pending.remove(&query.id).is_some() {
                    st.in_flight = st.in_flight.saturating_sub(1);
                    drop(st);
                    shared.window.notify_all();
                    shared.incr("wire_timeouts");
                    shared.wire_event(
                        "response_timeout",
                        query.id,
                        "no completion frame within the response timeout",
                    );
                    IssueOutcome::Vanished
                } else {
                    // The reply raced in between our timeout and taking
                    // the lock; it is sitting in the channel.
                    drop(st);
                    match rx.try_recv() {
                        Ok(Reply::Completion {
                            error: false,
                            samples,
                        }) => IssueOutcome::Completed(samples),
                        _ => IssueOutcome::Errored,
                    }
                }
            }
        }
    }
}

/// Reads frames until the socket dies, routing completions to their
/// blocked issuers and acks to the heartbeat monitor.
fn reader_loop(shared: &Arc<ClientShared>, mut stream: TcpStream) {
    loop {
        let decode_started = Instant::now();
        let message = read_frame(&mut stream).and_then(|payload| {
            let msg = Message::decode(&payload);
            shared.observe("wire_decode_ns", decode_started.elapsed().as_nanos() as u64);
            msg
        });
        match message {
            Ok(Message::Completion {
                query_id,
                error,
                samples,
            }) => {
                shared.incr("wire_frames_received");
                // A completion is as good as a heartbeat ack for liveness.
                *shared.last_pong.lock().expect("last pong poisoned") = Instant::now();
                let pending = {
                    let mut st = shared.state.lock().expect("wire client state poisoned");
                    let pending = st.pending.remove(&query_id);
                    if pending.is_some() {
                        st.in_flight = st.in_flight.saturating_sub(1);
                    }
                    pending
                };
                match pending {
                    Some(p) => {
                        shared.window.notify_all();
                        shared.observe("wire_rtt_ns", p.sent_at.elapsed().as_nanos() as u64);
                        let _ = p.tx.send(Reply::Completion { error, samples });
                    }
                    None => {
                        // Reply for a query we already timed out on.
                        shared.wire_event("orphan_completion", query_id, "reply after timeout");
                    }
                }
            }
            Ok(Message::HeartbeatAck { .. }) => {
                *shared.last_pong.lock().expect("last pong poisoned") = Instant::now();
            }
            Ok(Message::Goodbye { served }) => {
                shared.wire_event("goodbye", 0, &format!("served={served}"));
                shared.fail("server closed after drain");
                return;
            }
            Ok(other) => {
                shared.fail(&format!(
                    "unexpected message from server: {}",
                    other.tag_name()
                ));
                return;
            }
            Err(e) => {
                if !shared.stopping.load(Ordering::SeqCst) {
                    shared.fail(&format!("read failed: {e}"));
                }
                return;
            }
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Pings the server every `heartbeat_interval`; a completion or ack
/// refreshes `last_pong`, and `heartbeat_grace` of silence kills the
/// connection so blocked issuers resolve as errored instead of hanging.
fn heartbeat_loop(shared: &Arc<ClientShared>) {
    let mut seq: u64 = 0;
    loop {
        std::thread::sleep(shared.config.heartbeat_interval);
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        {
            let st = shared.state.lock().expect("wire client state poisoned");
            if !st.connected {
                return;
            }
        }
        seq += 1;
        if shared.send(&Message::Heartbeat { seq }).is_err() {
            return;
        }
        shared.incr("wire_heartbeats");
        let silence = shared
            .last_pong
            .lock()
            .expect("last pong poisoned")
            .elapsed();
        if silence > shared.config.heartbeat_grace {
            shared.wire_event(
                "heartbeat_loss",
                0,
                &format!("no ack for {} ms", silence.as_millis()),
            );
            shared.fail("heartbeat loss");
            return;
        }
    }
}

//! The LoadGen-side endpoint: [`RemoteSut`].
//!
//! `RemoteSut` implements [`RealtimeSut`], so `run_realtime` drives a
//! machine on the other end of a TCP connection exactly as it drives an
//! in-process SUT. Internally it keeps a bounded in-flight window
//! (backpressure), a reader thread routing completion frames to blocked
//! issuers, and a heartbeat thread that detects a silently dead peer. With
//! a [`ResumePolicy`] armed, the reader also owns the reconnect loop: on a
//! severed link it redials with bounded backoff, re-handshakes with the
//! same session id at a bumped epoch, and replays every in-flight query —
//! the server's completion journal dedups by wire id, so nothing is
//! double-counted.
//!
//! Failure mapping — this is the contract the validity rules lean on:
//!
//! * corrupt frame (CRC failure), protocol violation, or heartbeat loss →
//!   [`IssueOutcome::Errored`] → errored completions → the
//!   `ErrorFractionExceeded` rule: the link was alive enough to prove the
//!   peer misbehaved;
//! * hard disconnect (EOF/reset) without resume, or resume exhausted →
//!   [`IssueOutcome::Vanished`] → the queries stay outstanding → the
//!   `IncompleteQueries` rule and the TEST06 completeness audit: the
//!   completions' fate is genuinely unknown, and claiming "errored" would
//!   fabricate a resolution;
//! * response timeout on a live connection (the server swallowed the
//!   frame) → [`IssueOutcome::Vanished`], as before.
//!
//! No path can hang the run.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::query::{Query, SampleCompletion};
use mlperf_loadgen::sut::{IssueOutcome, RealtimeSut};
use mlperf_trace::event::{parse_detail_log, TraceEvent, TraceSink};
use mlperf_trace::metrics::MetricsRegistry;

use crate::clock::{ClockEstimator, ClockSample};
use crate::frame::WireError;
use crate::message::{Hello, Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::transport::{splitmix64, ChaosSession, TcpTransport, Transport, WireChaosPlan};

/// How long [`RemoteSut::shutdown`] waits for the server's drained
/// goodbye (and the event shipment that precedes it) before closing the
/// socket regardless. Only applies on v3 links with a trace sink.
const GOODBYE_WAIT: Duration = Duration::from_secs(2);

/// How a [`RemoteSut`] reconnects after a severed link.
#[derive(Debug, Clone, Copy)]
pub struct ResumePolicy {
    /// Redial attempts per outage before the run is failed.
    pub max_attempts: u32,
    /// Base backoff; attempt `n` sleeps `n × backoff` (bounded linear).
    pub backoff: Duration,
}

impl Default for ResumePolicy {
    fn default() -> Self {
        ResumePolicy {
            max_attempts: 5,
            backoff: Duration::from_millis(20),
        }
    }
}

/// Tuning knobs for a [`RemoteSut`] connection.
#[derive(Debug, Clone)]
pub struct RemoteSutConfig {
    /// Backpressure window: issuers block once this many queries are on
    /// the wire without a completion.
    pub max_in_flight: u32,
    /// How long an issuer waits for its completion frame before declaring
    /// the query vanished.
    pub response_timeout: Duration,
    /// Interval between heartbeat frames.
    pub heartbeat_interval: Duration,
    /// Silence tolerated (no heartbeat ack, no completion) before the
    /// connection is declared dead.
    pub heartbeat_grace: Duration,
    /// Reconnect-and-resume policy; `None` (the default) fails the link on
    /// the first disconnect, as protocol v1 did.
    pub resume: Option<ResumePolicy>,
    /// Client-side wire chaos plan, for fault-injection testing. `None`
    /// (or a disarmed plan) leaves the transport untouched.
    pub chaos: Option<WireChaosPlan>,
    /// Protocol version to offer in the handshake. Defaults to
    /// [`PROTOCOL_VERSION`]; set to an older supported version (e.g. `2`)
    /// to interoperate with a daemon that has not been upgraded. Trace
    /// propagation, clock probes, and event shipping need v3.
    pub protocol: u16,
    /// Wire epoch to open the session at. `0` (the default) starts a
    /// fresh session; a nonzero value re-adopts the session's server-side
    /// completion journal, exactly as an in-process reconnect would —
    /// this is how a run resumed from a crash-safe journal reclaims its
    /// wire session after the client process died.
    pub initial_epoch: u32,
}

impl Default for RemoteSutConfig {
    fn default() -> Self {
        RemoteSutConfig {
            max_in_flight: 64,
            response_timeout: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_grace: Duration::from_secs(2),
            resume: None,
            chaos: None,
            protocol: PROTOCOL_VERSION,
            initial_epoch: 0,
        }
    }
}

impl RemoteSutConfig {
    /// Overrides the in-flight window.
    #[must_use]
    pub fn with_max_in_flight(mut self, n: u32) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Overrides the per-query response timeout.
    #[must_use]
    pub fn with_response_timeout(mut self, t: Duration) -> Self {
        self.response_timeout = t;
        self
    }

    /// Overrides the heartbeat interval and grace window.
    #[must_use]
    pub fn with_heartbeat(mut self, interval: Duration, grace: Duration) -> Self {
        self.heartbeat_interval = interval;
        self.heartbeat_grace = grace;
        self
    }

    /// Arms reconnect-and-resume with the given policy.
    #[must_use]
    pub fn with_resume(mut self, policy: ResumePolicy) -> Self {
        self.resume = Some(policy);
        self
    }

    /// Arms a client-side wire chaos plan.
    #[must_use]
    pub fn with_chaos(mut self, plan: WireChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Offers an older protocol version in the handshake.
    #[must_use]
    pub fn with_protocol(mut self, version: u16) -> Self {
        self.protocol = version;
        self
    }

    /// Opens the session at a nonzero epoch, re-adopting its server-side
    /// completion journal (crash-resume handshake).
    #[must_use]
    pub fn with_initial_epoch(mut self, epoch: u32) -> Self {
        self.initial_epoch = epoch;
        self
    }
}

/// How a terminally failed link resolves its queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailKind {
    /// The peer provably misbehaved → errored completions.
    Errored,
    /// The queries' fate is unknown → they stay outstanding.
    Vanished,
}

impl FailKind {
    fn outcome(self) -> IssueOutcome {
        match self {
            FailKind::Errored => IssueOutcome::Errored,
            FailKind::Vanished => IssueOutcome::Vanished,
        }
    }
}

/// Link state. `Down` is transient: the reader thread owns the reconnect
/// and either restores `Up` or settles on `Dead`.
#[derive(Debug, Clone, Copy)]
enum Link {
    Up,
    Down,
    Dead(FailKind),
}

/// What the reader thread hands back to a blocked issuer.
enum Reply {
    Completion {
        error: bool,
        samples: Vec<SampleCompletion>,
    },
    Failed(FailKind),
}

struct Pending {
    tx: mpsc::Sender<Reply>,
    sent_at: Instant,
    /// Kept for replay: a resumed link re-sends every in-flight query.
    query: Query,
    /// Trace context carried by the issue frame; `0` on a v2 link. A
    /// replay re-sends the *same* id, so the merged log stays exactly-once
    /// per trace.
    trace_id: u64,
}

struct ClientState {
    link: Link,
    reason: String,
    epoch: u32,
    in_flight: u32,
    pending: HashMap<u64, Pending>,
}

struct ClientShared {
    config: RemoteSutConfig,
    addrs: Vec<SocketAddr>,
    base_hello: Hello,
    writer: Mutex<Box<dyn Transport>>,
    chaos: Option<Arc<ChaosSession>>,
    state: Mutex<ClientState>,
    window: Condvar,
    start: Instant,
    last_pong: Mutex<Instant>,
    stopping: AtomicBool,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    /// Protocol version both ends agreed on at the handshake.
    negotiated: AtomicU16,
    /// Live wire epoch, mirrored for journal checkpoints: bumped on every
    /// reconnect, read (lock-free) each time a checkpoint is captured.
    epoch_watch: Arc<AtomicU32>,
    /// Client↔server clock offset, tightened by every probe.
    estimator: ClockEstimator,
    /// Sequence numbers for clock probes (handshake + heartbeats).
    probe_seq: AtomicU64,
}

impl ClientShared {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Whether the negotiated protocol carries trace context (v3+).
    fn traced(&self) -> bool {
        self.negotiated.load(Ordering::SeqCst) >= 3
    }

    /// Deterministic trace id for one wire query: a resumed session
    /// replays in-flight queries under the *same* ids, so the merged log
    /// stays exactly-once per trace. Never returns 0 (the untraced
    /// sentinel).
    fn trace_id_for(&self, query_id: u64) -> u64 {
        let id = splitmix64(self.base_hello.session ^ splitmix64(query_id ^ 0x7261_6365)); // "race"
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Records one client-side span into the trace sink (no-op untraced).
    fn span_event(&self, ts_ns: u64, trace_id: u64, query_id: u64, phase: &str, dur_ns: u64) {
        if trace_id == 0 {
            return;
        }
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(
                    ts_ns,
                    &TraceEvent::SpanEvent {
                        host: "client".to_string(),
                        trace_id,
                        query_id,
                        phase: phase.to_string(),
                        dur_ns,
                    },
                );
            }
        }
    }

    /// Fires one clock probe at the server (best-effort).
    fn send_probe(&self) {
        let seq = self.probe_seq.fetch_add(1, Ordering::SeqCst);
        let _ = self.send(&Message::ClockProbe {
            seq,
            t0: self.now_ns(),
        });
    }

    fn wire_event(&self, kind: &str, query_id: u64, detail: &str) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(
                    self.now_ns(),
                    &TraceEvent::WireEvent {
                        endpoint: "client".to_string(),
                        kind: kind.to_string(),
                        query_id,
                        detail: detail.to_string(),
                    },
                );
            }
        }
    }

    fn incr(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.incr(name, 1);
        }
    }

    fn observe(&self, name: &str, value: u64) {
        if let Some(m) = &self.metrics {
            m.observe(name, value);
        }
    }

    /// Marks the link terminally dead and wakes every blocked issuer with
    /// [`Reply::Failed`]. Idempotent; the first reason and kind win.
    fn fail(&self, reason: &str, kind: FailKind) {
        let mut st = self.state.lock().expect("wire client state poisoned");
        if matches!(st.link, Link::Dead(_)) {
            return;
        }
        st.link = Link::Dead(kind);
        st.reason = reason.to_string();
        st.in_flight = 0;
        for (_, pending) in st.pending.drain() {
            let _ = pending.tx.send(Reply::Failed(kind));
        }
        drop(st);
        self.window.notify_all();
        self.incr("wire_disconnects");
        if !self.stopping.load(Ordering::SeqCst) {
            self.wire_event("disconnect", 0, reason);
        }
    }

    /// Marks the link down (resume pending) and severs the current
    /// transport so the reader notices. Pending queries stay registered —
    /// the reconnect replays them. No-op unless the link is up.
    fn sever(&self, reason: &str) {
        {
            let mut st = self.state.lock().expect("wire client state poisoned");
            if !matches!(st.link, Link::Up) {
                return;
            }
            st.link = Link::Down;
            st.reason = reason.to_string();
        }
        self.writer.lock().expect("wire writer poisoned").shutdown();
        self.window.notify_all();
        self.incr("wire_severs");
        if !self.stopping.load(Ordering::SeqCst) {
            self.wire_event("sever", 0, reason);
        }
    }

    /// Whether a send/read failure should be handled by reconnecting
    /// rather than failing the run.
    fn resume_armed(&self) -> bool {
        self.config.resume.is_some() && !self.stopping.load(Ordering::SeqCst)
    }

    /// Encodes and sends one frame, timing the encode. A socket failure
    /// severs the link (resume armed) or fails the run; either way the
    /// caller may treat the send as best-effort, because a resumed link
    /// replays every pending query.
    fn send(&self, msg: &Message) -> Result<(), WireError> {
        let encode_started = Instant::now();
        let payload = msg.to_wire();
        self.observe("wire_encode_ns", encode_started.elapsed().as_nanos() as u64);
        let result = {
            let mut writer = self.writer.lock().expect("wire writer poisoned");
            writer.send(&payload)
        };
        match result {
            Ok(()) => {
                self.incr("wire_frames_sent");
                Ok(())
            }
            Err(e) => {
                if !self.stopping.load(Ordering::SeqCst) {
                    if self.resume_armed() {
                        self.sever(&format!("send failed: {e}"));
                    } else {
                        // The frame never left; its fate (and that of every
                        // in-flight sibling) is unknown.
                        self.fail(&format!("send failed: {e}"), FailKind::Vanished);
                    }
                }
                Err(e)
            }
        }
    }
}

/// A freshly dialed, handshaken link: writer half, reader half, the peer
/// address, the server's SUT name, and the negotiated protocol version.
type DialedLink = (Box<dyn Transport>, Box<dyn Transport>, String, String, u16);

/// Dials `addrs` in order and performs the versioned handshake over the
/// (optionally chaos-wrapped) transport.
fn dial(
    addrs: &[SocketAddr],
    hello: &Hello,
    chaos: Option<&Arc<ChaosSession>>,
) -> Result<DialedLink, WireError> {
    let mut last_err = WireError::Disconnected("no addresses to dial".to_string());
    for addr in addrs {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                last_err = e.into();
                continue;
            }
        };
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        let base: Box<dyn Transport> = Box::new(TcpTransport::new(stream));
        let mut transport = match chaos {
            Some(session) => session.wrap(base),
            None => base,
        };
        transport.send(&Message::Hello(hello.clone()).to_wire())?;
        let ack = Message::from_wire(&transport.recv()?)?;
        let (version, sut_name) = match ack {
            Message::HelloAck {
                version, sut_name, ..
            } => (version, sut_name),
            Message::Reject { reason } => return Err(WireError::Rejected(reason)),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected HelloAck, got {}",
                    other.tag_name()
                )))
            }
        };
        // The server answers at a version no newer than what we offered
        // and no older than the floor both sides support.
        if !(MIN_PROTOCOL_VERSION..=hello.version).contains(&version) {
            return Err(WireError::VersionMismatch {
                ours: hello.version,
                theirs: version,
            });
        }
        let reader = transport.try_clone()?;
        return Ok((transport, reader, peer, sut_name, version));
    }
    Err(last_err)
}

/// A [`RealtimeSut`] whose machinery lives on the other end of a TCP
/// connection. See the module docs for the failure mapping.
pub struct RemoteSut {
    name: String,
    peer: String,
    shared: Arc<ClientShared>,
    reader: Mutex<Option<JoinHandle<()>>>,
    heartbeat: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for RemoteSut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSut")
            .field("name", &self.name)
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

impl RemoteSut {
    /// Connects and performs the versioned handshake.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the TCP connect fails,
    /// [`WireError::VersionMismatch`] / [`WireError::Rejected`] if the
    /// server refuses the handshake, and [`WireError::Protocol`] if the
    /// server answers with anything but `HelloAck`/`Reject`.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        hello: Hello,
        config: RemoteSutConfig,
    ) -> Result<Self, WireError> {
        Self::connect_instrumented(addr, hello, config, None, None)
    }

    /// [`RemoteSut::connect`], wiring trace events and wire histograms
    /// into the given sink and registry.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`RemoteSut::connect`].
    pub fn connect_instrumented<A: ToSocketAddrs>(
        addr: A,
        hello: Hello,
        config: RemoteSutConfig,
        sink: Option<Arc<dyn TraceSink>>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Result<Self, WireError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut hello = hello;
        hello.resume = config.resume.is_some() || config.initial_epoch > 0;
        hello.epoch = config.initial_epoch;
        let chaos = config
            .chaos
            .clone()
            .map(|plan| Arc::new(ChaosSession::new(plan, "client", sink.clone())));

        let (writer, reader_transport, peer, sut_name, negotiated) =
            dial(&addrs, &hello, chaos.as_ref())?;
        let epoch0 = hello.epoch;

        let shared = Arc::new(ClientShared {
            config,
            addrs,
            base_hello: hello,
            writer: Mutex::new(writer),
            chaos,
            state: Mutex::new(ClientState {
                link: Link::Up,
                reason: String::new(),
                epoch: epoch0,
                in_flight: 0,
                pending: HashMap::new(),
            }),
            window: Condvar::new(),
            epoch_watch: Arc::new(AtomicU32::new(epoch0)),
            start: Instant::now(),
            last_pong: Mutex::new(Instant::now()),
            stopping: AtomicBool::new(false),
            sink,
            metrics,
            negotiated: AtomicU16::new(negotiated),
            estimator: ClockEstimator::new(),
            probe_seq: AtomicU64::new(0),
        });
        shared.wire_event(
            "handshake",
            0,
            &format!("peer={peer} sut={sut_name} v{negotiated}"),
        );
        // First clock sample right away, so even a short run gets an
        // aligned axis; heartbeats keep tightening it.
        if shared.traced() {
            shared.send_probe();
        }

        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wire-reader".to_string())
                .spawn(move || reader_loop(&shared, reader_transport))
                .map_err(WireError::Io)?
        };
        let heartbeat = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wire-heartbeat".to_string())
                .spawn(move || heartbeat_loop(&shared))
                .map_err(WireError::Io)?
        };

        Ok(RemoteSut {
            name: sut_name,
            peer,
            shared,
            reader: Mutex::new(Some(reader)),
            heartbeat: Mutex::new(Some(heartbeat)),
        })
    }

    /// Builds the handshake `Hello` for a run: scenario, seeds, and QSL
    /// size are negotiated up front so both ends agree on what the run is.
    /// The session id is a stable hash of those run parameters, so a
    /// reconnect resumes *this* run's journal and nothing else.
    pub fn hello_for(settings: &TestSettings, qsl_size: u64, config: &RemoteSutConfig) -> Hello {
        let session = splitmix64(
            settings.seeds.qsl_seed
                ^ splitmix64(settings.seeds.schedule_seed)
                ^ splitmix64(qsl_size ^ ((settings.scenario as u64) << 56)),
        );
        Hello {
            version: config.protocol,
            scenario: settings.scenario,
            seeds: settings.seeds,
            qsl_size,
            max_in_flight: config.max_in_flight,
            session,
            epoch: 0,
            resume: config.resume.is_some(),
        }
    }

    /// The peer address this client connected to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// The protocol version both ends agreed on at the handshake.
    pub fn negotiated_version(&self) -> u16 {
        self.shared.negotiated.load(Ordering::SeqCst)
    }

    /// The session id identifying this run's journal on the server.
    pub fn session(&self) -> u64 {
        self.shared.base_hello.session
    }

    /// Live view of the wire epoch: starts at the handshake epoch and is
    /// bumped on every reconnect. Hand it to the run journal's
    /// `epoch_source` so each checkpoint records which epoch to resume at.
    pub fn epoch_source(&self) -> Arc<AtomicU32> {
        Arc::clone(&self.shared.epoch_watch)
    }

    /// The instant this client's span clock (and wire-event clock) starts
    /// at. Drive the run loop with the same origin and run events land on
    /// the same axis as the wire spans.
    pub fn clock_origin(&self) -> Instant {
        self.shared.start
    }

    /// Estimated `server_clock - client_clock` in nanoseconds, if at
    /// least one clock probe completed.
    pub fn clock_offset_ns(&self) -> Option<i64> {
        self.shared.estimator.offset_ns()
    }

    /// Worst-case error of [`RemoteSut::clock_offset_ns`] (half the best
    /// probe's RTT). Monotonically non-increasing over a run.
    pub fn clock_error_bound_ns(&self) -> Option<u64> {
        self.shared.estimator.error_bound_ns()
    }

    /// Whether the link is up (not reconnecting, not dead).
    pub fn is_connected(&self) -> bool {
        matches!(
            self.shared
                .state
                .lock()
                .expect("wire client state poisoned")
                .link,
            Link::Up
        )
    }

    /// Sends `Drain`, closes the socket, and joins the worker threads.
    /// Called by `Drop`; safe to call more than once.
    pub fn shutdown(&self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        if self.is_connected() {
            let _ = self.shared.send(&Message::Drain);
            self.shared.wire_event("drain", 0, "");
            // On a traced link with a sink attached, the server ships its
            // spans and a goodbye after draining; wait (bounded) so the
            // merged log actually gets them before the socket closes.
            if self.shared.sink.is_some() && self.shared.traced() {
                let deadline = Instant::now() + GOODBYE_WAIT;
                let mut st = self
                    .shared
                    .state
                    .lock()
                    .expect("wire client state poisoned");
                while matches!(st.link, Link::Up) && Instant::now() < deadline {
                    let (guard, _timeout) = self
                        .shared
                        .window
                        .wait_timeout(st, Duration::from_millis(20))
                        .expect("wire client state poisoned");
                    st = guard;
                }
            }
        }
        self.shared
            .writer
            .lock()
            .expect("wire writer poisoned")
            .shutdown();
        self.shared.fail("client shutdown", FailKind::Errored);
        // A reconnect racing this shutdown may have installed a fresh
        // transport after the sever above; the reconnect path re-checks
        // `stopping`/`Dead` before installing, so at most one extra sever
        // is needed.
        self.shared
            .writer
            .lock()
            .expect("wire writer poisoned")
            .shutdown();
        if let Some(handle) = self.reader.lock().expect("reader handle poisoned").take() {
            let _ = handle.join();
        }
        if let Some(handle) = self
            .heartbeat
            .lock()
            .expect("heartbeat handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }

    /// Severs the link *without* draining — the client-side analog of
    /// [`ServerHandle::kill`](crate::server::ServerHandle::kill),
    /// simulating this process dying mid-run. The server sees a dirty
    /// disconnect and keeps the session (and its durable journal, when
    /// configured) alive for a successor client to resume at a bumped
    /// epoch. Safe to call more than once; a later `Drop` is a no-op.
    pub fn abandon(&self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared
            .wire_event("abandon", 0, "severed without drain");
        self.shared
            .writer
            .lock()
            .expect("wire writer poisoned")
            .shutdown();
        self.shared.fail("client abandoned", FailKind::Vanished);
        self.shared
            .writer
            .lock()
            .expect("wire writer poisoned")
            .shutdown();
        if let Some(handle) = self.reader.lock().expect("reader handle poisoned").take() {
            let _ = handle.join();
        }
        if let Some(handle) = self
            .heartbeat
            .lock()
            .expect("heartbeat handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for RemoteSut {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl RealtimeSut for RemoteSut {
    fn name(&self) -> &str {
        &self.name
    }

    fn issue(&self, query: &Query) -> Vec<SampleCompletion> {
        match self.issue_outcome(query) {
            IssueOutcome::Completed(samples) => samples,
            // `issue` has no failure channel; echo empty payloads so the
            // recorder's sample-id checks still hold. `run_realtime` uses
            // `issue_outcome` and never hits this path.
            IssueOutcome::Errored | IssueOutcome::Vanished => query
                .samples
                .iter()
                .map(|s| SampleCompletion {
                    sample_id: s.id,
                    payload: Default::default(),
                })
                .collect(),
        }
    }

    fn issue_outcome(&self, query: &Query) -> IssueOutcome {
        let shared = &self.shared;

        // Backpressure: wait for a slot in the in-flight window, then
        // register ourselves before the frame leaves so a fast reply
        // cannot race past the routing table. A `Down` link still admits
        // registrations — the reconnect replays them.
        let trace_id = if shared.traced() {
            shared.trace_id_for(query.id)
        } else {
            0
        };
        let rx = {
            let mut st = shared.state.lock().expect("wire client state poisoned");
            loop {
                match st.link {
                    Link::Dead(kind) => return kind.outcome(),
                    _ if st.in_flight < shared.config.max_in_flight => break,
                    _ => st = shared.window.wait(st).expect("wire client state poisoned"),
                }
            }
            let (tx, rx) = mpsc::channel();
            st.in_flight += 1;
            st.pending.insert(
                query.id,
                Pending {
                    tx,
                    sent_at: Instant::now(),
                    query: query.clone(),
                    trace_id,
                },
            );
            rx
        };

        shared.span_event(shared.now_ns(), trace_id, query.id, "issue", 0);
        // Best-effort: a send failure severs or fails the link. Severed,
        // our pending entry survives and the resume replay re-sends it;
        // failed, `fail` already resolved our channel.
        let _ = shared.send(&issue_message(query.clone(), trace_id));

        match rx.recv_timeout(shared.config.response_timeout) {
            Ok(Reply::Completion { error, samples }) => {
                if error {
                    IssueOutcome::Errored
                } else {
                    IssueOutcome::Completed(samples)
                }
            }
            Ok(Reply::Failed(kind)) => kind.outcome(),
            Err(_) => {
                let mut st = shared.state.lock().expect("wire client state poisoned");
                if st.pending.remove(&query.id).is_some() {
                    st.in_flight = st.in_flight.saturating_sub(1);
                    drop(st);
                    shared.window.notify_all();
                    shared.incr("wire_timeouts");
                    shared.wire_event(
                        "response_timeout",
                        query.id,
                        "no completion frame within the response timeout",
                    );
                    IssueOutcome::Vanished
                } else {
                    // The reply raced in between our timeout and taking
                    // the lock; it is sitting in the channel.
                    drop(st);
                    match rx.try_recv() {
                        Ok(Reply::Completion {
                            error: false,
                            samples,
                        }) => IssueOutcome::Completed(samples),
                        Ok(Reply::Failed(kind)) => kind.outcome(),
                        _ => IssueOutcome::Errored,
                    }
                }
            }
        }
    }
}

/// The issue frame for one query: trace context attached when the link
/// negotiated v3, the plain v2 frame otherwise.
fn issue_message(query: Query, trace_id: u64) -> Message {
    if trace_id != 0 {
        Message::IssueTraced { trace_id, query }
    } else {
        Message::Issue(query)
    }
}

/// How a read error resolves the link when resume is off (or exhausted).
fn classify(e: &WireError) -> (String, FailKind) {
    match e {
        // An integrity or protocol failure proves the peer (or the path)
        // is actively garbling the run.
        WireError::Frame(fe) => (format!("corrupt frame: {fe}"), FailKind::Errored),
        WireError::Protocol(msg) => (format!("protocol error: {msg}"), FailKind::Errored),
        // EOF/reset: in-flight completions may or may not have resolved
        // remotely; their fate is unknown.
        other => (format!("read failed: {other}"), FailKind::Vanished),
    }
}

/// Reads frames until the link terminally dies, routing completions to
/// their blocked issuers, acks to the heartbeat monitor, and — with resume
/// armed — owning the reconnect loop.
fn reader_loop(shared: &Arc<ClientShared>, mut transport: Box<dyn Transport>) {
    loop {
        let decode_started = Instant::now();
        let message = transport.recv().and_then(|payload| {
            let msg = Message::from_wire(&payload);
            shared.observe("wire_decode_ns", decode_started.elapsed().as_nanos() as u64);
            msg
        });
        match message {
            Ok(Message::Completion {
                query_id,
                error,
                samples,
            }) => {
                shared.incr("wire_frames_received");
                // A completion is as good as a heartbeat ack for liveness.
                *shared.last_pong.lock().expect("last pong poisoned") = Instant::now();
                let pending = {
                    let mut st = shared.state.lock().expect("wire client state poisoned");
                    let pending = st.pending.remove(&query_id);
                    if pending.is_some() {
                        st.in_flight = st.in_flight.saturating_sub(1);
                    }
                    pending
                };
                match pending {
                    Some(p) => {
                        shared.window.notify_all();
                        shared.observe("wire_rtt_ns", p.sent_at.elapsed().as_nanos() as u64);
                        shared.span_event(shared.now_ns(), p.trace_id, query_id, "complete", 0);
                        let _ = p.tx.send(Reply::Completion { error, samples });
                    }
                    None => {
                        // Reply for a query we already resolved: a timeout,
                        // or a journal replay whose original made it
                        // through. Either way it must not count twice.
                        shared.incr("wire_orphan_completions");
                        shared.wire_event("orphan_completion", query_id, "already resolved");
                    }
                }
            }
            Ok(Message::HeartbeatAck { .. }) => {
                *shared.last_pong.lock().expect("last pong poisoned") = Instant::now();
            }
            Ok(Message::ClockProbeAck { seq: _, t0, t1, t2 }) => {
                // A probe ack is as good as a heartbeat ack for liveness.
                *shared.last_pong.lock().expect("last pong poisoned") = Instant::now();
                let sample = ClockSample {
                    t0,
                    t1,
                    t2,
                    t3: shared.now_ns(),
                };
                shared.incr("wire_clock_probes");
                if shared.estimator.observe(sample) {
                    shared.observe("wire_clock_rtt_ns", sample.rtt_ns());
                    if let Some(sink) = &shared.sink {
                        if sink.enabled() {
                            sink.record(
                                shared.now_ns(),
                                &TraceEvent::ClockSync {
                                    host: "server".to_string(),
                                    offset_ns: sample.offset_ns(),
                                    rtt_ns: sample.rtt_ns(),
                                },
                            );
                        }
                    }
                }
            }
            Ok(Message::Events { jsonl }) => {
                // The server shipping its spans at drain. Re-stamp each
                // record from the server clock onto ours using the offset
                // estimate, then merge into the local sink.
                match parse_detail_log(&jsonl) {
                    Ok(records) => {
                        shared.incr("wire_event_frames");
                        if let Some(sink) = &shared.sink {
                            for record in records {
                                if sink.enabled() {
                                    sink.record(
                                        shared.estimator.align_to_client(record.ts_ns),
                                        &record.event,
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => {
                        shared.wire_event("bad_events_frame", 0, &format!("{e}"));
                    }
                }
            }
            Ok(Message::Goodbye { served }) => {
                shared.wire_event("goodbye", 0, &format!("served={served}"));
                shared.fail("server closed after drain", FailKind::Errored);
                return;
            }
            Ok(other) => {
                shared.fail(
                    &format!("unexpected message from server: {}", other.tag_name()),
                    FailKind::Errored,
                );
                return;
            }
            Err(e) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                let (reason, kind) = classify(&e);
                if let WireError::Frame(_) = e {
                    shared.incr("wire_crc_failures");
                    shared.wire_event("corrupt_frame", 0, &reason);
                }
                if matches!(
                    shared
                        .state
                        .lock()
                        .expect("wire client state poisoned")
                        .link,
                    Link::Dead(_)
                ) {
                    return; // e.g. heartbeat loss already failed the run
                }
                let Some(policy) = shared.config.resume else {
                    shared.fail(&reason, kind);
                    return;
                };
                shared.sever(&reason);
                match reconnect(shared, policy) {
                    Some(new_reader) => {
                        transport = new_reader;
                        continue;
                    }
                    None => {
                        shared.fail(
                            &format!(
                                "resume failed after {} attempts: {reason}",
                                policy.max_attempts.max(1)
                            ),
                            kind,
                        );
                        return;
                    }
                }
            }
        }
        // During a shutdown drain the reader must keep going long enough
        // to absorb the server's shipped events and goodbye — those paths
        // return on their own. Bail here only once the link is settled.
        if shared.stopping.load(Ordering::SeqCst)
            && matches!(
                shared
                    .state
                    .lock()
                    .expect("wire client state poisoned")
                    .link,
                Link::Dead(_)
            )
        {
            return;
        }
    }
}

/// Redials with bounded backoff, re-handshakes at a bumped epoch, installs
/// the fresh transport, and replays every in-flight query. Returns the new
/// reader half, or `None` when the attempts are exhausted.
fn reconnect(shared: &Arc<ClientShared>, policy: ResumePolicy) -> Option<Box<dyn Transport>> {
    for attempt in 1..=policy.max_attempts.max(1) {
        if shared.stopping.load(Ordering::SeqCst) {
            return None;
        }
        std::thread::sleep(policy.backoff.saturating_mul(attempt));
        if shared.stopping.load(Ordering::SeqCst) {
            return None;
        }
        let hello = {
            let mut st = shared.state.lock().expect("wire client state poisoned");
            st.epoch += 1;
            shared.epoch_watch.store(st.epoch, Ordering::SeqCst);
            let mut hello = shared.base_hello.clone();
            hello.epoch = st.epoch;
            hello.resume = true;
            hello
        };
        let (writer, reader, _peer, _name, _version) =
            match dial(&shared.addrs, &hello, shared.chaos.as_ref()) {
                Ok(parts) => parts,
                Err(e) => {
                    shared.wire_event(
                        "resume_attempt_failed",
                        0,
                        &format!("epoch={} attempt={attempt}: {e}", hello.epoch),
                    );
                    continue;
                }
            };

        // Install atomically against shutdown/fail: once the link is Up
        // with the new writer in place, a later sever closes *this*
        // transport and nothing leaks.
        let replay = {
            let mut st = shared.state.lock().expect("wire client state poisoned");
            if shared.stopping.load(Ordering::SeqCst) || matches!(st.link, Link::Dead(_)) {
                writer.shutdown();
                reader.shutdown();
                return None;
            }
            st.link = Link::Up;
            st.reason.clear();
            let mut queries: Vec<(Query, u64)> = st
                .pending
                .values()
                .map(|p| (p.query.clone(), p.trace_id))
                .collect();
            queries.sort_by_key(|(q, _)| q.id);
            *shared.writer.lock().expect("wire writer poisoned") = writer;
            queries
        };
        *shared.last_pong.lock().expect("last pong poisoned") = Instant::now();
        shared.window.notify_all();
        shared.incr("wire_resumes");
        shared.wire_event(
            "resume",
            0,
            &format!(
                "epoch={} attempt={attempt} replaying {} in-flight",
                hello.epoch,
                replay.len()
            ),
        );
        // A fresh link means a fresh network path: re-probe the clock so
        // the estimate reflects it.
        if shared.traced() {
            shared.send_probe();
        }
        // Replay the in-flight window under the *same* trace ids; the
        // server dedups by wire id, so a query that also made it out the
        // first time is served once and traced once.
        for (query, trace_id) in replay {
            if shared.send(&issue_message(query, trace_id)).is_err() {
                break; // the new link died already; the reader will retry
            }
        }
        return Some(reader);
    }
    None
}

/// Pings the server every `heartbeat_interval`; a completion or ack
/// refreshes `last_pong`. `heartbeat_grace` of silence severs the link
/// (resume armed — the reader reconnects) or fails the run as errored, so
/// blocked issuers resolve instead of hanging.
fn heartbeat_loop(shared: &Arc<ClientShared>) {
    let mut seq: u64 = 0;
    loop {
        std::thread::sleep(shared.config.heartbeat_interval);
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        {
            let st = shared.state.lock().expect("wire client state poisoned");
            match st.link {
                Link::Dead(_) => return,
                // Reconnecting: silence is expected; the resume resets the
                // pong clock.
                Link::Down => continue,
                Link::Up => {}
            }
        }
        seq += 1;
        // On a traced link every heartbeat doubles as a clock probe: the
        // ack refreshes liveness *and* can tighten the offset estimate.
        let ping = if shared.traced() {
            Message::ClockProbe {
                seq,
                t0: shared.now_ns(),
            }
        } else {
            Message::Heartbeat { seq }
        };
        if shared.send(&ping).is_err() {
            continue; // sever/fail already handled by `send`
        }
        shared.incr("wire_heartbeats");
        let silence = shared
            .last_pong
            .lock()
            .expect("last pong poisoned")
            .elapsed();
        if silence > shared.config.heartbeat_grace {
            shared.wire_event(
                "heartbeat_loss",
                0,
                &format!("no ack for {} ms", silence.as_millis()),
            );
            if shared.resume_armed() {
                shared.sever("heartbeat loss");
            } else {
                // The peer is alive enough to hold the socket open but
                // not answering: that is misbehavior, not a vanish.
                shared.fail("heartbeat loss", FailKind::Errored);
                return;
            }
        }
    }
}

//! What a serving daemon exports: the [`WireService`] trait.
//!
//! The daemon side of the wire is deliberately wider than
//! [`RealtimeSut`]: a networked SUT can answer, answer with an error, or —
//! if it is cheating — not answer at all. [`WireService::serve`] expresses
//! all three, and every [`RealtimeSut`] is a `WireService` for free via the
//! blanket impl (answers map from [`IssueOutcome`]).
//!
//! [`IssueOutcome`]: mlperf_loadgen::sut::IssueOutcome

use mlperf_loadgen::query::{Query, SampleCompletion};
use mlperf_loadgen::sut::{IssueOutcome, RealtimeSut};

/// A served query's resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedReply {
    /// Per-sample completions (echoing the query's sample ids).
    pub samples: Vec<SampleCompletion>,
    /// Whether the query resolved as an error/drop.
    pub error: bool,
}

impl ServedReply {
    /// An errored reply echoing `query`'s sample ids with empty payloads,
    /// so the client's protocol checks still hold.
    pub fn errored(query: &Query) -> Self {
        ServedReply {
            samples: query
                .samples
                .iter()
                .map(|s| SampleCompletion {
                    sample_id: s.id,
                    payload: Default::default(),
                })
                .collect(),
            error: true,
        }
    }
}

/// Something a wire daemon can export.
///
/// Implementations must be internally synchronized: the daemon invokes
/// `serve` from one worker pool per connection, concurrently.
pub trait WireService: Send + Sync {
    /// Name reported in the handshake (lands in the client's run results).
    fn name(&self) -> &str;

    /// Resolves one query, blocking until done.
    ///
    /// `Some` replies travel back as completion frames (errored or not);
    /// `None` means the service produced *nothing* — the frame is silently
    /// dropped. Only deliberately cheating services return `None`; the
    /// TEST06 completeness audit exists to catch them.
    fn serve(&self, query: &Query) -> Option<ServedReply>;

    /// Called at each handshake: a new connection is a new run, so
    /// stateful services (simulated device queues) clear between runs.
    fn reset(&self) {}
}

impl<T: RealtimeSut + ?Sized> WireService for T {
    fn name(&self) -> &str {
        RealtimeSut::name(self)
    }

    fn serve(&self, query: &Query) -> Option<ServedReply> {
        match self.issue_outcome(query) {
            IssueOutcome::Completed(samples) => Some(ServedReply {
                samples,
                error: false,
            }),
            IssueOutcome::Errored => Some(ServedReply::errored(query)),
            // An honest realtime SUT losing a query has no one downstream
            // to tell; the daemon surfaces it as an errored reply rather
            // than silence (silence is reserved for cheats).
            IssueOutcome::Vanished => Some(ServedReply::errored(query)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_loadgen::query::QuerySample;
    use mlperf_loadgen::sut::SleepSut;
    use mlperf_loadgen::time::Nanos;

    #[test]
    fn realtime_suts_are_services() {
        let sut = SleepSut::new("s", std::time::Duration::ZERO);
        let service: &dyn WireService = &sut;
        let query = Query {
            id: 3,
            samples: vec![QuerySample { id: 30, index: 0 }],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let reply = service.serve(&query).expect("realtime SUTs always reply");
        assert!(!reply.error);
        assert_eq!(reply.samples.len(), 1);
        assert_eq!(service.name(), "s");
    }

    #[test]
    fn errored_reply_echoes_sample_ids() {
        let query = Query {
            id: 9,
            samples: vec![
                QuerySample { id: 90, index: 1 },
                QuerySample { id: 91, index: 2 },
            ],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let reply = ServedReply::errored(&query);
        assert!(reply.error);
        assert_eq!(
            reply
                .samples
                .iter()
                .map(|s| s.sample_id)
                .collect::<Vec<_>>(),
            vec![90, 91]
        );
    }
}

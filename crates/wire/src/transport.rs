//! The frame transport abstraction and its chaos-injecting decorator.
//!
//! [`Transport`] is the seam between the message layer and the raw stream:
//! it moves opaque frame payloads (already [`seal`]ed — checksum included)
//! and nothing else. [`TcpTransport`] is the production implementation;
//! [`ChaosTransport`] decorates any transport with a seeded
//! [`WireChaosPlan`] that corrupts, truncates, duplicates, delays,
//! partitions, or severs frames *below* the CRC check — so every injected
//! fault is caught by the integrity layer or surfaced by the protocol's
//! liveness machinery, never silently absorbed.
//!
//! The plan mirrors the device-side `FaultPlan` design: every injection
//! decision is a pure hash of (plan seed, direction, frame index), so the
//! verdict for frame N is identical however threads interleave, and a
//! disarmed plan is a pure pass-through.
//!
//! [`seal`]: crate::frame::seal

use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlperf_trace::event::{TraceEvent, TraceSink};

use crate::frame::{read_frame, write_frame, WireError};

/// Moves whole frame payloads over some byte stream.
///
/// Implementations are used from one thread at a time per handle; the
/// client keeps the send half behind a mutex and gives the receive half to
/// its reader thread via [`Transport::try_clone`].
pub trait Transport: Send {
    /// Sends one frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] / [`WireError::Disconnected`] when the
    /// stream is gone and [`WireError::Protocol`] for oversized payloads.
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError>;

    /// Receives one frame payload, blocking until a frame or an error.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] on stream failure or EOF and
    /// [`WireError::Protocol`] for an oversized length prefix.
    fn recv(&mut self) -> Result<Vec<u8>, WireError>;

    /// Severs the stream in both directions; pending and future operations
    /// on any clone fail. Best-effort and idempotent.
    fn shutdown(&self);

    /// A second handle to the same stream (shared fault state included).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the underlying handle cannot be cloned.
    fn try_clone(&self) -> Result<Box<dyn Transport>, WireError>;
}

/// The production transport: length-prefixed frames over a [`TcpStream`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpTransport { stream }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.stream, payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        read_frame(&mut self.stream)
    }

    fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn try_clone(&self) -> Result<Box<dyn Transport>, WireError> {
        Ok(Box::new(TcpTransport {
            stream: self.stream.try_clone()?,
        }))
    }
}

/// One round of splitmix64, identical to the device fault layer's mixer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded description of the wire faults to inject. Mirrors the device
/// layer's `FaultPlan`: a default plan is disarmed (pure pass-through), and
/// every probabilistic decision is an order-independent hash of the plan
/// seed and the per-direction frame index.
///
/// "Send" and "recv" are from the *armed endpoint's* point of view: a plan
/// armed on the client corrupts client→server frames via `send` knobs and
/// server→client frames via `recv` knobs.
#[derive(Debug, Clone)]
pub struct WireChaosPlan {
    seed: u64,
    /// Probability a sent frame has one byte flipped.
    pub corrupt_send_prob: f64,
    /// Probability a received frame has one byte flipped.
    pub corrupt_recv_prob: f64,
    /// Flip one byte in exactly this received frame (1-based index).
    pub corrupt_recv_at: Option<u64>,
    /// Truncate exactly this received frame (1-based index).
    pub truncate_recv_at: Option<u64>,
    /// Probability a sent frame is sent twice.
    pub duplicate_send_prob: f64,
    /// Slow-loris: sleep this long before every frame read.
    pub delay_recv: Option<Duration>,
    /// Sever the stream right after this many frames have been sent.
    pub disconnect_after_send: Option<u64>,
    /// One-way partition outbound: swallow every sent frame after this
    /// many (the stream stays open; only silence flows).
    pub partition_send_after: Option<u64>,
    /// One-way partition inbound: discard every received frame after this
    /// many (reads block until the stream dies).
    pub partition_recv_after: Option<u64>,
    /// Re-arm the one-shot faults on every reconnect instead of only the
    /// first connection. Off by default so a resumed session heals.
    pub rearm_on_reconnect: bool,
}

impl WireChaosPlan {
    /// A disarmed plan: decorating a transport with it changes nothing.
    pub fn new(seed: u64) -> Self {
        WireChaosPlan {
            seed,
            corrupt_send_prob: 0.0,
            corrupt_recv_prob: 0.0,
            corrupt_recv_at: None,
            truncate_recv_at: None,
            duplicate_send_prob: 0.0,
            delay_recv: None,
            disconnect_after_send: None,
            partition_send_after: None,
            partition_recv_after: None,
            rearm_on_reconnect: false,
        }
    }

    /// Arms per-frame byte corruption on the send side.
    #[must_use]
    pub fn with_corrupt_send(mut self, prob: f64) -> Self {
        self.corrupt_send_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Arms per-frame byte corruption on the receive side.
    #[must_use]
    pub fn with_corrupt_recv(mut self, prob: f64) -> Self {
        self.corrupt_recv_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Flips one byte in exactly the `n`-th received frame (1-based).
    #[must_use]
    pub fn with_corrupt_recv_at(mut self, n: u64) -> Self {
        self.corrupt_recv_at = Some(n.max(1));
        self
    }

    /// Truncates exactly the `n`-th received frame (1-based).
    #[must_use]
    pub fn with_truncate_recv_at(mut self, n: u64) -> Self {
        self.truncate_recv_at = Some(n.max(1));
        self
    }

    /// Arms per-frame duplication on the send side.
    #[must_use]
    pub fn with_duplicate_send(mut self, prob: f64) -> Self {
        self.duplicate_send_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Arms a slow-loris read delay before every received frame.
    #[must_use]
    pub fn with_delay_recv(mut self, delay: Duration) -> Self {
        self.delay_recv = Some(delay);
        self
    }

    /// Severs the stream right after the `n`-th sent frame (1-based).
    #[must_use]
    pub fn with_disconnect_after_send(mut self, n: u64) -> Self {
        self.disconnect_after_send = Some(n.max(1));
        self
    }

    /// Swallows every sent frame after the `n`-th (one-way partition out).
    #[must_use]
    pub fn with_partition_send_after(mut self, n: u64) -> Self {
        self.partition_send_after = Some(n.max(1));
        self
    }

    /// Discards every received frame after the `n`-th (one-way partition
    /// in).
    #[must_use]
    pub fn with_partition_recv_after(mut self, n: u64) -> Self {
        self.partition_recv_after = Some(n.max(1));
        self
    }

    /// Re-arms one-shot faults on every reconnect (default: first
    /// connection only, so reconnect+resume can heal the link).
    #[must_use]
    pub fn with_rearm_on_reconnect(mut self) -> Self {
        self.rearm_on_reconnect = true;
        self
    }

    /// Whether any fault is armed. A disarmed plan is a pure pass-through.
    pub fn is_armed(&self) -> bool {
        self.corrupt_send_prob > 0.0
            || self.corrupt_recv_prob > 0.0
            || self.corrupt_recv_at.is_some()
            || self.truncate_recv_at.is_some()
            || self.duplicate_send_prob > 0.0
            || self.delay_recv.is_some()
            || self.disconnect_after_send.is_some()
            || self.partition_send_after.is_some()
            || self.partition_recv_after.is_some()
    }

    /// Order-independent per-frame draw in `[0, 1)`: a pure hash of the
    /// plan seed, direction salt, and frame index.
    fn draw(&self, salt: u64, frame: u64) -> f64 {
        let h = splitmix64(self.seed ^ splitmix64(salt ^ frame.wrapping_mul(0x9E37)));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Deterministic byte position to flip in a `len`-byte payload.
    fn flip_at(&self, salt: u64, frame: u64, len: usize) -> usize {
        let h = splitmix64(self.seed ^ splitmix64(salt.wrapping_add(1) ^ frame));
        (h as usize) % len.max(1)
    }
}

/// Fault state shared by every [`ChaosTransport`] clone of one endpoint:
/// per-direction frame counters, once-only latches, and the connection
/// counter that disarms one-shot faults after a resume.
#[derive(Debug, Default)]
struct ChaosState {
    sent: AtomicU64,
    recvd: AtomicU64,
    connections: AtomicU64,
    send_partitioned: AtomicBool,
    recv_partitioned: AtomicBool,
    disconnect_fired: AtomicBool,
}

/// Per-endpoint chaos context: holds the plan, the cross-connection fault
/// state, and the trace sink injections are reported to. One session wraps
/// every (re)connection of its endpoint, so one-shot faults fire exactly
/// once unless the plan re-arms them.
pub struct ChaosSession {
    plan: WireChaosPlan,
    state: Arc<ChaosState>,
    endpoint: &'static str,
    sink: Option<Arc<dyn TraceSink>>,
    start: Instant,
}

impl std::fmt::Debug for ChaosSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosSession")
            .field("plan", &self.plan)
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

impl ChaosSession {
    /// Creates a session for one endpoint (`"client"` or `"server"`).
    pub fn new(
        plan: WireChaosPlan,
        endpoint: &'static str,
        sink: Option<Arc<dyn TraceSink>>,
    ) -> Self {
        ChaosSession {
            plan,
            state: Arc::new(ChaosState::default()),
            endpoint,
            sink,
            start: Instant::now(),
        }
    }

    /// Decorates one (re)connection's transport. The first connection is
    /// armed whenever the plan is; later connections are pass-throughs
    /// unless the plan re-arms on reconnect. Partitions always heal on a
    /// new connection (a reconnect takes a new route).
    pub fn wrap(self: &Arc<Self>, inner: Box<dyn Transport>) -> Box<dyn Transport> {
        let conn = self.state.connections.fetch_add(1, Ordering::SeqCst) + 1;
        self.state.send_partitioned.store(false, Ordering::SeqCst);
        self.state.recv_partitioned.store(false, Ordering::SeqCst);
        let armed = self.plan.is_armed() && (conn == 1 || self.plan.rearm_on_reconnect);
        Box::new(ChaosTransport {
            inner,
            session: Arc::clone(self),
            armed,
        })
    }

    fn emit(&self, fault: &str, frame: u64, detail: String) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(
                    self.start.elapsed().as_nanos() as u64,
                    &TraceEvent::WireFault {
                        endpoint: self.endpoint.to_string(),
                        fault: fault.to_string(),
                        frame,
                        detail,
                    },
                );
            }
        }
    }
}

const SEND_SALT: u64 = 0x5E4D;
const RECV_SALT: u64 = 0x2ECF;

/// A [`Transport`] decorator injecting the faults its [`ChaosSession`]'s
/// plan describes. Disarmed (or cloned from a disarmed connection) it adds
/// one atomic increment per frame to the hot path.
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    session: Arc<ChaosSession>,
    armed: bool,
}

impl Transport for ChaosTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        let frame = self.session.state.sent.fetch_add(1, Ordering::SeqCst) + 1;
        if !self.armed {
            return self.inner.send(payload);
        }
        let plan = &self.session.plan;
        let state = &self.session.state;

        if state.send_partitioned.load(Ordering::SeqCst) {
            return Ok(()); // swallowed: the peer hears only silence
        }
        if let Some(after) = plan.partition_send_after {
            if frame > after {
                state.send_partitioned.store(true, Ordering::SeqCst);
                self.session
                    .emit("partition", frame, "outbound frames swallowed".to_string());
                return Ok(());
            }
        }

        let mut owned;
        let mut to_send = payload;
        if plan.corrupt_send_prob > 0.0
            && plan.draw(SEND_SALT, frame) < plan.corrupt_send_prob
            && !payload.is_empty()
        {
            let pos = plan.flip_at(SEND_SALT, frame, payload.len());
            owned = payload.to_vec();
            owned[pos] ^= 0x20;
            to_send = &owned[..];
            self.session
                .emit("corrupt", frame, format!("send: flipped byte {pos}"));
        }

        self.inner.send(to_send)?;

        if plan.duplicate_send_prob > 0.0
            && plan.draw(SEND_SALT ^ 0xD0B, frame) < plan.duplicate_send_prob
        {
            self.session
                .emit("duplicate", frame, "send: frame sent twice".to_string());
            self.inner.send(to_send)?;
        }

        if let Some(at) = plan.disconnect_after_send {
            if frame >= at && !state.disconnect_fired.swap(true, Ordering::SeqCst) {
                self.session
                    .emit("disconnect", frame, "stream severed mid-run".to_string());
                self.inner.shutdown();
            }
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        if !self.armed {
            self.session.state.recvd.fetch_add(1, Ordering::SeqCst);
            return self.inner.recv();
        }
        let plan = self.session.plan.clone();
        loop {
            let frame = self.session.state.recvd.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(delay) = plan.delay_recv {
                std::thread::sleep(delay);
            }
            let partitioned = self.session.state.recv_partitioned.load(Ordering::SeqCst)
                || plan.partition_recv_after.is_some_and(|after| frame > after);
            if partitioned
                && !self
                    .session
                    .state
                    .recv_partitioned
                    .swap(true, Ordering::SeqCst)
            {
                self.session
                    .emit("partition", frame, "inbound frames discarded".to_string());
            }

            let mut payload = self.inner.recv()?;
            if partitioned {
                continue; // discard and keep reading: one-way silence
            }

            if let Some(at) = plan.truncate_recv_at {
                if frame == at && !payload.is_empty() {
                    let keep = payload.len() / 2;
                    payload.truncate(keep);
                    self.session.emit(
                        "truncate",
                        frame,
                        format!("recv: payload cut to {keep} bytes"),
                    );
                }
            }
            let corrupt = plan.corrupt_recv_at == Some(frame)
                || (plan.corrupt_recv_prob > 0.0
                    && plan.draw(RECV_SALT, frame) < plan.corrupt_recv_prob);
            if corrupt && !payload.is_empty() {
                let pos = plan.flip_at(RECV_SALT, frame, payload.len());
                payload[pos] ^= 0x20;
                self.session
                    .emit("corrupt", frame, format!("recv: flipped byte {pos}"));
            }
            return Ok(payload);
        }
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn try_clone(&self) -> Result<Box<dyn Transport>, WireError> {
        Ok(Box::new(ChaosTransport {
            inner: self.inner.try_clone()?,
            session: Arc::clone(&self.session),
            armed: self.armed,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{open, seal};
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An in-memory transport: sends append to a shared queue, recvs pop
    /// from another. Good enough to exercise the chaos decorator without a
    /// socket.
    #[derive(Default)]
    struct MemPipe {
        out: Arc<Mutex<VecDeque<Vec<u8>>>>,
        inp: Arc<Mutex<VecDeque<Vec<u8>>>>,
    }

    impl Transport for MemPipe {
        fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
            self.out.lock().unwrap().push_back(payload.to_vec());
            Ok(())
        }
        fn recv(&mut self) -> Result<Vec<u8>, WireError> {
            self.inp
                .lock()
                .unwrap()
                .pop_front()
                .ok_or_else(|| WireError::Disconnected("mem pipe empty".into()))
        }
        fn shutdown(&self) {}
        fn try_clone(&self) -> Result<Box<dyn Transport>, WireError> {
            Ok(Box::new(MemPipe {
                out: Arc::clone(&self.out),
                inp: Arc::clone(&self.inp),
            }))
        }
    }

    type Pipe = Arc<Mutex<VecDeque<Vec<u8>>>>;

    fn wrapped(plan: WireChaosPlan) -> (Box<dyn Transport>, Pipe, Pipe) {
        let pipe = MemPipe::default();
        let out = Arc::clone(&pipe.out);
        let inp = Arc::clone(&pipe.inp);
        let session = Arc::new(ChaosSession::new(plan, "client", None));
        (session.wrap(Box::new(pipe)), out, inp)
    }

    #[test]
    fn disarmed_plan_is_pass_through() {
        let plan = WireChaosPlan::new(7);
        assert!(!plan.is_armed());
        let (mut t, out, inp) = wrapped(plan);
        let sealed = seal(b"payload");
        t.send(&sealed).unwrap();
        assert_eq!(out.lock().unwrap().len(), 1);
        assert_eq!(out.lock().unwrap()[0], sealed);
        inp.lock().unwrap().push_back(sealed.clone());
        assert_eq!(t.recv().unwrap(), sealed);
    }

    #[test]
    fn corrupt_recv_is_caught_by_crc() {
        let plan = WireChaosPlan::new(11).with_corrupt_recv(1.0);
        assert!(plan.is_armed());
        let (mut t, _out, inp) = wrapped(plan);
        inp.lock().unwrap().push_back(seal(b"an innocent frame"));
        let payload = t.recv().unwrap();
        assert!(matches!(open(&payload), Err(WireError::Frame(_))));
    }

    #[test]
    fn truncate_recv_is_caught_by_crc() {
        let plan = WireChaosPlan::new(13).with_truncate_recv_at(1);
        let (mut t, _out, inp) = wrapped(plan);
        inp.lock().unwrap().push_back(seal(b"soon to be shorter"));
        let payload = t.recv().unwrap();
        assert!(matches!(open(&payload), Err(WireError::Frame(_))));
    }

    #[test]
    fn duplicate_send_doubles_frames() {
        let plan = WireChaosPlan::new(17).with_duplicate_send(1.0);
        let (mut t, out, _inp) = wrapped(plan);
        t.send(&seal(b"once")).unwrap();
        assert_eq!(out.lock().unwrap().len(), 2);
    }

    #[test]
    fn partition_send_swallows_after_threshold() {
        let plan = WireChaosPlan::new(19).with_partition_send_after(1);
        let (mut t, out, _inp) = wrapped(plan);
        t.send(&seal(b"delivered")).unwrap();
        t.send(&seal(b"swallowed")).unwrap();
        t.send(&seal(b"swallowed too")).unwrap();
        assert_eq!(out.lock().unwrap().len(), 1);
    }

    #[test]
    fn injections_are_order_independent() {
        // Same seed, same frame index => same corrupt decision, whatever
        // happened before.
        let plan = WireChaosPlan::new(23).with_corrupt_recv(0.5);
        let picks: Vec<bool> = (1..=64)
            .map(|frame| plan.draw(RECV_SALT, frame) < plan.corrupt_recv_prob)
            .collect();
        let replay: Vec<bool> = (1..=64)
            .rev()
            .map(|frame| plan.draw(RECV_SALT, frame) < plan.corrupt_recv_prob)
            .rev()
            .collect();
        assert_eq!(picks, replay);
        assert!(picks.iter().any(|&p| p));
        assert!(picks.iter().any(|&p| !p));
    }

    #[test]
    fn second_connection_disarms_one_shot_faults() {
        let plan = WireChaosPlan::new(29).with_partition_send_after(1);
        let session = Arc::new(ChaosSession::new(plan, "client", None));
        let pipe = MemPipe::default();
        let out = Arc::clone(&pipe.out);
        let mut first = session.wrap(Box::new(pipe));
        first.send(&seal(b"a")).unwrap();
        first.send(&seal(b"swallowed")).unwrap();
        assert_eq!(out.lock().unwrap().len(), 1);

        let pipe2 = MemPipe::default();
        let out2 = Arc::clone(&pipe2.out);
        let mut second = session.wrap(Box::new(pipe2));
        second.send(&seal(b"b")).unwrap();
        second.send(&seal(b"c")).unwrap();
        assert_eq!(out2.lock().unwrap().len(), 2, "reconnect must heal");
    }
}

//! Live daemon telemetry: the [`DaemonStats`] snapshot and its one-shot
//! fetch protocol.
//!
//! A running daemon answers a [`Message::StatsRequest`] sent as the
//! *first* frame of a fresh connection (where a `Hello` would normally
//! go) with one [`Message::Stats`] frame carrying a JSON-encoded
//! [`DaemonStats`], then closes. No handshake, no session: the probe is
//! cheap enough to poll (`netbench --watch` does, a few times a second)
//! and safe to point at a daemon mid-run — it never touches the serving
//! path's sessions.
//!
//! [`Message::StatsRequest`]: crate::message::Message::StatsRequest
//! [`Message::Stats`]: crate::message::Message::Stats

use std::net::{TcpStream, ToSocketAddrs};

use mlperf_trace::json::{FromJson, JsonError, JsonValue, ToJson};
use mlperf_trace::metrics::MetricsSnapshot;

use crate::frame::WireError;
use crate::message::Message;
use crate::transport::{TcpTransport, Transport};

/// A point-in-time view of a serving daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonStats {
    /// Name of the SUT the daemon exports.
    pub sut_name: String,
    /// Daemon-assigned shard label (empty when the daemon is not part of
    /// a sharded fleet). `netbench --watch` keys its fleet table on it.
    pub shard: String,
    /// Nanoseconds since the daemon started serving.
    pub uptime_ns: u64,
    /// Queries resolved over the daemon's lifetime.
    pub served: u64,
    /// Live (attached or resumable) sessions.
    pub sessions: u64,
    /// Queries currently being served across all sessions.
    pub in_flight: u64,
    /// Per-session in-flight counts `(session id, outstanding)`, sorted
    /// by session id so the rendering is deterministic.
    pub session_outstanding: Vec<(u64, u64)>,
    /// The daemon's metrics registry: wire counters and latency
    /// histograms (`wire_serve_ns`, `wire_queue_ns`, ...).
    pub snapshot: MetricsSnapshot,
}

impl DaemonStats {
    /// Queries per second over the daemon's lifetime.
    pub fn throughput_qps(&self) -> f64 {
        if self.uptime_ns == 0 {
            return 0.0;
        }
        self.served as f64 / (self.uptime_ns as f64 / 1e9)
    }
}

impl ToJson for DaemonStats {
    fn to_json_value(&self) -> JsonValue {
        let sessions = self
            .session_outstanding
            .iter()
            .map(|(session, outstanding)| {
                JsonValue::object(vec![
                    ("session", session.to_json_value()),
                    ("outstanding", outstanding.to_json_value()),
                ])
            })
            .collect::<Vec<_>>();
        JsonValue::object(vec![
            ("sut_name", self.sut_name.to_json_value()),
            ("shard", self.shard.to_json_value()),
            ("uptime_ns", self.uptime_ns.to_json_value()),
            ("served", self.served.to_json_value()),
            ("sessions", self.sessions.to_json_value()),
            ("in_flight", self.in_flight.to_json_value()),
            ("session_outstanding", JsonValue::Array(sessions)),
            ("snapshot", self.snapshot.to_json_value()),
        ])
    }
}

impl FromJson for DaemonStats {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let session_outstanding = value
            .field("session_outstanding")?
            .as_array()?
            .iter()
            .map(|row| {
                Ok((
                    row.field("session")?.as_u64()?,
                    row.field("outstanding")?.as_u64()?,
                ))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(DaemonStats {
            sut_name: value.field("sut_name")?.as_str()?.to_string(),
            shard: value.field("shard")?.as_str()?.to_string(),
            uptime_ns: value.field("uptime_ns")?.as_u64()?,
            served: value.field("served")?.as_u64()?,
            sessions: value.field("sessions")?.as_u64()?,
            in_flight: value.field("in_flight")?.as_u64()?,
            session_outstanding,
            snapshot: MetricsSnapshot::from_json_value(value.field("snapshot")?)?,
        })
    }
}

/// Fetches a [`DaemonStats`] snapshot from a running daemon.
///
/// # Errors
///
/// Returns [`WireError::Io`] if the connect fails, [`WireError::Protocol`]
/// if the daemon answers with anything but `Stats` or the JSON does not
/// parse, plus the usual frame errors.
pub fn fetch_stats<A: ToSocketAddrs>(addr: A) -> Result<DaemonStats, WireError> {
    let mut last_err = WireError::Disconnected("no addresses to dial".to_string());
    for addr in addr.to_socket_addrs()? {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                last_err = e.into();
                continue;
            }
        };
        stream.set_nodelay(true)?;
        let mut transport = TcpTransport::new(stream);
        transport.send(&Message::StatsRequest.to_wire())?;
        let reply = Message::from_wire(&transport.recv()?)?;
        transport.shutdown();
        return match reply {
            Message::Stats { json } => DaemonStats::from_json_str(&json)
                .map_err(|e| WireError::Protocol(format!("malformed stats json: {e}"))),
            other => Err(WireError::Protocol(format!(
                "expected Stats, got {}",
                other.tag_name()
            ))),
        };
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_roundtrip_through_json() {
        use mlperf_trace::metrics::MetricsRegistry;
        let registry = MetricsRegistry::new();
        registry.incr("wire_replays", 3);
        registry.observe("wire_serve_ns", 42_000);
        let stats = DaemonStats {
            sut_name: "rack-7".into(),
            shard: "shard-3".into(),
            uptime_ns: 2_000_000_000,
            served: 512,
            sessions: 2,
            in_flight: 9,
            session_outstanding: vec![(41, 4), (97, 5)],
            snapshot: registry.snapshot(),
        };
        let back = DaemonStats::from_json_str(&stats.to_json_string()).expect("roundtrip");
        assert_eq!(back, stats);
        assert!((back.throughput_qps() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn zero_uptime_reports_zero_throughput() {
        let stats = DaemonStats {
            sut_name: String::new(),
            shard: String::new(),
            uptime_ns: 0,
            served: 10,
            sessions: 0,
            in_flight: 0,
            session_outstanding: Vec::new(),
            snapshot: MetricsSnapshot::default(),
        };
        assert_eq!(stats.throughput_qps(), 0.0);
    }
}

//! [`SimHost`]: exports an event-driven [`SimSut`] as a blocking
//! [`WireService`], so the whole simulated device fleet can sit behind a
//! serving daemon.
//!
//! The bridge mirrors the discrete-event simulator's contract on the wall
//! clock: `on_query` is invoked at the wall time the query arrives,
//! requested wakeups accumulate in a min-heap (every request fires, as in
//! the DES event loop), and a completion stamped `finished_at` in the
//! future is *slept out* before the reply frame leaves — so remote
//! latencies reproduce the simulated ones.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use mlperf_loadgen::query::{Query, QueryCompletion};
use mlperf_loadgen::sut::{SimSut, SutReaction};
use mlperf_loadgen::time::Nanos;

use crate::service::{ServedReply, WireService};

struct HostState<S> {
    sut: S,
    ready: HashMap<u64, QueryCompletion>,
    wakeups: BinaryHeap<Reverse<u64>>,
}

/// Hosts a [`SimSut`] as a [`WireService`]. See the module docs.
pub struct SimHost<S> {
    name: String,
    state: Mutex<HostState<S>>,
    progress: Condvar,
    start: Instant,
    stall_cap: Duration,
}

impl<S: SimSut + Send> SimHost<S> {
    /// Wraps `sut` for serving. The host's wall clock starts now.
    pub fn new(sut: S) -> Self {
        SimHost {
            name: sut.name().to_string(),
            state: Mutex::new(HostState {
                sut,
                ready: HashMap::new(),
                wakeups: BinaryHeap::new(),
            }),
            progress: Condvar::new(),
            start: Instant::now(),
            stall_cap: Duration::from_secs(5),
        }
    }

    /// Overrides how long a query may wait for its completion to
    /// materialize before the host gives up and replies with an error
    /// (a stuck simulated device must not hang the daemon).
    #[must_use]
    pub fn with_stall_cap(mut self, cap: Duration) -> Self {
        self.stall_cap = cap;
        self
    }

    fn now(&self) -> Nanos {
        Nanos::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn absorb(state: &mut HostState<S>, reaction: SutReaction) {
        for completion in reaction.completions {
            state.ready.insert(completion.query_id, completion);
        }
        // Every requested wakeup fires, mirroring the DES event loop.
        if let Some(at) = reaction.wakeup_at {
            state.wakeups.push(Reverse(at.as_nanos()));
        }
    }

    /// Fires all wakeups due at or before the current wall time.
    fn fire_due_wakeups(&self, state: &mut HostState<S>) {
        loop {
            let now = self.now();
            match state.wakeups.peek() {
                Some(&Reverse(at)) if at <= now.as_nanos() => {
                    state.wakeups.pop();
                    let reaction = state.sut.on_wakeup(now);
                    Self::absorb(state, reaction);
                }
                _ => return,
            }
        }
    }

    fn sleep_until(&self, at: Nanos) {
        let target = self.start + at.to_duration();
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
    }
}

impl<S: SimSut + Send> WireService for SimHost<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn serve(&self, query: &Query) -> Option<ServedReply> {
        let deadline = Instant::now() + self.stall_cap;
        let mut state = self.state.lock().expect("sim host poisoned");
        let reaction = state.sut.on_query(self.now(), query);
        Self::absorb(&mut state, reaction);
        self.progress.notify_all();

        loop {
            if let Some(completion) = state.ready.remove(&query.id) {
                drop(state);
                self.progress.notify_all();
                // Reproduce the simulated latency on the wall clock.
                self.sleep_until(completion.finished_at);
                return Some(ServedReply {
                    error: completion.error,
                    samples: completion.samples,
                });
            }
            self.fire_due_wakeups(&mut state);
            if state.ready.contains_key(&query.id) {
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                return Some(ServedReply::errored(query));
            }
            // Sleep until the next wakeup, the stall cap, or another
            // worker's progress — whichever comes first.
            let mut wait = deadline - now;
            if let Some(&Reverse(at)) = state.wakeups.peek() {
                let until = Nanos::from_nanos(at)
                    .saturating_sub(self.now())
                    .to_duration();
                wait = wait.min(until.max(Duration::from_micros(50)));
            }
            let (guard, _) = self
                .progress
                .wait_timeout(state, wait)
                .expect("sim host poisoned");
            state = guard;
        }
    }

    fn reset(&self) {
        let mut state = self.state.lock().expect("sim host poisoned");
        state.sut.reset();
        state.ready.clear();
        state.wakeups.clear();
        drop(state);
        self.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_loadgen::query::QuerySample;
    use mlperf_loadgen::sut::FixedLatencySut;

    fn query(id: u64) -> Query {
        Query {
            id,
            samples: vec![QuerySample {
                id: id * 10,
                index: 0,
            }],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        }
    }

    #[test]
    fn hosted_fixed_latency_sut_replies() {
        let host = SimHost::new(FixedLatencySut::new("dev", Nanos::from_micros(100)));
        let reply = host.serve(&query(1)).expect("sim hosts always reply");
        assert!(!reply.error);
        assert_eq!(reply.samples.len(), 1);
        assert_eq!(reply.samples[0].sample_id, 10);
        assert_eq!(host.name(), "dev");
    }

    #[test]
    fn reset_clears_device_backlog() {
        let host = SimHost::new(FixedLatencySut::new("dev", Nanos::from_millis(1)));
        for id in 1..4 {
            host.serve(&query(id));
        }
        host.reset();
        let started = Instant::now();
        host.serve(&query(9)).expect("reply after reset");
        // Without the reset the device's busy_until backlog would delay
        // this reply by the three earlier queries.
        assert!(started.elapsed() < Duration::from_millis(50));
    }

    struct NeverCompletes;
    impl SimSut for NeverCompletes {
        fn name(&self) -> &str {
            "never"
        }
        fn on_query(&mut self, _now: Nanos, _query: &Query) -> SutReaction {
            SutReaction::none()
        }
    }

    #[test]
    fn stalled_device_resolves_as_error_not_hang() {
        let host = SimHost::new(NeverCompletes).with_stall_cap(Duration::from_millis(50));
        let reply = host.serve(&query(7)).expect("stall resolves to a reply");
        assert!(reply.error);
        assert_eq!(reply.samples[0].sample_id, 70);
    }
}

//! Length-prefixed binary framing and the byte-level codec primitives.
//!
//! Every message on a wire connection travels as one *frame* (format v2):
//!
//! ```text
//! +----------------+----------------+---------------------------------+
//! | length: u32 BE | crc32: u32 BE  | body: `length - 4` bytes        |
//! +----------------+----------------+---------------------------------+
//! ```
//!
//! The CRC32 (IEEE polynomial, hand-rolled below) covers the body; it is
//! sealed in by [`seal`] and checked by [`open`] *above* the raw transport,
//! so a byte flipped anywhere in transit — including by a
//! [`ChaosTransport`](crate::transport::ChaosTransport) — surfaces as a
//! structured [`FrameError`], never as a plausible message. The body is a
//! tagged binary encoding of one [`Message`]; see [`crate::message`] for
//! the per-message layouts. Integers are big-endian, strings are a `u32`
//! byte length followed by UTF-8, and floats travel as their IEEE-754 bit
//! patterns. Everything is hand-rolled on `std::io` — the workspace is
//! dependency-free by rule.
//!
//! [`Message`]: crate::message::Message

use std::io::{Read, Write};

/// CRC32 (IEEE 802.3 polynomial, reflected) lookup table, generated at
/// compile time so the hot path is one table index per byte.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`. Detects every single-byte error and all burst
/// errors up to 32 bits, which is exactly the failure model a chaotic
/// network presents to a frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Hard ceiling on a frame's payload size. An offline query over a
/// 24,576-sample QSL encodes in ~400 KiB; 64 MiB leaves room for
/// accuracy-mode payloads while still catching a corrupt length prefix
/// before it turns into a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// A frame that failed its integrity check: the length prefix arrived, but
/// the body's CRC32 does not match the checksum sealed in by the sender.
///
/// This is deliberately a *structured* error (not a string): the client
/// maps it to an errored completion feeding `ErrorFractionExceeded`, and
/// tests assert on it directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameError {
    /// Payload length from the frame header (checksum + body).
    pub len: usize,
    /// CRC32 the sender sealed into the frame.
    pub expected: u32,
    /// CRC32 computed over the body as received.
    pub found: u32,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame integrity failure: {}-byte payload, crc {:#010x} != sealed {:#010x}",
            self.len, self.found, self.expected
        )
    }
}

/// Errors raised by the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a valid message.
    Protocol(String),
    /// A frame's CRC32 check failed: bytes were corrupted in transit.
    Frame(FrameError),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our protocol version.
        ours: u16,
        /// The peer's protocol version.
        theirs: u16,
    },
    /// The server refused the handshake.
    Rejected(String),
    /// The connection died (reset, heartbeat loss, or orderly close while
    /// queries were still in flight).
    Disconnected(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Protocol(msg) => write!(f, "wire protocol error: {msg}"),
            WireError::Frame(e) => write!(f, "{e}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours v{ours}, peer v{theirs}")
            }
            WireError::Rejected(reason) => write!(f, "handshake rejected: {reason}"),
            WireError::Disconnected(reason) => write!(f, "wire disconnected: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame: `u32` big-endian payload length, then the payload.
///
/// # Errors
///
/// Returns [`WireError::Protocol`] for an oversized payload and
/// [`WireError::Io`] for socket failures.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Protocol(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
            payload.len()
        )));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame's payload.
///
/// # Errors
///
/// Returns [`WireError::Io`] on socket failure or EOF mid-frame, and
/// [`WireError::Protocol`] for a length prefix beyond [`MAX_FRAME_LEN`].
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Vec<u8>, WireError> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Protocol(format!(
            "frame length prefix {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Seals a message body into a frame payload: `crc32(body) || body`.
///
/// The checksum travels *inside* the payload, below the length prefix but
/// above any transport decoration, so corruption injected anywhere between
/// the two [`seal`]/[`open`] calls is caught.
pub fn seal(body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(body.len() + 4);
    payload.extend_from_slice(&crc32(body).to_be_bytes());
    payload.extend_from_slice(body);
    payload
}

/// Opens a sealed frame payload, verifying the CRC32 and returning the
/// message body.
///
/// # Errors
///
/// Returns [`WireError::Frame`] if the payload is too short to carry a
/// checksum or the body's CRC32 does not match the sealed one.
pub fn open(payload: &[u8]) -> Result<&[u8], WireError> {
    if payload.len() < 4 {
        return Err(WireError::Frame(FrameError {
            len: payload.len(),
            expected: 0,
            found: 0,
        }));
    }
    let expected = u32::from_be_bytes(payload[..4].try_into().expect("len 4"));
    let body = &payload[4..];
    let found = crc32(body);
    if found != expected {
        return Err(WireError::Frame(FrameError {
            len: payload.len(),
            expected,
            found,
        }));
    }
    Ok(body)
}

/// Append-only encoder for frame payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Cursor-based decoder for frame payloads. Every accessor checks bounds;
/// truncated or trailing bytes surface as [`WireError::Protocol`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Protocol(format!(
                "payload truncated: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] on truncation (as do all readers).
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] on truncation.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] on truncation.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] on truncation.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f32` from its bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] on truncation.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Protocol(format!("invalid UTF-8 in string field: {e}")))
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] if trailing bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(read_frame(&mut cursor).is_err()); // EOF
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"only4");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(1_000);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 3);
        w.put_f32(0.25);
        w.put_str("schnell");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 1_000);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap(), 0.25);
        assert_eq!(r.get_str().unwrap(), "schnell");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(matches!(r.finish(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Published IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seal_open_roundtrip() {
        for body in [&b""[..], b"x", b"a longer message body \x00\xff"] {
            let payload = seal(body);
            assert_eq!(payload.len(), body.len() + 4);
            assert_eq!(open(&payload).unwrap(), body);
        }
    }

    #[test]
    fn undersized_payload_is_frame_error() {
        for len in 0..4 {
            let payload = vec![0u8; len];
            assert!(matches!(open(&payload), Err(WireError::Frame(_))));
        }
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let body = b"completion: query 17, 2 samples, no error";
        let sealed = seal(body);
        for pos in 0..sealed.len() {
            for bit in 0..8u8 {
                let mut corrupted = sealed.clone();
                corrupted[pos] ^= 1 << bit;
                let err = open(&corrupted).expect_err("flip must be caught");
                assert!(
                    matches!(err, WireError::Frame(_)),
                    "byte {pos} bit {bit}: {err:?}"
                );
            }
        }
    }
}

//! NTP-style clock-offset estimation between a client and a daemon.
//!
//! Each [`Message::ClockProbe`](crate::message::Message::ClockProbe) /
//! `ClockProbeAck` exchange yields the classic four timestamps: `t0` the
//! client's send time, `t1` the server's receive time, `t2` the server's
//! transmit time (all relative to each host's own run-start clock), and
//! `t3` the client's receive time. From those:
//!
//! ```text
//! offset = ((t1 - t0) + (t2 - t3)) / 2      server_clock - client_clock
//! rtt    = (t3 - t0) - (t2 - t1)            pure network round trip
//! ```
//!
//! The offset estimate is exact when the outbound and return delays are
//! equal, and off by at most `rtt / 2` however asymmetric the path is —
//! so the estimator keeps the *minimum-RTT* sample seen: its bound is the
//! tightest, and re-probing on every heartbeat can only shrink (never
//! widen) the error bar. That monotonicity is what lets a merged detail
//! log claim a single aligned time axis.

use std::sync::Mutex;

/// One completed four-timestamp probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSample {
    /// Client clock at probe send (ns).
    pub t0: u64,
    /// Server clock at probe receive (ns).
    pub t1: u64,
    /// Server clock at ack transmit (ns).
    pub t2: u64,
    /// Client clock at ack receive (ns).
    pub t3: u64,
}

impl ClockSample {
    /// Estimated `server_clock - client_clock` in nanoseconds.
    ///
    /// Computed in `i128` — the two clocks start at unrelated epochs, so
    /// the raw differences can exceed `i64` only if a host has been up
    /// for ~292 years; the final offset is clamped into `i64`.
    pub fn offset_ns(&self) -> i64 {
        let outbound = self.t1 as i128 - self.t0 as i128;
        let inbound = self.t2 as i128 - self.t3 as i128;
        let offset = (outbound + inbound) / 2;
        offset.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Network round-trip time in nanoseconds (server hold time removed).
    /// Saturates at 0 for nonsensical stamps instead of underflowing.
    pub fn rtt_ns(&self) -> u64 {
        let total = self.t3 as i128 - self.t0 as i128;
        let hold = self.t2 as i128 - self.t1 as i128;
        (total - hold).max(0) as u64
    }

    /// Worst-case error of [`ClockSample::offset_ns`]: half the RTT.
    pub fn error_bound_ns(&self) -> u64 {
        self.rtt_ns() / 2
    }
}

/// Keeps the best (minimum-RTT) probe seen so far.
///
/// Thread-safe: the wire reader observes acks while spans are being
/// aligned from other threads.
#[derive(Debug, Default)]
pub struct ClockEstimator {
    best: Mutex<Option<ClockSample>>,
}

impl ClockEstimator {
    /// An estimator with no samples yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one completed probe. Returns `true` when the sample improved
    /// (tightened) the estimate — i.e. it is the first sample or has a
    /// strictly smaller RTT than the current best.
    pub fn observe(&self, sample: ClockSample) -> bool {
        let mut best = self.best.lock().expect("clock estimator poisoned");
        match *best {
            Some(current) if sample.rtt_ns() >= current.rtt_ns() => false,
            _ => {
                *best = Some(sample);
                true
            }
        }
    }

    /// The current best sample, if any probe completed.
    pub fn best(&self) -> Option<ClockSample> {
        *self.best.lock().expect("clock estimator poisoned")
    }

    /// Estimated `server_clock - client_clock` in nanoseconds.
    pub fn offset_ns(&self) -> Option<i64> {
        self.best().map(|s| s.offset_ns())
    }

    /// Worst-case error of the current estimate (half the best RTT).
    /// Monotonically non-increasing across [`ClockEstimator::observe`]
    /// calls.
    pub fn error_bound_ns(&self) -> Option<u64> {
        self.best().map(|s| s.error_bound_ns())
    }

    /// Re-stamps a server-clock timestamp onto the client clock using the
    /// current offset estimate, clamping at zero (a server event can
    /// predate the client's run start by less than the estimate error).
    /// Returns `server_ts_ns` unchanged when no probe has completed.
    pub fn align_to_client(&self, server_ts_ns: u64) -> u64 {
        match self.offset_ns() {
            Some(offset) => {
                let aligned = server_ts_ns as i128 - offset as i128;
                aligned.clamp(0, u64::MAX as i128) as u64
            }
            None => server_ts_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_delay_recovers_the_exact_offset() {
        // Server clock runs 5 ms ahead; 200 µs each way.
        let offset = 5_000_000i64;
        let one_way = 200_000u64;
        let t0 = 1_000_000u64;
        let t1 = (t0 + one_way) as i64 + offset;
        let t2 = t1 + 50_000; // server hold time
        let t3 = (t2 - offset) as u64 + one_way;
        let s = ClockSample {
            t0,
            t1: t1 as u64,
            t2: t2 as u64,
            t3,
        };
        assert_eq!(s.offset_ns(), offset);
        assert_eq!(s.rtt_ns(), 2 * one_way);
        assert_eq!(s.error_bound_ns(), one_way);
    }

    #[test]
    fn asymmetric_delay_errs_by_at_most_half_the_rtt() {
        let offset = -3_000_000i64; // server clock behind
        let out = 900_000u64; // slow outbound
        let back = 100_000u64; // fast return
        let t0 = 10_000_000u64;
        let t1 = (t0 + out) as i64 + offset;
        let t2 = t1 + 10_000;
        let t3 = (t2 - offset) as u64 + back;
        let s = ClockSample {
            t0,
            t1: t1 as u64,
            t2: t2 as u64,
            t3,
        };
        let err = (s.offset_ns() - offset).unsigned_abs();
        assert!(
            err <= s.error_bound_ns(),
            "error {err} exceeds bound {}",
            s.error_bound_ns()
        );
        assert_eq!(s.rtt_ns(), out + back);
    }

    #[test]
    fn estimator_keeps_the_minimum_rtt_sample() {
        let est = ClockEstimator::new();
        let wide = ClockSample {
            t0: 0,
            t1: 600_000,
            t2: 610_000,
            t3: 1_010_000,
        };
        let tight = ClockSample {
            t0: 2_000_000,
            t1: 2_150_000,
            t2: 2_160_000,
            t3: 2_210_000,
        };
        assert!(est.observe(wide), "first sample always improves");
        let first_bound = est.error_bound_ns().unwrap();
        assert!(est.observe(tight), "smaller RTT improves");
        let second_bound = est.error_bound_ns().unwrap();
        assert!(second_bound < first_bound);
        assert!(!est.observe(wide), "a worse sample never regresses");
        assert_eq!(est.best(), Some(tight));
    }

    #[test]
    fn alignment_applies_and_clamps() {
        let est = ClockEstimator::new();
        assert_eq!(est.align_to_client(42), 42, "no estimate, no change");
        // Server 1 ms ahead of client.
        est.observe(ClockSample {
            t0: 0,
            t1: 1_000_000 + 5_000,
            t2: 1_000_000 + 6_000,
            t3: 11_000,
        });
        assert_eq!(est.offset_ns(), Some(1_000_000));
        assert_eq!(est.align_to_client(1_500_000), 500_000);
        assert_eq!(est.align_to_client(10), 0, "clamped at run start");
    }
}

//! Deliberately misbehaving services, for audit tests.
//!
//! A networked SUT has a failure mode an in-process one does not: it can
//! simply never answer. [`SilentDropService`] wraps any honest service
//! and swallows a seeded fraction of queries without a completion frame —
//! the cheat the TEST06 completeness audit exists to catch.

use std::sync::Mutex;

use mlperf_loadgen::query::Query;
use mlperf_stats::rng::Rng64;

use crate::service::{ServedReply, WireService};

/// Wraps a service and silently drops a seeded fraction of queries.
pub struct SilentDropService<S> {
    inner: S,
    drop_fraction: f64,
    rng: Mutex<Rng64>,
    seed: u64,
}

impl<S: WireService> SilentDropService<S> {
    /// Drops roughly `drop_fraction` of queries (clamped to `[0, 1]`),
    /// chosen by a deterministic seeded draw.
    pub fn new(inner: S, drop_fraction: f64, seed: u64) -> Self {
        SilentDropService {
            inner,
            drop_fraction: drop_fraction.clamp(0.0, 1.0),
            rng: Mutex::new(Rng64::new(seed)),
            seed,
        }
    }
}

impl<S: WireService> WireService for SilentDropService<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn serve(&self, query: &Query) -> Option<ServedReply> {
        let roll = self.rng.lock().expect("cheat rng poisoned").next_f64();
        if roll < self.drop_fraction {
            return None;
        }
        self.inner.serve(query)
    }

    fn reset(&self) {
        self.inner.reset();
        *self.rng.lock().expect("cheat rng poisoned") = Rng64::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_loadgen::query::QuerySample;
    use mlperf_loadgen::sut::SleepSut;
    use mlperf_loadgen::time::Nanos;

    fn query(id: u64) -> Query {
        Query {
            id,
            samples: vec![QuerySample { id, index: 0 }],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        }
    }

    #[test]
    fn drops_roughly_the_requested_fraction() {
        let cheat =
            SilentDropService::new(SleepSut::new("honest", std::time::Duration::ZERO), 0.25, 7);
        let dropped = (0..400)
            .filter(|&i| cheat.serve(&query(i)).is_none())
            .count();
        assert!((60..=140).contains(&dropped), "dropped {dropped} of 400");
    }

    #[test]
    fn zero_fraction_never_drops_and_reset_replays() {
        let cheat =
            SilentDropService::new(SleepSut::new("honest", std::time::Duration::ZERO), 0.5, 42);
        let first: Vec<bool> = (0..50).map(|i| cheat.serve(&query(i)).is_none()).collect();
        cheat.reset();
        let second: Vec<bool> = (0..50).map(|i| cheat.serve(&query(i)).is_none()).collect();
        assert_eq!(first, second, "reset must replay the same drop pattern");

        let honest =
            SilentDropService::new(SleepSut::new("honest", std::time::Duration::ZERO), 0.0, 1);
        assert!((0..50).all(|i| honest.serve(&query(i)).is_some()));
    }
}

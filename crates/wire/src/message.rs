//! The wire message vocabulary and its binary layouts.
//!
//! One [`Message`] per frame. Tags and layouts (all integers big-endian):
//!
//! | tag | message        | payload layout                                              |
//! |-----|----------------|-------------------------------------------------------------|
//! | 1   | `Hello`        | version u16, scenario u8, 3× seed u64, qsl_size u64, max_in_flight u32, session u64, epoch u32, resume u8 |
//! | 2   | `HelloAck`     | version u16, sut_name str, max_in_flight u32                |
//! | 3   | `Reject`       | reason str                                                  |
//! | 4   | `Issue`        | query_id u64, scheduled_at u64, tenant u32, n u32, n× (sample_id u64, index u64) |
//! | 5   | `Completion`   | query_id u64, error u8, n u32, n× (sample_id u64, payload)  |
//! | 6   | `Heartbeat`    | seq u64                                                     |
//! | 7   | `HeartbeatAck` | seq u64                                                     |
//! | 8   | `Drain`        | (empty)                                                     |
//! | 9   | `Goodbye`      | served u64                                                  |
//! | 10  | `IssueTraced`  | trace_id u64, then the `Issue` body (v3)                    |
//! | 11  | `Events`       | jsonl str — server-side detail-log rows (v3)                |
//! | 12  | `StatsRequest` | (empty) (v3)                                                |
//! | 13  | `Stats`        | json str — daemon stats snapshot (v3)                       |
//! | 14  | `ClockProbe`   | seq u64, t0 u64 (v3)                                        |
//! | 15  | `ClockProbeAck`| seq u64, t0 u64, t1 u64, t2 u64 (v3)                        |
//!
//! Response payloads are themselves tagged: 0 empty, 1 class (u64),
//! 2 boxes (n u32, n× class u64 + score f32 + 4× f32), 3 tokens
//! (n u32, n× u32).
//!
//! On the wire every encoded message travels [`seal`]ed — prefixed by its
//! CRC32 — via [`Message::to_wire`] / [`Message::from_wire`]; see
//! [`crate::frame`] for the frame format.

use crate::frame::{open, seal, ByteReader, ByteWriter, WireError};
use mlperf_loadgen::query::{Query, QuerySample, ResponsePayload, SampleCompletion};
use mlperf_loadgen::scenario::Scenario;
use mlperf_loadgen::time::Nanos;
use mlperf_stats::rng::SeedTriple;

/// The newest protocol version this build speaks. The handshake
/// *negotiates* within `[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`: the
/// server acks the client's offered version when it falls in that range
/// and rejects anything outside it (never a silent downgrade from an
/// unknown future version).
///
/// v1: length-prefixed frames, no integrity check, no sessions.
/// v2: per-frame CRC32 ([`crate::frame::seal`]) and session-resume fields
/// (`session`, `epoch`, `resume`) in [`Hello`].
/// v3: distributed tracing and telemetry — trace-id-carrying issues
/// (`IssueTraced`), server event shipping at drain (`Events`), daemon
/// stats (`StatsRequest`/`Stats`), and NTP-style clock probes
/// (`ClockProbe`/`ClockProbeAck`).
pub const PROTOCOL_VERSION: u16 = 3;

/// The oldest protocol version still accepted in the handshake. v2 peers
/// interoperate: they simply never send the v3 messages.
pub const MIN_PROTOCOL_VERSION: u16 = 2;

/// What the client announces before any query flows: everything the server
/// needs to pre-load its QSL and sanity-check the run (scenario, the three
/// rulebook seeds, QSL size) plus the backpressure window it intends to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Client protocol version.
    pub version: u16,
    /// Scenario the run will drive.
    pub scenario: Scenario,
    /// The run's seed triple (qsl, schedule, accuracy).
    pub seeds: SeedTriple,
    /// Number of samples in the client's QSL.
    pub qsl_size: u64,
    /// Maximum queries the client will keep in flight.
    pub max_in_flight: u32,
    /// Stable id for the run's session; survives reconnects so the server
    /// can key its completion journal.
    pub session: u64,
    /// 0 for a fresh run; incremented on every reconnect of the same
    /// session. The server resets its service only on epoch 0.
    pub epoch: u32,
    /// Whether the client may reconnect and resume after a disconnect (it
    /// has a resume policy armed).
    pub resume: bool,
}

/// One message on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: handshake open.
    Hello(Hello),
    /// Server → client: handshake accept.
    HelloAck {
        /// Server protocol version.
        version: u16,
        /// Name of the SUT the server exports.
        sut_name: String,
        /// In-flight window the server granted.
        max_in_flight: u32,
    },
    /// Server → client: handshake refusal; the connection closes after.
    Reject {
        /// Why the server refused.
        reason: String,
    },
    /// Client → server: run inference on a query.
    Issue(Query),
    /// Server → client: a query resolved. `error` marks a structural
    /// failure (the remote engine errored/dropped); sample ids still echo.
    Completion {
        /// Query id being resolved.
        query_id: u64,
        /// Whether the query resolved as an error.
        error: bool,
        /// Per-sample completions.
        samples: Vec<SampleCompletion>,
    },
    /// Either direction: liveness probe.
    Heartbeat {
        /// Monotonic probe sequence number.
        seq: u64,
    },
    /// Reply to a [`Message::Heartbeat`], echoing its sequence number.
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Client → server: no more queries; flush outstanding completions.
    Drain,
    /// Server → client: drain finished, connection closing.
    Goodbye {
        /// Queries the server resolved over the connection's lifetime.
        served: u64,
    },
    /// Client → server (v3): run inference on a query, carrying the trace
    /// id the server must tag its side of the work with.
    IssueTraced {
        /// Trace id shared by every span of this query, on both hosts.
        trace_id: u64,
        /// The query.
        query: Query,
    },
    /// Server → client (v3): a batch of server-side detail-log rows,
    /// JSONL-encoded `TraceRecord`s on the *server* clock. Shipped at
    /// drain, before `Goodbye`; the client re-stamps them onto its own
    /// clock via the negotiated offset estimate.
    Events {
        /// JSON Lines, one `TraceRecord` per line.
        jsonl: String,
    },
    /// Client → server (v3): one-shot stats query. May open a dedicated
    /// connection: a `StatsRequest` as the first frame (instead of
    /// `Hello`) gets a `Stats` reply and the connection closes.
    StatsRequest,
    /// Server → client (v3): daemon stats snapshot as JSON (see
    /// `DaemonStats` in the stats module).
    Stats {
        /// JSON-encoded `DaemonStats`.
        json: String,
    },
    /// Client → server (v3): NTP-style clock probe. Doubles as a liveness
    /// probe (the ack refreshes the heartbeat clock).
    ClockProbe {
        /// Monotonic probe sequence number.
        seq: u64,
        /// Client clock at send, in nanoseconds.
        t0: u64,
    },
    /// Reply to a [`Message::ClockProbe`]: echoes `t0` and adds the
    /// server-clock receive (`t1`) and transmit (`t2`) stamps. The client
    /// supplies `t3` (its receive time) to complete the four-timestamp
    /// offset estimate.
    ClockProbeAck {
        /// Echoed sequence number.
        seq: u64,
        /// Echoed client send time.
        t0: u64,
        /// Server clock when the probe arrived.
        t1: u64,
        /// Server clock when the ack left.
        t2: u64,
    },
}

fn scenario_tag(s: Scenario) -> u8 {
    match s {
        Scenario::SingleStream => 0,
        Scenario::MultiStream => 1,
        Scenario::Server => 2,
        Scenario::Offline => 3,
    }
}

fn scenario_from_tag(tag: u8) -> Result<Scenario, WireError> {
    match tag {
        0 => Ok(Scenario::SingleStream),
        1 => Ok(Scenario::MultiStream),
        2 => Ok(Scenario::Server),
        3 => Ok(Scenario::Offline),
        other => Err(WireError::Protocol(format!("unknown scenario tag {other}"))),
    }
}

fn put_payload(w: &mut ByteWriter, payload: &ResponsePayload) {
    match payload {
        ResponsePayload::Empty => w.put_u8(0),
        ResponsePayload::Class(class) => {
            w.put_u8(1);
            w.put_u64(*class as u64);
        }
        ResponsePayload::Boxes(boxes) => {
            w.put_u8(2);
            w.put_u32(boxes.len() as u32);
            for (class, score, rect) in boxes {
                w.put_u64(*class as u64);
                w.put_f32(*score);
                for coord in rect {
                    w.put_f32(*coord);
                }
            }
        }
        ResponsePayload::Tokens(tokens) => {
            w.put_u8(3);
            w.put_u32(tokens.len() as u32);
            for t in tokens {
                w.put_u32(*t);
            }
        }
    }
}

fn get_payload(r: &mut ByteReader<'_>) -> Result<ResponsePayload, WireError> {
    match r.get_u8()? {
        0 => Ok(ResponsePayload::Empty),
        1 => Ok(ResponsePayload::Class(r.get_u64()? as usize)),
        2 => {
            let n = r.get_u32()? as usize;
            let mut boxes = Vec::with_capacity(n);
            for _ in 0..n {
                let class = r.get_u64()? as usize;
                let score = r.get_f32()?;
                let mut rect = [0.0f32; 4];
                for coord in &mut rect {
                    *coord = r.get_f32()?;
                }
                boxes.push((class, score, rect));
            }
            Ok(ResponsePayload::Boxes(boxes))
        }
        3 => {
            let n = r.get_u32()? as usize;
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(r.get_u32()?);
            }
            Ok(ResponsePayload::Tokens(tokens))
        }
        other => Err(WireError::Protocol(format!("unknown payload tag {other}"))),
    }
}

fn put_query(w: &mut ByteWriter, query: &Query) {
    w.put_u64(query.id);
    w.put_u64(query.scheduled_at.as_nanos());
    w.put_u32(query.tenant);
    w.put_u32(query.samples.len() as u32);
    for s in &query.samples {
        w.put_u64(s.id);
        w.put_u64(s.index as u64);
    }
}

fn get_query(r: &mut ByteReader<'_>) -> Result<Query, WireError> {
    let id = r.get_u64()?;
    let scheduled_at = Nanos::from_nanos(r.get_u64()?);
    let tenant = r.get_u32()?;
    let n = r.get_u32()? as usize;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push(QuerySample {
            id: r.get_u64()?,
            index: r.get_u64()? as usize,
        });
    }
    Ok(Query {
        id,
        samples,
        scheduled_at,
        tenant,
    })
}

impl Message {
    /// Human-readable message name, for diagnostics.
    pub fn tag_name(&self) -> &'static str {
        match self {
            Message::Hello(_) => "Hello",
            Message::HelloAck { .. } => "HelloAck",
            Message::Reject { .. } => "Reject",
            Message::Issue(_) => "Issue",
            Message::Completion { .. } => "Completion",
            Message::Heartbeat { .. } => "Heartbeat",
            Message::HeartbeatAck { .. } => "HeartbeatAck",
            Message::Drain => "Drain",
            Message::Goodbye { .. } => "Goodbye",
            Message::IssueTraced { .. } => "IssueTraced",
            Message::Events { .. } => "Events",
            Message::StatsRequest => "StatsRequest",
            Message::Stats { .. } => "Stats",
            Message::ClockProbe { .. } => "ClockProbe",
            Message::ClockProbeAck { .. } => "ClockProbeAck",
        }
    }

    /// Encodes the message as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Message::Hello(h) => {
                w.put_u8(1);
                w.put_u16(h.version);
                w.put_u8(scenario_tag(h.scenario));
                w.put_u64(h.seeds.qsl_seed);
                w.put_u64(h.seeds.schedule_seed);
                w.put_u64(h.seeds.accuracy_seed);
                w.put_u64(h.qsl_size);
                w.put_u32(h.max_in_flight);
                w.put_u64(h.session);
                w.put_u32(h.epoch);
                w.put_u8(u8::from(h.resume));
            }
            Message::HelloAck {
                version,
                sut_name,
                max_in_flight,
            } => {
                w.put_u8(2);
                w.put_u16(*version);
                w.put_str(sut_name);
                w.put_u32(*max_in_flight);
            }
            Message::Reject { reason } => {
                w.put_u8(3);
                w.put_str(reason);
            }
            Message::Issue(query) => {
                w.put_u8(4);
                put_query(&mut w, query);
            }
            Message::Completion {
                query_id,
                error,
                samples,
            } => {
                w.put_u8(5);
                w.put_u64(*query_id);
                w.put_u8(u8::from(*error));
                w.put_u32(samples.len() as u32);
                for s in samples {
                    w.put_u64(s.sample_id);
                    put_payload(&mut w, &s.payload);
                }
            }
            Message::Heartbeat { seq } => {
                w.put_u8(6);
                w.put_u64(*seq);
            }
            Message::HeartbeatAck { seq } => {
                w.put_u8(7);
                w.put_u64(*seq);
            }
            Message::Drain => {
                w.put_u8(8);
            }
            Message::Goodbye { served } => {
                w.put_u8(9);
                w.put_u64(*served);
            }
            Message::IssueTraced { trace_id, query } => {
                w.put_u8(10);
                w.put_u64(*trace_id);
                put_query(&mut w, query);
            }
            Message::Events { jsonl } => {
                w.put_u8(11);
                w.put_str(jsonl);
            }
            Message::StatsRequest => {
                w.put_u8(12);
            }
            Message::Stats { json } => {
                w.put_u8(13);
                w.put_str(json);
            }
            Message::ClockProbe { seq, t0 } => {
                w.put_u8(14);
                w.put_u64(*seq);
                w.put_u64(*t0);
            }
            Message::ClockProbeAck { seq, t0, t1, t2 } => {
                w.put_u8(15);
                w.put_u64(*seq);
                w.put_u64(*t0);
                w.put_u64(*t1);
                w.put_u64(*t2);
            }
        }
        w.into_bytes()
    }

    /// Encodes the message and seals it for the wire: `crc32 || body`.
    pub fn to_wire(&self) -> Vec<u8> {
        seal(&self.encode())
    }

    /// Opens a sealed wire payload (verifying the CRC32) and decodes it.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Frame`] when the checksum does not match —
    /// corrupted bytes never decode into a message — plus
    /// [`Message::decode`]'s protocol errors.
    pub fn from_wire(payload: &[u8]) -> Result<Message, WireError> {
        Message::decode(open(payload)?)
    }

    /// Decodes one frame body (already integrity-checked).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] for unknown tags, truncation, or
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut r = ByteReader::new(payload);
        let message = match r.get_u8()? {
            1 => Message::Hello(Hello {
                version: r.get_u16()?,
                scenario: scenario_from_tag(r.get_u8()?)?,
                seeds: SeedTriple {
                    qsl_seed: r.get_u64()?,
                    schedule_seed: r.get_u64()?,
                    accuracy_seed: r.get_u64()?,
                },
                qsl_size: r.get_u64()?,
                max_in_flight: r.get_u32()?,
                session: r.get_u64()?,
                epoch: r.get_u32()?,
                resume: r.get_u8()? != 0,
            }),
            2 => Message::HelloAck {
                version: r.get_u16()?,
                sut_name: r.get_str()?,
                max_in_flight: r.get_u32()?,
            },
            3 => Message::Reject {
                reason: r.get_str()?,
            },
            4 => Message::Issue(get_query(&mut r)?),
            5 => {
                let query_id = r.get_u64()?;
                let error = r.get_u8()? != 0;
                let n = r.get_u32()? as usize;
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    samples.push(SampleCompletion {
                        sample_id: r.get_u64()?,
                        payload: get_payload(&mut r)?,
                    });
                }
                Message::Completion {
                    query_id,
                    error,
                    samples,
                }
            }
            6 => Message::Heartbeat { seq: r.get_u64()? },
            7 => Message::HeartbeatAck { seq: r.get_u64()? },
            8 => Message::Drain,
            9 => Message::Goodbye {
                served: r.get_u64()?,
            },
            10 => Message::IssueTraced {
                trace_id: r.get_u64()?,
                query: get_query(&mut r)?,
            },
            11 => Message::Events {
                jsonl: r.get_str()?,
            },
            12 => Message::StatsRequest,
            13 => Message::Stats { json: r.get_str()? },
            14 => Message::ClockProbe {
                seq: r.get_u64()?,
                t0: r.get_u64()?,
            },
            15 => Message::ClockProbeAck {
                seq: r.get_u64()?,
                t0: r.get_u64()?,
                t1: r.get_u64()?,
                t2: r.get_u64()?,
            },
            other => {
                return Err(WireError::Protocol(format!("unknown message tag {other}")));
            }
        };
        r.finish()?;
        Ok(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello(Hello {
                version: PROTOCOL_VERSION,
                scenario: Scenario::Server,
                seeds: SeedTriple::OFFICIAL,
                qsl_size: 1_024,
                max_in_flight: 64,
                session: 0xD15C0,
                epoch: 3,
                resume: true,
            }),
            Message::HelloAck {
                version: PROTOCOL_VERSION,
                sut_name: "datacenter-gpu".into(),
                max_in_flight: 64,
            },
            Message::Reject {
                reason: "version mismatch".into(),
            },
            Message::Issue(Query {
                id: 17,
                samples: vec![
                    QuerySample { id: 170, index: 3 },
                    QuerySample {
                        id: 171,
                        index: 900,
                    },
                ],
                scheduled_at: Nanos::from_micros(250),
                tenant: 2,
            }),
            Message::Completion {
                query_id: 17,
                error: false,
                samples: vec![
                    SampleCompletion {
                        sample_id: 170,
                        payload: ResponsePayload::Class(7),
                    },
                    SampleCompletion {
                        sample_id: 171,
                        payload: ResponsePayload::Boxes(vec![(1, 0.75, [0.0, 1.0, 2.0, 3.0])]),
                    },
                ],
            },
            Message::Completion {
                query_id: 18,
                error: true,
                samples: vec![SampleCompletion {
                    sample_id: 180,
                    payload: ResponsePayload::Empty,
                }],
            },
            Message::Completion {
                query_id: 19,
                error: false,
                samples: vec![SampleCompletion {
                    sample_id: 190,
                    payload: ResponsePayload::Tokens(vec![5, 6, 7]),
                }],
            },
            Message::Heartbeat { seq: 41 },
            Message::HeartbeatAck { seq: 41 },
            Message::Drain,
            Message::Goodbye { served: 270_336 },
            Message::IssueTraced {
                trace_id: 0x7AC3_1D00_DEAD_BEEF,
                query: Query {
                    id: 18,
                    samples: vec![QuerySample { id: 180, index: 5 }],
                    scheduled_at: Nanos::from_micros(300),
                    tenant: 0,
                },
            },
            Message::Events {
                jsonl: "{\"ts_ns\":1,\"event\":{\"QuerySent\":{\"query_id\":4}}}\n".into(),
            },
            Message::StatsRequest,
            Message::Stats {
                json: "{\"served\":12,\"uptime_ns\":99}".into(),
            },
            Message::ClockProbe {
                seq: 7,
                t0: 1_000_000,
            },
            Message::ClockProbeAck {
                seq: 7,
                t0: 1_000_000,
                t1: 1_000_420,
                t2: 1_000_690,
            },
        ]
    }

    #[test]
    fn messages_roundtrip() {
        for message in sample_messages() {
            let bytes = message.encode();
            let back = Message::decode(&bytes).unwrap();
            assert_eq!(back, message, "{message:?}");
        }
    }

    #[test]
    fn every_scenario_tag_roundtrips() {
        for scenario in Scenario::ALL {
            assert_eq!(scenario_from_tag(scenario_tag(scenario)).unwrap(), scenario);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Message::decode(&[200]),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn truncation_rejected_for_every_message() {
        for message in sample_messages() {
            let bytes = message.encode();
            for cut in 0..bytes.len() {
                assert!(
                    Message::decode(&bytes[..cut]).is_err(),
                    "{message:?} decoded from a {cut}-byte prefix"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::Drain.encode();
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn wire_roundtrip_is_sealed() {
        for message in sample_messages() {
            let payload = message.to_wire();
            assert_eq!(Message::from_wire(&payload).unwrap(), message);
        }
    }

    /// The acceptance sweep: any single flipped payload byte — checksum or
    /// body, any message — is rejected as a structured [`FrameError`] and
    /// never decodes into a message, let alone a plausible completion.
    #[test]
    fn seeded_corruption_sweep_never_decodes() {
        use mlperf_stats::rng::Rng64;
        let messages = sample_messages();
        let mut rng = Rng64::new(0x0BAD_F00D);
        let mut corruptions = 0;
        while corruptions < 256 {
            let message = &messages[rng.next_below(messages.len() as u64) as usize];
            let mut payload = message.to_wire();
            let pos = rng.next_below(payload.len() as u64) as usize;
            let bit = rng.next_below(8) as u8;
            payload[pos] ^= 1 << bit;
            match Message::from_wire(&payload) {
                Err(WireError::Frame(e)) => {
                    assert_ne!(e.expected, e.found, "structured mismatch must be real")
                }
                Ok(decoded) => panic!(
                    "corrupted frame decoded into {decoded:?} (byte {pos}, bit {bit}, from {message:?})"
                ),
                Err(other) => panic!("expected FrameError, got {other:?}"),
            }
            corruptions += 1;
        }
    }
}

//! LoadGen over the wire: a network SUT protocol, remote client, and
//! serving daemon.
//!
//! The MLPerf rulebook measures latency at the LoadGen/SUT boundary; this
//! crate moves that boundary onto a TCP connection without moving the
//! rules. A [`RemoteSut`] implements the core `RealtimeSut` trait, so
//! `run_realtime` drives a machine on the other side of the network
//! unchanged, and [`serve`] exports any local SUT — simulated device
//! fleets ([`SimHost`]), fault-injection stacks, anything implementing
//! [`WireService`] — as a daemon.
//!
//! Layering, bottom-up:
//!
//! * [`frame`] — length-prefixed frames, the byte codec, and the per-frame
//!   CRC32 seal that makes corruption a structured [`FrameError`];
//! * [`message`] — the message vocabulary and binary layouts, behind a
//!   versioned handshake that now carries a session id and epoch and
//!   negotiates a protocol version range (v2 peers still interoperate);
//! * [`clock`] — NTP-style four-timestamp offset estimation, so spans
//!   from both hosts merge onto one aligned time axis;
//! * [`stats`] — [`DaemonStats`] and [`fetch_stats`], the one-shot live
//!   telemetry probe a running daemon answers without a handshake;
//! * [`transport`] — the [`Transport`] abstraction over a framed byte
//!   pipe, plus [`WireChaosPlan`] / [`ChaosSession`], the seeded wire
//!   fault injector that decorates either endpoint;
//! * [`client`] — [`RemoteSut`], with bounded in-flight backpressure,
//!   heartbeats, the errored/vanished failure mapping, and
//!   reconnect-and-resume under a [`ResumePolicy`];
//! * [`server`] — [`serve`] / [`ServerHandle`], per-session worker pools
//!   and a completion journal that makes resume replay exactly-once;
//! * [`host`] — [`SimHost`], bridging event-driven simulated SUTs onto
//!   the wall clock;
//! * [`cheat`] — deliberately misbehaving services for audit tests.
//!
//! Everything runs on `std::net` and threads; the workspace is
//! dependency-free by rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cheat;
pub mod client;
pub mod clock;
pub mod frame;
pub mod host;
pub mod message;
pub mod server;
pub mod service;
pub mod stats;
pub mod transport;

pub use cheat::SilentDropService;
pub use client::{RemoteSut, RemoteSutConfig, ResumePolicy};
pub use clock::{ClockEstimator, ClockSample};
pub use frame::{FrameError, WireError, MAX_FRAME_LEN};
pub use host::SimHost;
pub use message::{Hello, Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use server::{serve, serve_on, ServeConfig, ServerHandle};
pub use service::{ServedReply, WireService};
pub use stats::{fetch_stats, DaemonStats};
pub use transport::{ChaosSession, TcpTransport, Transport, WireChaosPlan};

use std::sync::Arc;

/// Spins up a daemon on a loopback port and connects a [`RemoteSut`] to
/// it — the single-process topology CI uses.
///
/// The returned handle keeps the daemon alive; shut the client down (or
/// drop it) before [`ServerHandle::shutdown`].
///
/// # Errors
///
/// Returns [`WireError`] if the bind, connect, or handshake fails.
pub fn loopback(
    service: Arc<dyn WireService>,
    serve_config: ServeConfig,
    hello: Hello,
    client_config: RemoteSutConfig,
) -> Result<(RemoteSut, ServerHandle), WireError> {
    loopback_instrumented(service, serve_config, hello, client_config, None, None)
}

/// [`loopback`] with client-side trace and metrics instrumentation.
///
/// # Errors
///
/// Returns [`WireError`] if the bind, connect, or handshake fails.
pub fn loopback_instrumented(
    service: Arc<dyn WireService>,
    serve_config: ServeConfig,
    hello: Hello,
    client_config: RemoteSutConfig,
    sink: Option<Arc<dyn mlperf_trace::event::TraceSink>>,
    metrics: Option<Arc<mlperf_trace::metrics::MetricsRegistry>>,
) -> Result<(RemoteSut, ServerHandle), WireError> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
    let handle = serve(listener, service, serve_config)?;
    let client =
        RemoteSut::connect_instrumented(handle.addr(), hello, client_config, sink, metrics)?;
    Ok((client, handle))
}

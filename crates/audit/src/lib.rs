//! Compliance auditing (Section V-B).
//!
//! "A challenge of benchmarking inference systems is that many include
//! proprietary and closed-source components ... we developed a validation
//! suite to assist with peer review." This crate is that suite:
//!
//! * [`tests`] — the behavioural audits run against a live SUT:
//!   accuracy verification (sampled performance-mode response logging
//!   checked against an accuracy run), on-the-fly caching detection
//!   (duplicate vs unique sample indices), alternate-random-seed
//!   testing, and query-completeness verification (the issued-vs-resolved
//!   detail-log count that exposes silent query dropping).
//! * [`checker`] — the submission checker: static validation of a scored
//!   run against the Table I/III/V rules (quality target, latency bound,
//!   query counts, validity flags). In the real v0.5 round these checks
//!   surfaced ~40 issues in ~180 closed-division results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod tests;

pub use checker::{check_submission, CheckFinding, SubmissionCheckInput};
pub use tests::{AuditOutcome, AuditReport};

//! The submission checker: static validation of a scored run.

use mlperf_loadgen::requirements::{min_query_count, MIN_DURATION_SECS, OFFLINE_MIN_SAMPLES};
use mlperf_loadgen::results::TestResult;
use mlperf_loadgen::scenario::Scenario;
use mlperf_loadgen::time::Nanos;
use mlperf_models::{QualityTarget, TaskId};

/// Everything the checker needs about one submitted result.
#[derive(Debug, Clone)]
pub struct SubmissionCheckInput<'a> {
    /// The task the result claims.
    pub task: TaskId,
    /// The scored run.
    pub result: &'a TestResult,
    /// Quality measured by the accuracy script on this system.
    pub measured_quality: f64,
    /// FP32 reference quality measured on the proxy reference model.
    pub reference_quality: f64,
}

/// One problem the checker found.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckFinding {
    /// The LoadGen already flagged the run invalid.
    InvalidRun {
        /// Number of validity issues.
        issues: usize,
    },
    /// Fewer queries than Table V requires for this task and scenario.
    QueryCountBelowTableV {
        /// Required queries.
        required: u64,
        /// Observed queries.
        observed: u64,
    },
    /// The offline query carried fewer samples than the rules require.
    OfflineSamplesBelowMinimum {
        /// Required samples.
        required: u64,
        /// Observed samples.
        observed: u64,
    },
    /// The run was shorter than the 60-second minimum.
    DurationBelowMinimum {
        /// Observed duration.
        observed: Nanos,
    },
    /// Quality fell below the Table I window.
    QualityBelowTarget {
        /// Minimum admissible quality.
        threshold: f64,
        /// Measured quality.
        observed: f64,
    },
    /// The result's scenario does not match the claimed metric shape.
    MetricScenarioMismatch,
}

impl std::fmt::Display for CheckFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckFinding::InvalidRun { issues } => {
                write!(f, "run flagged invalid by the LoadGen ({issues} issues)")
            }
            CheckFinding::QueryCountBelowTableV { required, observed } => {
                write!(
                    f,
                    "query count {observed} below the Table V minimum {required}"
                )
            }
            CheckFinding::OfflineSamplesBelowMinimum { required, observed } => {
                write!(f, "offline samples {observed} below the minimum {required}")
            }
            CheckFinding::DurationBelowMinimum { observed } => {
                write!(
                    f,
                    "run duration {observed} below the {MIN_DURATION_SECS}-second minimum"
                )
            }
            CheckFinding::QualityBelowTarget {
                threshold,
                observed,
            } => {
                write!(
                    f,
                    "quality {observed:.4} below the target threshold {threshold:.4}"
                )
            }
            CheckFinding::MetricScenarioMismatch => {
                write!(f, "metric shape does not match the claimed scenario")
            }
        }
    }
}

/// Checks one submission result against the rulebook. Empty output means
/// the result is releasable.
pub fn check_submission(input: &SubmissionCheckInput<'_>) -> Vec<CheckFinding> {
    let mut findings = Vec::new();
    let result = input.result;
    if !result.is_valid() {
        findings.push(CheckFinding::InvalidRun {
            issues: result.validity.len(),
        });
    }
    if !metric_matches_scenario(result) {
        findings.push(CheckFinding::MetricScenarioMismatch);
    }
    let qos = input.task.spec().qos;
    let required = min_query_count(result.scenario, qos);
    if result.query_count < required {
        findings.push(CheckFinding::QueryCountBelowTableV {
            required,
            observed: result.query_count,
        });
    }
    if result.scenario == Scenario::Offline && result.sample_count < OFFLINE_MIN_SAMPLES {
        findings.push(CheckFinding::OfflineSamplesBelowMinimum {
            required: OFFLINE_MIN_SAMPLES,
            observed: result.sample_count,
        });
    }
    if result.duration < Nanos::from_secs(MIN_DURATION_SECS) {
        findings.push(CheckFinding::DurationBelowMinimum {
            observed: result.duration,
        });
    }
    if input.reference_quality > 0.0 {
        let target = QualityTarget::for_task_with_reference(input.task, input.reference_quality);
        if !target.is_met(input.measured_quality) {
            findings.push(CheckFinding::QualityBelowTarget {
                threshold: target.threshold(),
                observed: input.measured_quality,
            });
        }
    } else {
        // A submission without an established reference quality cannot be
        // compared against the window at all.
        findings.push(CheckFinding::QualityBelowTarget {
            threshold: f64::NAN,
            observed: input.measured_quality,
        });
    }
    findings
}

fn metric_matches_scenario(result: &TestResult) -> bool {
    use mlperf_loadgen::results::ScenarioMetric;
    matches!(
        (result.scenario, &result.metric),
        (Scenario::SingleStream, ScenarioMetric::SingleStream { .. })
            | (Scenario::MultiStream, ScenarioMetric::MultiStream { .. })
            | (Scenario::Server, ScenarioMetric::Server { .. })
            | (Scenario::Offline, ScenarioMetric::Offline { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_loadgen::results::{ScenarioMetric, TestResult};
    use mlperf_loadgen::validate::ValidityIssue;

    fn good_result() -> TestResult {
        TestResult {
            sut_name: "sut".into(),
            qsl_name: "qsl".into(),
            scenario: Scenario::SingleStream,
            performance_mode: true,
            metric: ScenarioMetric::SingleStream {
                p90_latency: Nanos::from_millis(5),
            },
            latency_stats: None,
            query_count: 1_024,
            error_count: 0,
            sample_count: 1_024,
            duration: Nanos::from_secs(61),
            validity: vec![],
        }
    }

    fn input(result: &TestResult) -> SubmissionCheckInput<'_> {
        SubmissionCheckInput {
            task: TaskId::ImageClassificationHeavy,
            result,
            measured_quality: 0.76,
            reference_quality: 0.765,
        }
    }

    #[test]
    fn clean_submission_passes() {
        let result = good_result();
        assert!(check_submission(&input(&result)).is_empty());
    }

    #[test]
    fn invalid_run_flagged() {
        let mut result = good_result();
        result.validity.push(ValidityIssue::RunTooShort {
            required: Nanos::from_secs(60),
            observed: Nanos::from_secs(1),
        });
        let findings = check_submission(&input(&result));
        assert!(findings
            .iter()
            .any(|f| matches!(f, CheckFinding::InvalidRun { .. })));
    }

    #[test]
    fn table_v_count_enforced_per_task() {
        let mut result = good_result();
        result.scenario = Scenario::Server;
        result.metric = ScenarioMetric::Server {
            qps: 100.0,
            overlatency_fraction: 0.0,
        };
        result.query_count = 100_000; // below 270,336 for vision
        let findings = check_submission(&input(&result));
        assert!(findings.iter().any(|f| matches!(
            f,
            CheckFinding::QueryCountBelowTableV {
                required: 270_336,
                ..
            }
        )));
        // But enough for translation's 90,112.
        let sci = SubmissionCheckInput {
            task: TaskId::MachineTranslation,
            result: &result,
            measured_quality: 23.8,
            reference_quality: 23.9,
        };
        assert!(!check_submission(&sci)
            .iter()
            .any(|f| matches!(f, CheckFinding::QueryCountBelowTableV { .. })));
    }

    #[test]
    fn offline_sample_minimum_enforced() {
        let mut result = good_result();
        result.scenario = Scenario::Offline;
        result.metric = ScenarioMetric::Offline {
            samples_per_second: 10.0,
        };
        result.query_count = 1;
        result.sample_count = 10_000;
        let findings = check_submission(&input(&result));
        assert!(findings
            .iter()
            .any(|f| matches!(f, CheckFinding::OfflineSamplesBelowMinimum { .. })));
    }

    #[test]
    fn short_duration_flagged() {
        let mut result = good_result();
        result.duration = Nanos::from_secs(30);
        let findings = check_submission(&input(&result));
        assert!(findings
            .iter()
            .any(|f| matches!(f, CheckFinding::DurationBelowMinimum { .. })));
    }

    #[test]
    fn quality_window_enforced() {
        let result = good_result();
        let mut sci = input(&result);
        sci.measured_quality = 0.70; // far below 99% of 0.765
        let findings = check_submission(&sci);
        assert!(findings
            .iter()
            .any(|f| matches!(f, CheckFinding::QualityBelowTarget { .. })));
    }

    #[test]
    fn metric_shape_checked() {
        let mut result = good_result();
        result.metric = ScenarioMetric::Offline {
            samples_per_second: 1.0,
        };
        let findings = check_submission(&input(&result));
        assert!(findings.contains(&CheckFinding::MetricScenarioMismatch));
    }

    #[test]
    fn findings_display() {
        let f = CheckFinding::QualityBelowTarget {
            threshold: 0.75,
            observed: 0.70,
        };
        assert!(f.to_string().contains("below"));
    }
}

//! Behavioural audits run against a live SUT.

use mlperf_loadgen::config::{TestMode, TestSettings};
use mlperf_loadgen::des::{run_simulated, run_simulated_traced};
use mlperf_loadgen::qsl::QuerySampleLibrary;
use mlperf_loadgen::query::{Query, QuerySample, ResponsePayload, SampleIndex};
use mlperf_loadgen::realtime::run_realtime_traced;
use mlperf_loadgen::sut::{RealtimeSut, SimSut};
use mlperf_loadgen::time::Nanos;
use mlperf_loadgen::LoadGenError;
use mlperf_trace::event::TraceRecord;
use mlperf_trace::{RingBufferSink, TraceEvent};
use std::collections::HashMap;

/// Pass/fail outcome of one audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The SUT behaved within the rules.
    Pass,
    /// The SUT violated a rule; the string explains how.
    Fail(String),
}

impl AuditOutcome {
    /// Whether the audit passed.
    pub fn passed(&self) -> bool {
        matches!(self, AuditOutcome::Pass)
    }
}

/// The result of running one audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Audit name ("TEST01"-style plus a descriptive slug).
    pub test: &'static str,
    /// Outcome.
    pub outcome: AuditOutcome,
    /// Measured evidence (ratios, counts).
    pub details: String,
}

impl AuditReport {
    /// Whether the audit passed.
    pub fn passed(&self) -> bool {
        self.outcome.passed()
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} ({})",
            self.test,
            match &self.outcome {
                AuditOutcome::Pass => "PASS",
                AuditOutcome::Fail(_) => "FAIL",
            },
            self.details
        )
    }
}

/// Drives a SUT through a fixed sequence of single-sample queries,
/// sequentially (next issued at the previous completion), returning the
/// total simulated time. Handles SUT wakeups so batching engines work too.
fn drive_sequence<S: SimSut + ?Sized>(
    sut: &mut S,
    indices: &[SampleIndex],
) -> Result<Nanos, LoadGenError> {
    sut.reset();
    let mut now = Nanos::ZERO;
    for (i, index) in indices.iter().enumerate() {
        let query = Query {
            id: i as u64,
            samples: vec![QuerySample {
                id: i as u64,
                index: *index,
            }],
            scheduled_at: now,
            tenant: 0,
        };
        let mut reaction = sut.on_query(now, &query);
        // Follow wakeups until this query completes.
        let mut guard = 0;
        while reaction.completions.is_empty() {
            let at = reaction.wakeup_at.ok_or_else(|| {
                LoadGenError::SutProtocol("SUT stalled: no completion, no wakeup".into())
            })?;
            reaction = sut.on_wakeup(at.max(now));
            guard += 1;
            if guard > 1_000 {
                return Err(LoadGenError::SutProtocol(
                    "SUT wakeup loop did not converge".into(),
                ));
            }
        }
        let completion = reaction
            .completions
            .iter()
            .find(|c| c.query_id == query.id)
            .ok_or_else(|| {
                LoadGenError::SutProtocol(format!("completion for query {} missing", query.id))
            })?;
        now = now.max(completion.finished_at);
    }
    Ok(now)
}

/// On-the-fly caching detection.
///
/// Runs one pass over `query_count` *unique* indices and one over the same
/// count of *duplicated* indices (a small working set repeated). Inference
/// must not be faster merely because a sample was seen before; a speedup
/// beyond `max_speedup` fails the audit. (Rules: "the rules prohibit
/// caching of queries and intermediate data".)
///
/// # Errors
///
/// Propagates [`LoadGenError`] if the SUT violates the protocol.
pub fn caching_detection<S: SimSut + ?Sized>(
    sut: &mut S,
    population: usize,
    query_count: usize,
    max_speedup: f64,
) -> Result<AuditReport, LoadGenError> {
    let unique: Vec<SampleIndex> = (0..query_count).map(|i| i % population).collect();
    // Prime pass so caches warm, then the measured duplicate pass.
    let working_set = 4.min(population);
    let dup: Vec<SampleIndex> = (0..query_count).map(|i| i % working_set).collect();
    let t_unique = drive_sequence(sut, &unique)?;
    let _warm = drive_sequence(sut, &dup)?;
    let t_dup = drive_sequence(sut, &dup)?;
    let speedup = t_unique.as_secs_f64() / t_dup.as_secs_f64().max(1e-12);
    let outcome = if speedup > max_speedup {
        AuditOutcome::Fail(format!(
            "duplicate-sample traffic ran {speedup:.2}x faster than unique traffic"
        ))
    } else {
        AuditOutcome::Pass
    };
    Ok(AuditReport {
        test: "TEST04-caching-detection",
        outcome,
        details: format!(
            "unique={t_unique} duplicates={t_dup} speedup={speedup:.3} (max {max_speedup})"
        ),
    })
}

/// Alternate-random-seed testing.
///
/// Reruns the benchmark with each of `rounds` alternate seed triples and
/// compares the single-stream p90 latency against the official-seed run.
/// Performance better than `max_ratio`× under the official seed fails the
/// audit (optimizing for the published seed is prohibited).
///
/// # Errors
///
/// Propagates run errors from the LoadGen.
pub fn alternate_seed_test<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    rounds: u32,
    max_ratio: f64,
) -> Result<AuditReport, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    let official = run_simulated(settings, qsl, sut)?;
    let official_p90 = official
        .result
        .latency_stats
        .map(|s| s.p90.as_secs_f64())
        .unwrap_or(f64::INFINITY);
    let mut worst_ratio = 1.0f64;
    for round in 0..rounds {
        let alt = settings.clone().with_seeds(settings.seeds.alternate(round));
        let outcome = run_simulated(&alt, qsl, sut)?;
        let p90 = outcome
            .result
            .latency_stats
            .map(|s| s.p90.as_secs_f64())
            .unwrap_or(f64::INFINITY);
        worst_ratio = worst_ratio.max(p90 / official_p90.max(1e-12));
    }
    let outcome = if worst_ratio > max_ratio {
        AuditOutcome::Fail(format!(
            "alternate seeds ran {worst_ratio:.2}x slower than the official seed"
        ))
    } else {
        AuditOutcome::Pass
    };
    Ok(AuditReport {
        test: "TEST05-alternate-seeds",
        outcome,
        details: format!("worst alt/official p90 ratio {worst_ratio:.3} (max {max_ratio})"),
    })
}

/// Accuracy verification.
///
/// Runs the SUT in accuracy mode to establish reference responses, then in
/// performance mode with randomly sampled response logging, and checks the
/// logged performance-mode payloads against the reference. Any mismatch
/// fails: results returned in performance mode must be real inferences.
///
/// # Errors
///
/// Propagates run errors from the LoadGen.
pub fn accuracy_verification<Q, S>(
    perf_settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
    log_probability: f64,
) -> Result<AuditReport, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    let accuracy_settings = perf_settings.clone().with_mode(TestMode::AccuracyOnly);
    let reference_run = run_simulated(&accuracy_settings, qsl, sut)?;
    let reference: HashMap<SampleIndex, ResponsePayload> = reference_run
        .accuracy_log
        .into_iter()
        .map(|l| (l.sample_index, l.payload))
        .collect();
    let perf = perf_settings
        .clone()
        .with_mode(TestMode::PerformanceOnly)
        .with_accuracy_log_probability(log_probability);
    let perf_run = run_simulated(&perf, qsl, sut)?;
    let checked = perf_run.accuracy_log.len();
    let mismatches = perf_run
        .accuracy_log
        .iter()
        .filter(|l| reference.get(&l.sample_index) != Some(&l.payload))
        .count();
    let outcome = if checked == 0 {
        AuditOutcome::Fail("no responses were sampled for verification".into())
    } else if mismatches > 0 {
        AuditOutcome::Fail(format!(
            "{mismatches}/{checked} sampled performance-mode responses disagree with accuracy mode"
        ))
    } else {
        AuditOutcome::Pass
    };
    Ok(AuditReport {
        test: "TEST01-accuracy-verification",
        outcome,
        details: format!("checked {checked} sampled responses, {mismatches} mismatches"),
    })
}

/// Custom-data-set testing.
///
/// "In addition to the LoadGen's validation features, we use custom data
/// sets to detect result caching" (Section V-B). The SUT first processes
/// the standard sample range twice (letting any cross-run cache warm up),
/// then a *custom* range it has never seen. A system that is markedly
/// faster on the warmed standard set than on the fresh custom set is
/// serving cached results.
///
/// # Errors
///
/// Propagates [`LoadGenError`] if the SUT violates the protocol.
pub fn custom_dataset_test<S: SimSut + ?Sized>(
    sut: &mut S,
    standard_population: usize,
    query_count: usize,
    max_speedup: f64,
) -> Result<AuditReport, LoadGenError> {
    let standard: Vec<SampleIndex> = (0..query_count).map(|i| i % standard_population).collect();
    // Custom set: indices the SUT has never seen.
    let custom: Vec<SampleIndex> = (0..query_count)
        .map(|i| standard_population + (i % standard_population))
        .collect();
    let _warm = drive_sequence(sut, &standard)?;
    let t_standard = drive_sequence(sut, &standard)?;
    let t_custom = drive_sequence(sut, &custom)?;
    let speedup = t_custom.as_secs_f64() / t_standard.as_secs_f64().max(1e-12);
    let outcome = if speedup > max_speedup {
        AuditOutcome::Fail(format!(
            "the familiar data set ran {speedup:.2}x faster than a custom one"
        ))
    } else {
        AuditOutcome::Pass
    };
    Ok(AuditReport {
        test: "custom-dataset",
        outcome,
        details: format!(
            "standard={t_standard} custom={t_custom} speedup={speedup:.3} (max {max_speedup})"
        ),
    })
}

/// Query-completeness verification.
///
/// Replays the submitted settings in performance mode with the detail log
/// attached and compares the number of queries the LoadGen *issued* with
/// the number the SUT *resolved* — completed or explicitly errored. A SUT
/// that silently discards its slowest queries reports a latency
/// distribution built only from the queries it chose to answer; the
/// issued-vs-resolved count mismatch exposes it. Honest degraded systems
/// pass: an errored query is resolved, only a vanished one is not.
///
/// # Errors
///
/// Propagates run errors from the LoadGen.
pub fn completeness_check<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
) -> Result<AuditReport, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    let perf = settings.clone().with_mode(TestMode::PerformanceOnly);
    let sink = RingBufferSink::unbounded();
    let _outcome = run_simulated_traced(&perf, qsl, sut, &sink)?;
    Ok(completeness_report(&sink.snapshot()))
}

/// [`completeness_check`] for wall-clock SUTs — including network ones.
///
/// Replays the settings through the realtime runner with the detail log
/// attached. This is the audit to point at a `RemoteSut`: a serving
/// daemon that silently drops frames leaves issued-but-never-resolved
/// queries in the log, and the verdict comes from the same
/// [`completeness_report`] counting as the simulated path.
///
/// # Errors
///
/// Propagates run errors from the LoadGen.
pub fn completeness_check_realtime<Q>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: std::sync::Arc<dyn RealtimeSut>,
) -> Result<AuditReport, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
{
    let perf = settings.clone().with_mode(TestMode::PerformanceOnly);
    let sink = RingBufferSink::unbounded();
    let _outcome = run_realtime_traced(&perf, qsl, sut, &sink)?;
    Ok(completeness_report(&sink.snapshot()))
}

/// Renders the TEST06 verdict from an already-captured detail log:
/// queries *issued* versus queries *resolved* (completed or explicitly
/// errored). Shared by the simulated and realtime/network audit paths;
/// also usable directly on a detail log captured elsewhere.
///
/// Two cheats are caught, not one. A SUT that silently discards queries
/// resolves fewer than were issued; a SUT (or a buggy resume/replay
/// path) that reports the same query twice inflates its throughput with
/// completions the LoadGen never asked for. Both fail: every issued
/// query must resolve exactly once.
pub fn completeness_report(records: &[TraceRecord]) -> AuditReport {
    let issued = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::QueryIssued { .. }))
        .count();
    let mut resolutions: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for record in records {
        if let TraceEvent::QueryCompleted { query_id, .. }
        | TraceEvent::QueryErrored { query_id, .. } = record.event
        {
            *resolutions.entry(query_id).or_insert(0) += 1;
        }
    }
    let resolved: usize = resolutions.values().sum();
    let double_counted = resolutions.values().filter(|&&count| count > 1).count();
    let outcome = if issued == 0 {
        AuditOutcome::Fail("the run issued no queries to audit".into())
    } else if double_counted > 0 {
        AuditOutcome::Fail(format!(
            "{double_counted} queries resolved more than once (double-counted completions)"
        ))
    } else if resolved > issued {
        AuditOutcome::Fail(format!(
            "the SUT resolved {resolved} queries but only {issued} were issued"
        ))
    } else if resolved < issued {
        AuditOutcome::Fail(format!(
            "{} of {issued} issued queries silently vanished (never completed, never errored)",
            issued - resolved
        ))
    } else {
        AuditOutcome::Pass
    };
    AuditReport {
        test: "TEST06-query-completeness",
        outcome,
        details: format!("issued {issued} queries, SUT resolved {resolved}"),
    }
}

/// Performance-mode detail-log compliance.
///
/// The rules require accuracy logging to be off during performance runs
/// (the LoadGen "logs detailed information about the run for analysis and
/// result validation", but results submitted for performance must not have
/// paid the cost of recording responses). This audit replays the submitted
/// settings in performance mode with a ring-buffer sink attached and fails
/// if the detail log contains any [`TraceEvent::AccuracyLogged`] event, or
/// if any response payload reached the accuracy log.
///
/// # Errors
///
/// Propagates run errors from the LoadGen.
pub fn detail_log_compliance<Q, S>(
    settings: &TestSettings,
    qsl: &mut Q,
    sut: &mut S,
) -> Result<AuditReport, LoadGenError>
where
    Q: QuerySampleLibrary + ?Sized,
    S: SimSut + ?Sized,
{
    let perf = settings
        .clone()
        .with_mode(TestMode::PerformanceOnly)
        .with_accuracy_log_probability(0.0);
    let sink = RingBufferSink::unbounded();
    let outcome = run_simulated_traced(&perf, qsl, sut, &sink)?;
    let records = sink.snapshot();
    let accuracy_events = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::AccuracyLogged { .. }))
        .count();
    let logged_payloads = outcome.accuracy_log.len();
    let verdict = if records.is_empty() {
        AuditOutcome::Fail("the run produced no detail log to audit".into())
    } else if accuracy_events > 0 || logged_payloads > 0 {
        AuditOutcome::Fail(format!(
            "performance-mode detail log carries accuracy data: \
             {accuracy_events} AccuracyLogged events, {logged_payloads} logged payloads"
        ))
    } else {
        AuditOutcome::Pass
    };
    Ok(AuditReport {
        test: "detail-log-compliance",
        outcome: verdict,
        details: format!(
            "{} detail-log events, {accuracy_events} accuracy events, \
             {logged_payloads} logged payloads",
            records.len()
        ),
    })
}

#[cfg(test)]
mod unit {
    use super::*;
    use mlperf_loadgen::qsl::MemoryQsl;
    use mlperf_loadgen::sut::FixedLatencySut;

    #[test]
    fn drive_sequence_accumulates_time() {
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10));
        let t = drive_sequence(&mut sut, &[0, 1, 2, 3]).unwrap();
        assert_eq!(t, Nanos::from_micros(40));
    }

    #[test]
    fn honest_sut_passes_caching_detection() {
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10));
        let report = caching_detection(&mut sut, 16, 64, 1.5).unwrap();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn honest_sut_passes_alternate_seeds() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(64)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10));
        let report = alternate_seed_test(&settings, &mut qsl, &mut sut, 2, 1.2).unwrap();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn honest_sut_passes_accuracy_verification() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(200)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10)).with_class_payloads(5);
        let report = accuracy_verification(&settings, &mut qsl, &mut sut, 0.2).unwrap();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn honest_sut_passes_custom_dataset() {
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10));
        let report = custom_dataset_test(&mut sut, 32, 64, 1.5).unwrap();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn clean_performance_run_passes_detail_log_compliance() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(64)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10)).with_class_payloads(5);
        let report = detail_log_compliance(&settings, &mut qsl, &mut sut).unwrap();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn detail_log_compliance_forces_accuracy_logging_off() {
        // Even settings submitted with accuracy logging enabled are audited
        // with it off — and the audited run must then be clean.
        let settings = TestSettings::single_stream()
            .with_min_query_count(64)
            .with_min_duration(Nanos::from_micros(1))
            .with_accuracy_log_probability(0.5);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10)).with_class_payloads(5);
        let report = detail_log_compliance(&settings, &mut qsl, &mut sut).unwrap();
        assert!(report.passed(), "{report}");
        // Control: the same settings run as submitted DO emit accuracy
        // events, so the audit is checking something real.
        let sink = RingBufferSink::unbounded();
        let out = run_simulated_traced(&settings, &mut qsl, &mut sut, &sink).unwrap();
        assert!(!out.accuracy_log.is_empty());
        assert!(sink
            .snapshot()
            .iter()
            .any(|r| matches!(r.event, TraceEvent::AccuracyLogged { .. })));
    }

    #[test]
    fn honest_sut_passes_completeness_check() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(64)
            .with_min_duration(Nanos::from_micros(1));
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let mut sut = FixedLatencySut::new("f", Nanos::from_micros(10));
        let report = completeness_check(&settings, &mut qsl, &mut sut).unwrap();
        assert!(report.passed(), "{report}");
    }

    /// Builds a synthetic detail log: `issued` queries issued, then one
    /// resolution per entry in `resolutions` (query id, errored?).
    fn synthetic_log(issued: u64, resolutions: &[(u64, bool)]) -> Vec<TraceRecord> {
        let mut records = Vec::new();
        for query_id in 0..issued {
            records.push(TraceRecord {
                ts_ns: query_id * 10,
                event: TraceEvent::QueryIssued {
                    query_id,
                    sample_count: 1,
                    delay_ns: 0,
                },
            });
        }
        for (i, &(query_id, errored)) in resolutions.iter().enumerate() {
            let event = if errored {
                TraceEvent::QueryErrored {
                    query_id,
                    latency_ns: 100,
                }
            } else {
                TraceEvent::QueryCompleted {
                    query_id,
                    latency_ns: 100,
                }
            };
            records.push(TraceRecord {
                ts_ns: issued * 10 + i as u64,
                event,
            });
        }
        records
    }

    #[test]
    fn completeness_passes_exactly_once_resolutions() {
        let records = synthetic_log(4, &[(0, false), (1, false), (2, true), (3, false)]);
        let report = completeness_report(&records);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn duplicated_completion_cheat_fails_completeness() {
        // A replayed completion that gets counted twice — the cheat a
        // buggy resume/journal path would commit. The totals even out
        // (4 issued, 4 resolutions) because the duplicate hides a
        // genuinely vanished query; per-id counting catches both.
        let records = synthetic_log(4, &[(0, false), (1, false), (1, false), (2, true)]);
        let report = completeness_report(&records);
        match &report.outcome {
            AuditOutcome::Fail(reason) => assert!(
                reason.contains("more than once"),
                "unexpected failure reason: {reason}"
            ),
            AuditOutcome::Pass => panic!("double-counted completions must fail TEST06: {report}"),
        }
        // The same cheat without the vanished query: more resolutions
        // than issues, still a FAIL.
        let records = synthetic_log(2, &[(0, false), (0, false), (1, false)]);
        assert!(!completeness_report(&records).passed());
    }

    #[test]
    fn merged_sharded_failover_log_passes_completeness() {
        // TEST06 over a *fleet* run: a two-shard router whose first shard
        // dies mid-run. The dying shard's queries fail over to the
        // survivor, and the merged detail log — LoadGen rows interleaved
        // with the router's ShardEvent rows — must still show every
        // issued query resolved exactly once.
        use mlperf_loadgen::query::SampleCompletion;
        use mlperf_loadgen::sut::IssueOutcome;
        use mlperf_sut::{BalancePolicy, ShardEndpoint, ShardedSut};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        /// Completes its first `threshold` queries, then every later one
        /// vanishes — the client-side shape of a shard daemon killed
        /// mid-run.
        struct DieAfter {
            served: AtomicU64,
            threshold: u64,
        }
        impl RealtimeSut for DieAfter {
            fn name(&self) -> &str {
                "die-after"
            }
            fn issue(&self, query: &Query) -> Vec<SampleCompletion> {
                match self.issue_outcome(query) {
                    IssueOutcome::Completed(samples) => samples,
                    _ => Vec::new(),
                }
            }
            fn issue_outcome(&self, query: &Query) -> IssueOutcome {
                if self.served.fetch_add(1, Ordering::SeqCst) >= self.threshold {
                    return IssueOutcome::Vanished;
                }
                IssueOutcome::Completed(
                    query
                        .samples
                        .iter()
                        .map(|s| SampleCompletion {
                            sample_id: s.id,
                            payload: ResponsePayload::Empty,
                        })
                        .collect(),
                )
            }
        }
        let shard = |threshold| {
            Arc::new(DieAfter {
                served: AtomicU64::new(0),
                threshold,
            }) as Arc<dyn RealtimeSut>
        };

        let sink = Arc::new(RingBufferSink::unbounded());
        let router = Arc::new(
            ShardedSut::new("audit-fleet", BalancePolicy::RoundRobin)
                .with_endpoint(ShardEndpoint::new("shard-0", shard(2)))
                .with_endpoint(ShardEndpoint::new("shard-1", shard(u64::MAX)))
                .with_sink(sink.clone()),
        );
        let settings = TestSettings::server(2_000.0, Nanos::from_millis(50))
            .with_min_query_count(16)
            .with_min_duration(Nanos::from_millis(1))
            .with_mode(TestMode::PerformanceOnly);
        let mut qsl = MemoryQsl::new("q", 32, 32);
        run_realtime_traced(&settings, &mut qsl, router, sink.as_ref()).unwrap();

        let records = sink.snapshot();
        let shard_kind = |kind: &str| {
            records.iter().any(|r| {
                matches!(&r.event, TraceEvent::ShardEvent { kind: k, shard, .. }
                    if k == kind && shard == "shard-0")
            })
        };
        assert!(
            shard_kind("failover"),
            "the dying shard's in-flight queries must fail over"
        );
        assert!(shard_kind("down"), "the dying shard must be declared down");
        let report = completeness_report(&records);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn report_display() {
        let r = AuditReport {
            test: "TEST04-caching-detection",
            outcome: AuditOutcome::Fail("too fast".into()),
            details: "x".into(),
        };
        assert!(r.to_string().contains("FAIL"));
        assert!(!r.passed());
    }
}

//! The audits must catch each cheating SUT and clear the honest one.

use mlperf_audit::tests::{
    accuracy_verification, alternate_seed_test, caching_detection, completeness_check,
};
use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::sut::SimSut;
use mlperf_loadgen::time::Nanos;
use mlperf_models::{TaskId, Workload};
use mlperf_stats::rng::SeedTriple;
use mlperf_sut::cheats::{CachingSut, SeedSniffingSut, SilentDropperSut, SloppyAccuracySut};
use mlperf_sut::device::{Architecture, DeviceSpec};
use mlperf_sut::engine::{BatchPolicy, DeviceSut};
use mlperf_sut::faults::{FaultPlan, FaultySut};

fn engine() -> DeviceSut {
    DeviceSut::new(
        DeviceSpec::new(
            "audit-dev",
            Architecture::Cpu,
            100.0,
            0.5,
            8,
            1,
            Nanos::from_micros(100),
        ),
        Workload::new(TaskId::ImageClassificationLight),
        BatchPolicy::Immediate,
    )
}

#[test]
fn caching_detection_catches_result_cache() {
    let mut cheater = CachingSut::new(engine(), 10);
    let report = caching_detection(&mut cheater, 64, 128, 1.5).unwrap();
    assert!(!report.passed(), "cache went undetected: {report}");
}

#[test]
fn caching_detection_clears_honest_engine() {
    let mut honest = engine();
    let report = caching_detection(&mut honest, 64, 128, 1.5).unwrap();
    assert!(report.passed(), "{report}");
}

#[test]
fn alternate_seed_test_catches_seed_sniffer() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(128)
        .with_min_duration(Nanos::from_micros(1))
        .with_seeds(SeedTriple::OFFICIAL);
    let mut qsl = MemoryQsl::new("q", 64, 64);
    let mut cheater = SeedSniffingSut::new(engine(), SeedTriple::OFFICIAL.qsl_seed, 64, 100_000);
    let report = alternate_seed_test(&settings, &mut qsl, &mut cheater, 2, 1.3).unwrap();
    assert!(!report.passed(), "seed sniffing went undetected: {report}");
}

#[test]
fn alternate_seed_test_clears_honest_engine() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(128)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("q", 64, 64);
    let mut honest = engine();
    let report = alternate_seed_test(&settings, &mut qsl, &mut honest, 2, 1.3).unwrap();
    assert!(report.passed(), "{report}");
}

#[test]
fn accuracy_verification_catches_sloppy_sut() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(256)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("q", 128, 128);
    let honest_payloads = engine().with_payloads(std::sync::Arc::new(|i| {
        mlperf_loadgen::query::ResponsePayload::Class(i * 7 % 13)
    }));
    let mut cheater = SloppyAccuracySut::new(honest_payloads, 3);
    let report = accuracy_verification(&settings, &mut qsl, &mut cheater, 0.25).unwrap();
    assert!(
        !report.passed(),
        "sloppy accuracy went undetected: {report}"
    );
}

#[test]
fn accuracy_verification_clears_honest_sut() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(256)
        .with_min_duration(Nanos::from_micros(1));
    let mut qsl = MemoryQsl::new("q", 128, 128);
    let mut honest = engine().with_payloads(std::sync::Arc::new(|i| {
        mlperf_loadgen::query::ResponsePayload::Class(i * 7 % 13)
    }));
    let report = accuracy_verification(&settings, &mut qsl, &mut honest, 0.25).unwrap();
    assert!(report.passed(), "{report}");
}

#[test]
fn custom_dataset_test_catches_result_cache() {
    use mlperf_audit::tests::custom_dataset_test;
    let mut cheater = CachingSut::new(engine(), 10);
    let report = custom_dataset_test(&mut cheater, 64, 128, 1.5).unwrap();
    assert!(
        !report.passed(),
        "cross-dataset cache went undetected: {report}"
    );
}

#[test]
fn custom_dataset_test_clears_honest_engine() {
    use mlperf_audit::tests::custom_dataset_test;
    let mut honest = engine();
    let report = custom_dataset_test(&mut honest, 64, 128, 1.5).unwrap();
    assert!(report.passed(), "{report}");
}

/// Server settings loading the audit device to ~80% utilization, where
/// queueing spreads the latency distribution enough for a tail to exist.
fn loaded_server_settings() -> TestSettings {
    let mut probe = engine();
    let q = mlperf_loadgen::query::Query {
        id: 0,
        samples: vec![mlperf_loadgen::query::QuerySample { id: 0, index: 0 }],
        scheduled_at: Nanos::ZERO,
        tenant: 0,
    };
    let service = probe.on_query(Nanos::ZERO, &q).completions[0].finished_at;
    let rate = 0.8 / service.as_secs_f64();
    TestSettings::server(rate, service.mul(20))
        .with_min_query_count(2_000)
        .with_min_duration(Nanos::ZERO)
}

#[test]
fn completeness_check_catches_silent_dropper() {
    let settings = loaded_server_settings();
    let mut qsl = MemoryQsl::new("q", 64, 64);
    let mut cheater = SilentDropperSut::new(engine(), 0.05, 1.5);
    let report = completeness_check(&settings, &mut qsl, &mut cheater).unwrap();
    assert!(
        !report.passed(),
        "silent dropping went undetected: {report}"
    );
}

#[test]
fn completeness_check_clears_honest_engine() {
    let settings = loaded_server_settings();
    let mut qsl = MemoryQsl::new("q", 64, 64);
    let mut honest = engine();
    let report = completeness_check(&settings, &mut qsl, &mut honest).unwrap();
    assert!(report.passed(), "{report}");
}

#[test]
fn completeness_check_tolerates_honest_errors() {
    // A degraded-but-honest SUT resolves its failures as explicit errors;
    // only *vanished* queries fail the audit.
    let settings = loaded_server_settings();
    let mut qsl = MemoryQsl::new("q", 64, 64);
    let mut degraded = FaultySut::new(engine(), FaultPlan::new(7).with_transient_errors(0.1));
    let report = completeness_check(&settings, &mut qsl, &mut degraded).unwrap();
    assert!(report.passed(), "{report}");
}

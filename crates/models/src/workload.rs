//! Per-sample operation counts for the latency simulation.
//!
//! Vision models cost a fixed number of operations per input (Table I).
//! GNMT's cost varies with sequence length — the property behind the
//! paper's observation that NMT suffers the largest server-scenario
//! throughput loss (Section VI-B). The simulated devices query this type
//! per sample index.

use crate::registry::TaskId;
use mlperf_datasets::SyntheticSentences;

/// GNMT nominal operations per token, in GOPS (≈ 2 × encoder+decoder
/// parameter usage per step).
const GNMT_GOPS_PER_TOKEN: f64 = 0.6;

/// A task's computational footprint as seen by a device.
#[derive(Debug, Clone)]
pub struct Workload {
    task: TaskId,
    sentences: Option<SyntheticSentences>,
}

impl Workload {
    /// Creates the workload for `task`. Translation derives per-sample
    /// sequence lengths from the standard synthetic corpus seed.
    pub fn new(task: TaskId) -> Self {
        let sentences = match task {
            // Continuation 0.95 puts the mean near WMT's ~21 tokens/sentence,
            // aligning mean cost with the nominal Table I figure.
            TaskId::MachineTranslation => Some(
                SyntheticSentences::new(8_192, 65_536, 0x0057_4d54_3136_u64, 4, 64)
                    .with_continuation(0.95),
            ),
            _ => None,
        };
        Self { task, sentences }
    }

    /// The task this workload describes.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Operations for one inference on `sample_index`, in GOPS.
    pub fn ops_for_sample(&self, sample_index: usize) -> f64 {
        match &self.sentences {
            None => self.task.spec().gops_per_input,
            Some(corpus) => {
                let len = corpus
                    .sentence_length(sample_index % corpus.len())
                    .expect("index wrapped into range");
                len as f64 * GNMT_GOPS_PER_TOKEN
            }
        }
    }

    /// Mean operations per input over a window of samples, in GOPS.
    pub fn mean_ops(&self, window: usize) -> f64 {
        let n = window.max(1);
        (0..n).map(|i| self.ops_for_sample(i)).sum::<f64>() / n as f64
    }

    /// Whether per-sample cost varies (true only for translation).
    pub fn is_variable(&self) -> bool {
        self.sentences.is_some()
    }

    /// A high-percentile per-sample cost, in GOPS — what tail-latency
    /// capability checks must budget for. Vision tasks are constant;
    /// translation pays for its longest admissible sentence.
    pub fn worst_case_ops(&self) -> f64 {
        match &self.sentences {
            None => self.task.spec().gops_per_input,
            Some(corpus) => corpus.length_range().1 as f64 * GNMT_GOPS_PER_TOKEN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_costs_are_constant_and_match_table_i() {
        for task in [
            TaskId::ImageClassificationHeavy,
            TaskId::ImageClassificationLight,
            TaskId::ObjectDetectionHeavy,
            TaskId::ObjectDetectionLight,
        ] {
            let w = Workload::new(task);
            assert!(!w.is_variable());
            assert_eq!(w.ops_for_sample(0), task.spec().gops_per_input);
            assert_eq!(w.ops_for_sample(123), w.ops_for_sample(9_999));
        }
    }

    #[test]
    fn translation_costs_vary_with_length() {
        let w = Workload::new(TaskId::MachineTranslation);
        assert!(w.is_variable());
        let costs: Vec<f64> = (0..200).map(|i| w.ops_for_sample(i)).collect();
        let distinct: std::collections::HashSet<u64> =
            costs.iter().map(|c| (*c * 1000.0) as u64).collect();
        assert!(distinct.len() > 5, "costs should vary");
        // All positive and bounded by the max sentence length.
        assert!(costs.iter().all(|c| *c >= 4.0 * GNMT_GOPS_PER_TOKEN));
        assert!(costs.iter().all(|c| *c <= 64.0 * GNMT_GOPS_PER_TOKEN));
    }

    #[test]
    fn translation_mean_near_nominal() {
        let w = Workload::new(TaskId::MachineTranslation);
        let mean = w.mean_ops(5_000);
        let nominal = TaskId::MachineTranslation.spec().gops_per_input;
        assert!(
            (mean / nominal - 1.0).abs() < 0.5,
            "mean {mean} vs nominal {nominal}"
        );
    }

    #[test]
    fn deterministic_per_index() {
        let a = Workload::new(TaskId::MachineTranslation);
        let b = Workload::new(TaskId::MachineTranslation);
        for i in [0usize, 7, 1_000, 65_535, 70_000] {
            assert_eq!(a.ops_for_sample(i), b.ops_for_sample(i));
        }
    }
}

//! Table I + Table III: the five reference workloads and their constraints.

use mlperf_loadgen::requirements::QosClass;
use mlperf_loadgen::time::Nanos;

/// Identifier of an MLPerf Inference v0.5 task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskId {
    /// ResNet-50 v1.5 on ImageNet.
    ImageClassificationHeavy,
    /// MobileNet-v1 224 on ImageNet.
    ImageClassificationLight,
    /// SSD-ResNet-34 on upscaled COCO.
    ObjectDetectionHeavy,
    /// SSD-MobileNet-v1 on COCO.
    ObjectDetectionLight,
    /// GNMT on WMT16 EN-DE.
    MachineTranslation,
}

impl TaskId {
    /// All tasks in Table I order.
    pub const ALL: [TaskId; 5] = [
        TaskId::ImageClassificationHeavy,
        TaskId::ImageClassificationLight,
        TaskId::ObjectDetectionHeavy,
        TaskId::ObjectDetectionLight,
        TaskId::MachineTranslation,
    ];

    /// The workload descriptor for this task.
    pub fn spec(&self) -> &'static ReferenceModel {
        &REGISTRY[*self as usize]
    }

    /// Looks a task up by its Table I model name (e.g. `"GNMT"`).
    pub fn from_model_name(name: &str) -> Option<TaskId> {
        REGISTRY
            .iter()
            .find(|m| m.model_name.eq_ignore_ascii_case(name))
            .map(|m| m.task)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().model_name)
    }
}

/// One row of Table I, extended with the Table III latency constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceModel {
    /// The task this model serves.
    pub task: TaskId,
    /// Table I "area" column.
    pub area: &'static str,
    /// Table I "task" column.
    pub task_name: &'static str,
    /// Table I "reference model" column.
    pub model_name: &'static str,
    /// Parameters, in millions.
    pub params_millions: f64,
    /// Operations per input, in GOPS (GNMT: nominal, at the mean sentence
    /// length — its true per-sample count varies with sequence length).
    pub gops_per_input: f64,
    /// Table I "data set" column.
    pub dataset: &'static str,
    /// FP32 reference quality (Top-1 %, mAP, or SacreBLEU).
    pub fp32_quality: f64,
    /// Required fraction of the FP32 quality (0.99, or 0.98 for the
    /// quantization-sensitive MobileNet classifier).
    pub quality_window: f64,
    /// Human-readable quality target, as printed in Table I.
    pub quality_desc: &'static str,
    /// Table III multistream arrival interval.
    pub multistream_interval: Nanos,
    /// Table III server QoS constraint.
    pub server_latency_bound: Nanos,
    /// Vision (p99) or translation (p97) QoS class.
    pub qos: QosClass,
}

/// The five Table I workloads.
static REGISTRY: [ReferenceModel; 5] = [
    ReferenceModel {
        task: TaskId::ImageClassificationHeavy,
        area: "Vision",
        task_name: "Image classification (heavy)",
        model_name: "ResNet-50 v1.5",
        params_millions: 25.6,
        gops_per_input: 8.2,
        dataset: "ImageNet (224x224)",
        fp32_quality: 76.456,
        quality_window: 0.99,
        quality_desc: "99% of FP32 (76.456%) Top-1 accuracy",
        multistream_interval: Nanos::from_millis(50),
        server_latency_bound: Nanos::from_millis(15),
        qos: QosClass::Vision,
    },
    ReferenceModel {
        task: TaskId::ImageClassificationLight,
        area: "Vision",
        task_name: "Image classification (light)",
        model_name: "MobileNet-v1 224",
        params_millions: 4.2,
        gops_per_input: 1.138,
        dataset: "ImageNet (224x224)",
        fp32_quality: 71.676,
        quality_window: 0.98,
        quality_desc: "98% of FP32 (71.676%) Top-1 accuracy",
        multistream_interval: Nanos::from_millis(50),
        server_latency_bound: Nanos::from_millis(10),
        qos: QosClass::Vision,
    },
    ReferenceModel {
        task: TaskId::ObjectDetectionHeavy,
        area: "Vision",
        task_name: "Object detection (heavy)",
        model_name: "SSD-ResNet-34",
        params_millions: 36.3,
        gops_per_input: 433.0,
        dataset: "COCO (1,200x1,200)",
        fp32_quality: 0.20,
        quality_window: 0.99,
        quality_desc: "99% of FP32 (0.20 mAP)",
        multistream_interval: Nanos::from_millis(66),
        server_latency_bound: Nanos::from_millis(100),
        qos: QosClass::Vision,
    },
    ReferenceModel {
        task: TaskId::ObjectDetectionLight,
        area: "Vision",
        task_name: "Object detection (light)",
        model_name: "SSD-MobileNet-v1",
        params_millions: 6.91,
        gops_per_input: 2.47,
        dataset: "COCO (300x300)",
        fp32_quality: 0.22,
        quality_window: 0.99,
        quality_desc: "99% of FP32 (0.22 mAP)",
        multistream_interval: Nanos::from_millis(50),
        server_latency_bound: Nanos::from_millis(10),
        qos: QosClass::Vision,
    },
    ReferenceModel {
        task: TaskId::MachineTranslation,
        area: "Language",
        task_name: "Machine translation",
        model_name: "GNMT",
        params_millions: 210.0,
        // Nominal: ~0.6 GOPS/token at a ~21-token mean sentence.
        gops_per_input: 12.6,
        dataset: "WMT16 EN-DE",
        fp32_quality: 23.9,
        quality_window: 0.99,
        quality_desc: "99% of FP32 (23.9 SacreBLEU)",
        multistream_interval: Nanos::from_millis(100),
        server_latency_bound: Nanos::from_millis(250),
        qos: QosClass::Translation,
    },
];

/// The full Table I registry, in order.
pub fn registry() -> &'static [ReferenceModel; 5] {
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let resnet = TaskId::ImageClassificationHeavy.spec();
        assert_eq!(resnet.model_name, "ResNet-50 v1.5");
        assert_eq!(resnet.params_millions, 25.6);
        assert_eq!(resnet.gops_per_input, 8.2);
        assert_eq!(resnet.fp32_quality, 76.456);

        let mobilenet = TaskId::ImageClassificationLight.spec();
        assert_eq!(mobilenet.params_millions, 4.2);
        assert_eq!(mobilenet.gops_per_input, 1.138);
        assert_eq!(mobilenet.quality_window, 0.98);

        let ssd_large = TaskId::ObjectDetectionHeavy.spec();
        assert_eq!(ssd_large.gops_per_input, 433.0);
        assert_eq!(ssd_large.params_millions, 36.3);

        let ssd_small = TaskId::ObjectDetectionLight.spec();
        assert_eq!(ssd_small.params_millions, 6.91);
        assert_eq!(ssd_small.gops_per_input, 2.47);
        assert_eq!(ssd_small.fp32_quality, 0.22);

        let gnmt = TaskId::MachineTranslation.spec();
        assert_eq!(gnmt.params_millions, 210.0);
        assert_eq!(gnmt.fp32_quality, 23.9);
    }

    #[test]
    fn table_iii_latency_constraints() {
        use TaskId::*;
        let ms_ms = |t: TaskId| t.spec().multistream_interval.as_millis_f64() as u64;
        let sv_ms = |t: TaskId| t.spec().server_latency_bound.as_millis_f64() as u64;
        assert_eq!(ms_ms(ImageClassificationHeavy), 50);
        assert_eq!(sv_ms(ImageClassificationHeavy), 15);
        assert_eq!(ms_ms(ImageClassificationLight), 50);
        assert_eq!(sv_ms(ImageClassificationLight), 10);
        assert_eq!(ms_ms(ObjectDetectionHeavy), 66);
        assert_eq!(sv_ms(ObjectDetectionHeavy), 100);
        assert_eq!(ms_ms(ObjectDetectionLight), 50);
        assert_eq!(sv_ms(ObjectDetectionLight), 10);
        assert_eq!(ms_ms(MachineTranslation), 100);
        assert_eq!(sv_ms(MachineTranslation), 250);
    }

    #[test]
    fn param_and_op_ratios_from_the_paper() {
        // "MobileNet reduces the parameters by 6.1x and the operations by
        // 6.8x compared with ResNet-50 v1.5" (Section III-A).
        let r = TaskId::ImageClassificationHeavy.spec();
        let m = TaskId::ImageClassificationLight.spec();
        assert!((r.params_millions / m.params_millions - 6.1).abs() < 0.05);
        assert!((r.gops_per_input / m.gops_per_input - 6.8).abs() < 0.45);
        // "SSD-ResNet-34 requires 175x more operations per image" than
        // SSD-MobileNet (Section VII-D).
        let dh = TaskId::ObjectDetectionHeavy.spec();
        let dl = TaskId::ObjectDetectionLight.spec();
        assert!((dh.gops_per_input / dl.gops_per_input - 175.0).abs() < 1.0);
    }

    #[test]
    fn qos_classes() {
        use mlperf_loadgen::requirements::QosClass;
        for t in TaskId::ALL {
            let expected = if t == TaskId::MachineTranslation {
                QosClass::Translation
            } else {
                QosClass::Vision
            };
            assert_eq!(t.spec().qos, expected);
        }
    }

    #[test]
    fn display_and_order() {
        assert_eq!(TaskId::MachineTranslation.to_string(), "GNMT");
        let names: Vec<&str> = registry().iter().map(|m| m.model_name).collect();
        assert_eq!(names.len(), 5);
        for (i, t) in TaskId::ALL.iter().enumerate() {
            assert_eq!(registry()[i].task, *t);
        }
    }
}

//! Image-classification proxy (MiniResNet / MiniMobileNet).

use super::Precision;
use crate::registry::TaskId;
use mlperf_datasets::SyntheticImages;
use mlperf_metrics::top1_accuracy;
use mlperf_nn::layer::Activation;
use mlperf_nn::network::NetworkBuilder;
use mlperf_nn::{Network, QNetwork};
use mlperf_stats::Rng64;
use mlperf_tensor::{Shape, Tensor};

/// Number of synthetic classes.
const NUM_CLASSES: usize = 16;
/// Calibration-set size (the paper provides a small fixed calibration set).
const CALIBRATION_SAMPLES: usize = 16;

/// A runnable classification proxy for the two ImageNet tasks.
///
/// # Examples
///
/// ```
/// use mlperf_models::proxy::{ClassifierProxy, Precision};
/// use mlperf_models::TaskId;
///
/// let proxy = ClassifierProxy::new(TaskId::ImageClassificationLight, 64, 7);
/// let acc = proxy.accuracy(Precision::Fp32);
/// assert!(acc > 0.5, "teacher should mostly agree with its own labels");
/// ```
#[derive(Debug)]
pub struct ClassifierProxy {
    task: TaskId,
    dataset: SyntheticImages,
    teacher: Network,
    quantized: QNetwork,
    labels: Vec<usize>,
}

impl ClassifierProxy {
    /// Builds the proxy for a classification task with `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not one of the two image-classification tasks or
    /// `len` is zero.
    pub fn new(task: TaskId, len: usize, seed: u64) -> Self {
        let heavy = match task {
            TaskId::ImageClassificationHeavy => true,
            TaskId::ImageClassificationLight => false,
            other => panic!("{other:?} is not a classification task"),
        };
        let shape = Shape::d3(2, 12, 12);
        let dataset = SyntheticImages::new(shape.clone(), len, seed ^ 0x1357_9bdf);
        let mut wrng = Rng64::new(seed);
        let teacher = if heavy {
            // MiniResNet: stem conv + two residual blocks.
            NetworkBuilder::new(shape)
                .conv2d(8, 3, 1, 1, Activation::Relu, &mut wrng)
                .expect("static architecture")
                .residual_block(Activation::Relu, &mut wrng)
                .expect("static architecture")
                .residual_block(Activation::Relu, &mut wrng)
                .expect("static architecture")
                .global_avgpool()
                .expect("static architecture")
                .dense(NUM_CLASSES, Activation::None, &mut wrng)
                .expect("static architecture")
                .build()
        } else {
            // MiniMobileNet: stem + depthwise-separable blocks, ReLU6.
            NetworkBuilder::new(shape)
                .conv2d(8, 3, 2, 1, Activation::Relu6, &mut wrng)
                .expect("static architecture")
                .depthwise_conv2d(3, 1, 1, Activation::Relu6, &mut wrng)
                .expect("static architecture")
                .conv2d(16, 1, 1, 0, Activation::Relu6, &mut wrng)
                .expect("static architecture")
                .global_avgpool()
                .expect("static architecture")
                .dense(NUM_CLASSES, Activation::None, &mut wrng)
                .expect("static architecture")
                .build()
        };
        // Calibrate INT8 on the fixed prefix subset.
        let calibration: Vec<Tensor> = dataset
            .calibration_indices(CALIBRATION_SAMPLES.min(len))
            .into_iter()
            .map(|i| dataset.input(i).expect("calibration index in range"))
            .collect();
        let quantized = QNetwork::quantize(&teacher, &calibration).expect("calibration non-empty");
        // Ground truth: teacher labels with noise setting the FP32 quality.
        let noise = 1.0 - task.spec().fp32_quality / 100.0;
        let mut label_rng = Rng64::new(seed ^ 0x6c61_6265_6c73);
        let labels = (0..len)
            .map(|i| {
                let input = dataset.input(i).expect("index in range");
                let teacher_label = teacher.forward(&input).expect("shape fixed").argmax();
                if label_rng.next_bool(noise) {
                    // A different class, uniformly.
                    let offset = 1 + label_rng.next_index(NUM_CLASSES - 1);
                    (teacher_label + offset) % NUM_CLASSES
                } else {
                    teacher_label
                }
            })
            .collect();
        Self {
            task,
            dataset,
            teacher,
            quantized,
            labels,
        }
    }

    /// The task this proxy stands in for.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Ground-truth label of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn label(&self, index: usize) -> usize {
        self.labels[index]
    }

    /// The FP32 teacher network (for ablations and inspection).
    pub fn teacher(&self) -> &Network {
        &self.teacher
    }

    /// Materializes the input tensor for a sample.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn input(&self, index: usize) -> Tensor {
        self.dataset.input(index).expect("index in range")
    }

    /// Runs one inference and returns the predicted class.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn predict(&self, precision: Precision, index: usize) -> usize {
        let input = self.dataset.input(index).expect("index in range");
        match precision {
            Precision::Fp32 => self.teacher.forward(&input).expect("shape fixed").argmax(),
            Precision::Quantized => self
                .quantized
                .forward(&input)
                .expect("shape fixed")
                .argmax(),
        }
    }

    /// Top-1 accuracy over the whole dataset at a precision.
    pub fn accuracy(&self, precision: Precision) -> f64 {
        let predictions: Vec<usize> = (0..self.len())
            .map(|i| self.predict(precision, i))
            .collect();
        top1_accuracy(&predictions, &self.labels)
    }

    /// Scores an externally produced prediction list (the accuracy-script
    /// path: LoadGen log in, accuracy out).
    ///
    /// # Panics
    ///
    /// Panics if `predictions` is not parallel to the dataset.
    pub fn score(&self, predictions: &[usize]) -> f64 {
        top1_accuracy(predictions, &self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_accuracy_tracks_label_noise() {
        let proxy = ClassifierProxy::new(TaskId::ImageClassificationHeavy, 400, 1);
        let acc = proxy.accuracy(Precision::Fp32);
        // Expected ~0.7646 with binomial noise; allow a wide band.
        assert!((0.68..0.85).contains(&acc), "acc={acc}");
    }

    #[test]
    fn int8_close_to_fp32_and_not_identical_everywhere() {
        let proxy = ClassifierProxy::new(TaskId::ImageClassificationLight, 300, 2);
        let fp32 = proxy.accuracy(Precision::Fp32);
        let int8 = proxy.accuracy(Precision::Quantized);
        assert!(
            (fp32 - int8).abs() < 0.08,
            "fp32={fp32} int8={int8}: quantization gap too large"
        );
    }

    #[test]
    fn deterministic() {
        let a = ClassifierProxy::new(TaskId::ImageClassificationHeavy, 50, 3);
        let b = ClassifierProxy::new(TaskId::ImageClassificationHeavy, 50, 3);
        for i in 0..50 {
            assert_eq!(a.label(i), b.label(i));
            assert_eq!(a.predict(Precision::Fp32, i), b.predict(Precision::Fp32, i));
        }
    }

    #[test]
    fn seed_changes_everything() {
        let a = ClassifierProxy::new(TaskId::ImageClassificationHeavy, 80, 4);
        let b = ClassifierProxy::new(TaskId::ImageClassificationHeavy, 80, 5);
        let same = (0..80).filter(|i| a.label(*i) == b.label(*i)).count();
        assert!(same < 60, "labels should differ across seeds, same={same}");
    }

    #[test]
    fn score_matches_accuracy() {
        let proxy = ClassifierProxy::new(TaskId::ImageClassificationLight, 60, 6);
        let preds: Vec<usize> = (0..60).map(|i| proxy.predict(Precision::Fp32, i)).collect();
        assert_eq!(proxy.score(&preds), proxy.accuracy(Precision::Fp32));
    }

    #[test]
    #[should_panic(expected = "not a classification task")]
    fn wrong_task_panics() {
        ClassifierProxy::new(TaskId::MachineTranslation, 10, 1);
    }
}

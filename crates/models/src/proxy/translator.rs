//! Machine-translation proxy (MiniGNMT).
//!
//! A GRU encoder–decoder with an embedding table and an output projection:
//! enough real recurrence to be order-sensitive, length-variable, and
//! quantization-sensitive. References are the teacher's own greedy decodes
//! with token-replacement noise, which sets the measured FP32 BLEU below
//! 100 the way WMT difficulty does for real GNMT.

use super::Precision;
use crate::registry::TaskId;
use mlperf_datasets::SyntheticSentences;
use mlperf_metrics::corpus_bleu;
use mlperf_nn::gru::GruCell;
use mlperf_stats::Rng64;
use mlperf_tensor::ops::dense;
use mlperf_tensor::quant::per_channel_i16_roundtrip;
use mlperf_tensor::{Shape, Tensor};

/// Vocabulary size (ids 0 and 1 reserved for BOS/EOS).
const VOCAB: u32 = 48;
/// Token-embedding dimensionality.
const EMBED_DIM: usize = 12;
/// GRU hidden dimensionality.
const HIDDEN_DIM: usize = 20;
/// Decode length cap.
const MAX_DECODE: usize = 16;
/// Minimum decode length before EOS is honored.
const MIN_DECODE: usize = 4;
/// Beginning-of-sequence token.
const BOS: u32 = 0;
/// End-of-sequence token.
const EOS: u32 = 1;

/// One precision variant of the seq2seq stack.
#[derive(Debug, Clone)]
struct Seq2Seq {
    embed: Tensor,
    encoder: GruCell,
    decoder: GruCell,
    proj_w: Tensor,
    proj_b: Tensor,
}

impl Seq2Seq {
    fn embed_token(&self, token: u32) -> Tensor {
        let row = token as usize % VOCAB as usize;
        let data = self.embed.data()[row * EMBED_DIM..(row + 1) * EMBED_DIM].to_vec();
        Tensor::from_vec(Shape::d1(EMBED_DIM), data).expect("row length fixed")
    }

    fn decode(&self, source: &[u32]) -> Vec<u32> {
        let inputs: Vec<Tensor> = source.iter().map(|t| self.embed_token(*t)).collect();
        let mut state = self.encoder.run(&inputs).expect("dims fixed");
        let mut output = Vec::new();
        let mut prev = BOS;
        for step in 0..MAX_DECODE {
            state = self
                .decoder
                .step(&self.embed_token(prev), &state)
                .expect("dims fixed");
            let logits = dense(&state, &self.proj_w, &self.proj_b).expect("dims fixed");
            let token = logits.argmax() as u32;
            if token == EOS && step >= MIN_DECODE {
                break;
            }
            // Reserved tokens never appear in the output stream.
            let emitted = if token <= EOS { token + 2 } else { token };
            output.push(emitted);
            prev = emitted;
        }
        output
    }

    /// Weight-quantized (roundtripped) copy: the recurrent cells carry
    /// per-row INT16 weights — INT16 is on the paper's approved-numerics
    /// list and is what v0.5-era recurrent deployments used (INT8 GNMT
    /// needs retraining, which the rules prohibit) — while the embedding
    /// table and the output projection (the "LM head") stay FP32, the
    /// precision-sensitive pieces of greedy decoding.
    fn quantized(&self) -> Self {
        let roundtrip = |t: &Tensor| per_channel_i16_roundtrip(t);
        Self {
            embed: self.embed.clone(),
            encoder: self.encoder.map_weights(roundtrip),
            decoder: self.decoder.map_weights(roundtrip),
            proj_w: self.proj_w.clone(),
            proj_b: self.proj_b.clone(),
        }
    }
}

/// A runnable translation proxy for the GNMT task.
#[derive(Debug)]
pub struct TranslatorProxy {
    corpus: SyntheticSentences,
    fp32: Seq2Seq,
    int8: Seq2Seq,
    references: Vec<Vec<u32>>,
}

impl TranslatorProxy {
    /// Builds the proxy with `len` sentences.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize, seed: u64) -> Self {
        let corpus = SyntheticSentences::new(VOCAB, len, seed ^ 0x776d_7431, 3, 12);
        let mut wrng = Rng64::new(seed ^ 0x676e_6d74);
        let embed = Tensor::fill_with(Shape::d2(VOCAB as usize, EMBED_DIM), |_| {
            (wrng.next_f64() as f32 * 2.0 - 1.0) * 0.7
        });
        let encoder = GruCell::new(EMBED_DIM, HIDDEN_DIM, &mut wrng);
        let decoder = GruCell::new(EMBED_DIM, HIDDEN_DIM, &mut wrng);
        let proj_w = Tensor::fill_with(Shape::d2(VOCAB as usize, HIDDEN_DIM), |_| {
            (wrng.next_f64() as f32 * 2.0 - 1.0) * 0.9
        });
        let proj_b = Tensor::zeros(Shape::d1(VOCAB as usize));
        let fp32 = Seq2Seq {
            embed,
            encoder,
            decoder,
            proj_w,
            proj_b,
        };
        let int8 = fp32.quantized();
        // References: teacher decodes with token-replacement noise.
        let mut ref_rng = Rng64::new(seed ^ 0x7265_6673);
        let references = (0..len)
            .map(|i| {
                let src = corpus.sentence(i).expect("index in range");
                let mut decoded = fp32.decode(&src);
                for tok in decoded.iter_mut() {
                    // ~7% of reference tokens differ from the teacher decode.
                    if ref_rng.next_bool(0.07) {
                        *tok = 2 + ref_rng.next_below(u64::from(VOCAB - 2)) as u32;
                    }
                }
                decoded
            })
            .collect();
        Self {
            corpus,
            fp32,
            int8,
            references,
        }
    }

    /// The task this proxy stands in for.
    pub fn task(&self) -> TaskId {
        TaskId::MachineTranslation
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.references.len()
    }

    /// Whether the corpus is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.references.is_empty()
    }

    /// The source sentence at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn source(&self, index: usize) -> Vec<u32> {
        self.corpus.sentence(index).expect("index in range")
    }

    /// The reference translation at `index`.
    pub fn reference(&self, index: usize) -> &[u32] {
        &self.references[index]
    }

    /// Translates one sentence.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn translate(&self, precision: Precision, index: usize) -> Vec<u32> {
        let src = self.source(index);
        match precision {
            Precision::Fp32 => self.fp32.decode(&src),
            Precision::Quantized => self.int8.decode(&src),
        }
    }

    /// Corpus BLEU over the whole dataset at a precision.
    pub fn bleu(&self, precision: Precision) -> f64 {
        let candidates: Vec<Vec<u32>> = (0..self.len())
            .map(|i| self.translate(precision, i))
            .collect();
        corpus_bleu(&candidates, &self.references)
    }

    /// Scores externally produced translations.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is not parallel to the corpus.
    pub fn score(&self, candidates: &[Vec<u32>]) -> f64 {
        corpus_bleu(candidates, &self.references)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_bleu_high_but_imperfect() {
        let proxy = TranslatorProxy::new(120, 1);
        let bleu = proxy.bleu(Precision::Fp32);
        assert!(bleu > 40.0, "teacher vs its own noisy refs: {bleu}");
        assert!(bleu < 99.9, "noise should keep BLEU below 100: {bleu}");
    }

    #[test]
    fn int8_close_to_fp32() {
        let proxy = TranslatorProxy::new(120, 2);
        let fp32 = proxy.bleu(Precision::Fp32);
        let int8 = proxy.bleu(Precision::Quantized);
        assert!(int8 > 0.3 * fp32, "int8 collapsed: fp32={fp32} int8={int8}");
    }

    #[test]
    fn outputs_vary_across_sentences() {
        let proxy = TranslatorProxy::new(40, 3);
        let outputs: std::collections::HashSet<Vec<u32>> = (0..40)
            .map(|i| proxy.translate(Precision::Fp32, i))
            .collect();
        assert!(
            outputs.len() > 5,
            "decoder collapsed to {} outputs",
            outputs.len()
        );
    }

    #[test]
    fn reserved_tokens_never_emitted() {
        let proxy = TranslatorProxy::new(40, 4);
        for i in 0..40 {
            let out = proxy.translate(Precision::Fp32, i);
            assert!(out.iter().all(|t| *t >= 2 && *t < VOCAB));
            assert!(out.len() <= MAX_DECODE);
        }
    }

    #[test]
    fn deterministic() {
        let a = TranslatorProxy::new(30, 5);
        let b = TranslatorProxy::new(30, 5);
        for i in 0..30 {
            assert_eq!(a.reference(i), b.reference(i));
            assert_eq!(
                a.translate(Precision::Quantized, i),
                b.translate(Precision::Quantized, i)
            );
        }
    }

    #[test]
    fn score_matches_bleu() {
        let proxy = TranslatorProxy::new(30, 6);
        let cands: Vec<Vec<u32>> = (0..30)
            .map(|i| proxy.translate(Precision::Fp32, i))
            .collect();
        assert_eq!(proxy.score(&cands), proxy.bleu(Precision::Fp32));
    }
}

//! Runnable proxy models.
//!
//! Each proxy pairs a deterministic **teacher** network with a synthetic
//! dataset whose ground truth is *derived from the teacher plus noise*:
//!
//! * the FP32 proxy — the teacher itself — scores high but not perfect
//!   (the injected label/box/token noise sets the measured FP32 reference
//!   quality, playing the role of ImageNet/COCO/WMT difficulty);
//! * the INT8 proxy — a post-training-quantized copy — scores slightly
//!   lower, because quantization genuinely perturbs the arithmetic.
//!
//! That reproduces the structure the paper's quality rules operate on: a
//! per-task FP32 reference quality and submissions that must stay within
//! the Table I window of it without retraining.

mod classifier;
mod detector;
mod translator;

pub use classifier::ClassifierProxy;
pub use detector::DetectorProxy;
pub use translator::TranslatorProxy;

/// Numeric format of a proxy evaluation (the registered-numerics idea of
/// Section IV-A, reduced to two deployment paths per task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit floating point (the reference).
    Fp32,
    /// The task's deployment-realistic post-training quantization, from
    /// the paper's approved numerics list: per-channel INT8 with
    /// calibration for the CNN tasks (FP32 detection head, as in
    /// production SSD deployments), and per-row INT16 recurrent weights
    /// with an FP32 LM head for GNMT (v0.5 translation submissions did
    /// not use INT8).
    Quantized,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Fp32 => f.write_str("fp32"),
            Precision::Quantized => f.write_str("quantized"),
        }
    }
}

//! Object-detection proxy (MiniSSD).
//!
//! A small convolutional backbone produces a `[5 + C, G, G]` grid head:
//! channel 0 is objectness, channels 1–4 are box offsets within the cell,
//! and the rest are class logits — a single-shot-detector head in
//! miniature. The teacher's own decoded detections (plus jitter/drop noise)
//! define the ground truth.

use super::Precision;
use crate::registry::TaskId;
use mlperf_datasets::SyntheticImages;
use mlperf_metrics::{mean_average_precision, BoundingBox, Detection, GroundTruth};
use mlperf_nn::layer::Activation;
use mlperf_nn::network::NetworkBuilder;
use mlperf_nn::Network;
use mlperf_stats::Rng64;
use mlperf_tensor::quant::per_channel_i16_roundtrip;
use mlperf_tensor::{Shape, Tensor};

/// Detection classes.
const NUM_CLASSES: usize = 8;
/// Grid cells per axis.
const GRID: usize = 4;
/// Image extent in pixels (box coordinates live in this space).
const EXTENT: f32 = 64.0;
/// Fraction of grid cells that fire, on average (sets the adaptive
/// objectness threshold: ~1.6 detections per 16-cell image).
const DETECTION_DENSITY: f64 = 0.10;
/// IoU threshold used for scoring.
const IOU_THRESHOLD: f32 = 0.5;

/// A runnable detection proxy for the two COCO tasks.
#[derive(Debug)]
pub struct DetectorProxy {
    task: TaskId,
    dataset: SyntheticImages,
    teacher: Network,
    quantized: Network,
    ground_truth: Vec<GroundTruth>,
    objectness_threshold: f32,
}

impl DetectorProxy {
    /// Builds the proxy for a detection task with `len` images.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not one of the two object-detection tasks or
    /// `len` is zero.
    pub fn new(task: TaskId, len: usize, seed: u64) -> Self {
        let heavy = match task {
            TaskId::ObjectDetectionHeavy => true,
            TaskId::ObjectDetectionLight => false,
            other => panic!("{other:?} is not a detection task"),
        };
        let shape = Shape::d3(2, 16, 16);
        let dataset = SyntheticImages::new(shape.clone(), len, seed ^ 0x2468_ace0);
        let mut wrng = Rng64::new(seed ^ 0x5544_3322);
        let head_channels = 5 + NUM_CLASSES;
        let teacher = if heavy {
            NetworkBuilder::new(shape)
                .conv2d(8, 3, 1, 1, Activation::Relu, &mut wrng)
                .expect("static architecture")
                .residual_block(Activation::Relu, &mut wrng)
                .expect("static architecture")
                .maxpool(2)
                .expect("static architecture")
                .conv2d(12, 3, 2, 1, Activation::Relu, &mut wrng)
                .expect("static architecture")
                .conv2d(head_channels, 1, 1, 0, Activation::None, &mut wrng)
                .expect("static architecture")
                .build()
        } else {
            NetworkBuilder::new(shape)
                .conv2d(8, 3, 2, 1, Activation::Relu6, &mut wrng)
                .expect("static architecture")
                .depthwise_conv2d(3, 2, 1, Activation::Relu6, &mut wrng)
                .expect("static architecture")
                .conv2d(head_channels, 1, 1, 0, Activation::None, &mut wrng)
                .expect("static architecture")
                .build()
        };
        debug_assert_eq!(teacher.output_shape().dims(), &[head_channels, GRID, GRID]);
        // Adaptive objectness threshold: the p90 of the teacher's own
        // objectness scores, so every random teacher emits a usable
        // detection density regardless of where its logits happen to sit.
        let mut scores: Vec<f32> = Vec::new();
        for image_id in 0..len.min(64) {
            let input = dataset.input(image_id).expect("index in range");
            let out = teacher.forward(&input).expect("shape fixed");
            for gy in 0..GRID {
                for gx in 0..GRID {
                    scores.push(sigmoid(out.at(&[0, gy, gx])));
                }
            }
        }
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let rank = ((1.0 - DETECTION_DENSITY) * scores.len() as f64) as usize;
        // Put the threshold in the *widest gap* between consecutive scores
        // near the density rank: quantization noise then cannot flip the
        // boundary cell back and forth.
        let lo = rank.saturating_sub(8);
        let hi = (rank + 8).min(scores.len() - 1);
        let mut best = (0.0f32, scores[rank.min(scores.len() - 1)]);
        for i in lo..hi {
            let gap = scores[i + 1] - scores[i];
            if gap > best.0 {
                best = (gap, (scores[i] + scores[i + 1]) / 2.0);
            }
        }
        let objectness_threshold = best.1.clamp(0.2, 0.95);
        // 16-bit per-channel weights with full-precision accumulation:
        // the INT16/FP16-class deployment numerics real v0.5 detection
        // submissions used (full INT8 detection without retraining was
        // exactly the failure mode that made the paper reduce
        // SSD-MobileNet's absolute target).
        let quantized = teacher.map_parameters(per_channel_i16_roundtrip);
        // Ground truth: the teacher's detections, jittered and thinned.
        let mut gt_rng = Rng64::new(seed ^ 0x6274_7275_7468);
        let mut ground_truth = Vec::new();
        for image_id in 0..len {
            let input = dataset.input(image_id).expect("index in range");
            let out = teacher.forward(&input).expect("shape fixed");
            for det in decode(&out, image_id, objectness_threshold) {
                // Drop ~12% of boxes so the model has unmatched detections
                // (this, not box jitter, sets the FP32 reference mAP).
                if gt_rng.next_bool(0.12) {
                    continue;
                }
                // Mild jitter: matches stay comfortably above the IoU
                // threshold so quantization noise does not flip them.
                let jitter = |rng: &mut Rng64| (rng.next_f64() as f32 * 2.0 - 1.0) * EXTENT * 0.012;
                let dx = jitter(&mut gt_rng);
                let dy = jitter(&mut gt_rng);
                let b = det.bbox;
                let bbox = BoundingBox::new(
                    (b.x1 + dx).clamp(0.0, EXTENT - 2.0),
                    (b.y1 + dy).clamp(0.0, EXTENT - 2.0),
                    (b.x2 + dx).clamp(2.0, EXTENT),
                    (b.y2 + dy).clamp(2.0, EXTENT),
                );
                ground_truth.push(GroundTruth {
                    image_id,
                    class: det.class,
                    bbox,
                });
            }
        }
        Self {
            task,
            dataset,
            teacher,
            quantized,
            ground_truth,
            objectness_threshold,
        }
    }

    /// The task this proxy stands in for.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// The ground-truth annotations.
    pub fn ground_truth(&self) -> &[GroundTruth] {
        &self.ground_truth
    }

    /// Runs one inference and returns decoded detections.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn detect(&self, precision: Precision, index: usize) -> Vec<Detection> {
        let input = self.dataset.input(index).expect("index in range");
        let out = match precision {
            Precision::Fp32 => self.teacher.forward(&input).expect("shape fixed"),
            Precision::Quantized => self.quantized.forward(&input).expect("shape fixed"),
        };
        decode(&out, index, self.objectness_threshold)
    }

    /// mAP@0.5 over the whole dataset at a precision.
    pub fn map(&self, precision: Precision) -> f64 {
        let detections: Vec<Detection> = (0..self.len())
            .flat_map(|i| self.detect(precision, i))
            .collect();
        mean_average_precision(&detections, &self.ground_truth, IOU_THRESHOLD)
    }

    /// Scores externally produced detections against the ground truth.
    pub fn score(&self, detections: &[Detection]) -> f64 {
        mean_average_precision(detections, &self.ground_truth, IOU_THRESHOLD)
    }
}

/// Decodes a `[5 + C, G, G]` head tensor into detections.
fn decode(output: &Tensor, image_id: usize, threshold: f32) -> Vec<Detection> {
    let cell = EXTENT / GRID as f32;
    let mut detections = Vec::new();
    for gy in 0..GRID {
        for gx in 0..GRID {
            let objectness = sigmoid(output.at(&[0, gy, gx]));
            if objectness < threshold {
                continue;
            }
            // Box: cell anchor modulated by sigmoid offsets.
            let ox = sigmoid(output.at(&[1, gy, gx]));
            let oy = sigmoid(output.at(&[2, gy, gx]));
            let ow = 0.5 + sigmoid(output.at(&[3, gy, gx]));
            let oh = 0.5 + sigmoid(output.at(&[4, gy, gx]));
            let cx = (gx as f32 + ox) * cell;
            let cy = (gy as f32 + oy) * cell;
            let (w, h) = (cell * ow, cell * oh);
            let x1 = (cx - w / 2.0).clamp(0.0, EXTENT - 2.0);
            let y1 = (cy - h / 2.0).clamp(0.0, EXTENT - 2.0);
            let x2 = (cx + w / 2.0).clamp(x1 + 1.0, EXTENT);
            let y2 = (cy + h / 2.0).clamp(y1 + 1.0, EXTENT);
            // Class: argmax over class channels.
            let mut best = (0usize, f32::NEG_INFINITY);
            for c in 0..NUM_CLASSES {
                let v = output.at(&[5 + c, gy, gx]);
                if v > best.1 {
                    best = (c, v);
                }
            }
            detections.push(Detection {
                image_id,
                class: best.0,
                score: objectness,
                bbox: BoundingBox::new(x1, y1, x2, y2),
            });
        }
    }
    detections
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_nonempty_and_bounded() {
        let proxy = DetectorProxy::new(TaskId::ObjectDetectionLight, 60, 1);
        assert!(
            !proxy.ground_truth().is_empty(),
            "no ground truth generated"
        );
        for gt in proxy.ground_truth() {
            assert!(gt.bbox.x1 >= 0.0 && gt.bbox.x2 <= EXTENT);
            assert!(gt.class < NUM_CLASSES);
            assert!(gt.image_id < 60);
        }
    }

    #[test]
    fn fp32_map_is_high_but_imperfect() {
        let proxy = DetectorProxy::new(TaskId::ObjectDetectionHeavy, 80, 2);
        let map = proxy.map(Precision::Fp32);
        assert!(
            map > 0.5,
            "teacher should mostly match its own noisy gt: {map}"
        );
        assert!(map < 0.999, "noise should keep mAP below perfect: {map}");
    }

    #[test]
    fn int8_close_to_fp32() {
        let proxy = DetectorProxy::new(TaskId::ObjectDetectionLight, 60, 3);
        let fp32 = proxy.map(Precision::Fp32);
        let int8 = proxy.map(Precision::Quantized);
        assert!(
            (fp32 - int8).abs() < 0.12,
            "quantization gap too large: fp32={fp32} int8={int8}"
        );
    }

    #[test]
    fn deterministic() {
        let a = DetectorProxy::new(TaskId::ObjectDetectionLight, 20, 4);
        let b = DetectorProxy::new(TaskId::ObjectDetectionLight, 20, 4);
        assert_eq!(a.ground_truth(), b.ground_truth());
        assert_eq!(a.detect(Precision::Fp32, 5), b.detect(Precision::Fp32, 5));
    }

    #[test]
    fn score_matches_map() {
        let proxy = DetectorProxy::new(TaskId::ObjectDetectionHeavy, 30, 5);
        let dets: Vec<Detection> = (0..30)
            .flat_map(|i| proxy.detect(Precision::Fp32, i))
            .collect();
        assert_eq!(proxy.score(&dets), proxy.map(Precision::Fp32));
    }

    #[test]
    #[should_panic(expected = "not a detection task")]
    fn wrong_task_panics() {
        DetectorProxy::new(TaskId::ImageClassificationHeavy, 10, 1);
    }
}

//! A Figure 1-style catalog of image-classifier design points.
//!
//! The paper's Figure 1 (after Bianco et al., reference 9) motivates the benchmark:
//! no single model is optimal — accuracy, operations, and parameters trade
//! off along a Pareto frontier, with Top-1 spanning roughly 55–83% and a
//! ~50× spread in GOPS. This module carries a representative set of public
//! design points so the `fig1` harness can regenerate that scatter and so
//! tests can check the frontier properties the paper cites.

/// One classifier design point (publicly reported numbers, approximate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZooEntry {
    /// Model family and variant.
    pub name: &'static str,
    /// ImageNet Top-1 accuracy, percent.
    pub top1: f64,
    /// Operations per inference, GOPS.
    pub gops: f64,
    /// Parameters, millions.
    pub params_millions: f64,
}

/// Representative design points spanning the Figure 1 ranges.
pub static ZOO: [ZooEntry; 16] = [
    ZooEntry {
        name: "AlexNet",
        top1: 56.6,
        gops: 1.4,
        params_millions: 61.0,
    },
    ZooEntry {
        name: "SqueezeNet-v1.1",
        top1: 58.2,
        gops: 0.7,
        params_millions: 1.2,
    },
    ZooEntry {
        name: "GoogLeNet",
        top1: 68.1,
        gops: 3.0,
        params_millions: 7.0,
    },
    ZooEntry {
        name: "MobileNet-v1",
        top1: 71.7,
        gops: 1.1,
        params_millions: 4.2,
    },
    ZooEntry {
        name: "MobileNet-v2",
        top1: 72.0,
        gops: 0.9,
        params_millions: 3.5,
    },
    ZooEntry {
        name: "VGG-16",
        top1: 71.6,
        gops: 31.0,
        params_millions: 138.0,
    },
    ZooEntry {
        name: "VGG-19",
        top1: 72.4,
        gops: 39.0,
        params_millions: 144.0,
    },
    ZooEntry {
        name: "ResNet-18",
        top1: 69.8,
        gops: 3.6,
        params_millions: 11.7,
    },
    ZooEntry {
        name: "ResNet-50 v1.5",
        top1: 76.5,
        gops: 8.2,
        params_millions: 25.6,
    },
    ZooEntry {
        name: "ResNet-101",
        top1: 77.4,
        gops: 15.7,
        params_millions: 44.5,
    },
    ZooEntry {
        name: "DenseNet-121",
        top1: 74.5,
        gops: 5.7,
        params_millions: 8.0,
    },
    ZooEntry {
        name: "Inception-v3",
        top1: 77.5,
        gops: 11.5,
        params_millions: 23.8,
    },
    ZooEntry {
        name: "Xception",
        top1: 79.0,
        gops: 16.8,
        params_millions: 22.9,
    },
    ZooEntry {
        name: "SE-ResNeXt-50",
        top1: 79.0,
        gops: 8.5,
        params_millions: 27.6,
    },
    ZooEntry {
        name: "SENet-154",
        top1: 81.3,
        gops: 41.0,
        params_millions: 115.0,
    },
    ZooEntry {
        name: "NASNet-A-Large",
        top1: 82.5,
        gops: 47.8,
        params_millions: 88.9,
    },
];

/// Entries on the accuracy/operations Pareto frontier (no other entry is
/// both more accurate and cheaper).
pub fn pareto_frontier() -> Vec<&'static ZooEntry> {
    ZOO.iter()
        .filter(|e| !ZOO.iter().any(|o| o.top1 > e.top1 && o.gops < e.gops))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_ranges_hold() {
        let min_top1 = ZOO.iter().map(|e| e.top1).fold(f64::INFINITY, f64::min);
        let max_top1 = ZOO.iter().map(|e| e.top1).fold(0.0, f64::max);
        assert!((55.0..60.0).contains(&min_top1));
        assert!((80.0..84.0).contains(&max_top1));
        let min_gops = ZOO.iter().map(|e| e.gops).fold(f64::INFINITY, f64::min);
        let max_gops = ZOO.iter().map(|e| e.gops).fold(0.0, f64::max);
        // "a 50x difference in gigaflops" (Section II-A).
        assert!(max_gops / min_gops > 45.0, "spread {}", max_gops / min_gops);
    }

    #[test]
    fn se_resnext_vs_xception_anecdote() {
        // "SE-ResNeXt-50 and Xception achieve roughly the same accuracy
        // (~79%) but exhibit a 2x computational difference."
        let se = ZOO.iter().find(|e| e.name == "SE-ResNeXt-50").unwrap();
        let xc = ZOO.iter().find(|e| e.name == "Xception").unwrap();
        assert_eq!(se.top1, xc.top1);
        assert!((xc.gops / se.gops - 2.0).abs() < 0.1);
    }

    #[test]
    fn frontier_is_nonempty_and_sane() {
        let frontier = pareto_frontier();
        assert!(frontier.len() >= 4);
        // MobileNet-v2 and NASNet-A-Large should both be on the frontier.
        assert!(frontier.iter().any(|e| e.name == "MobileNet-v2"));
        assert!(frontier.iter().any(|e| e.name == "NASNet-A-Large"));
        // VGG-16 is strictly dominated.
        assert!(!frontier.iter().any(|e| e.name == "VGG-16"));
    }

    #[test]
    fn no_single_optimal_model() {
        // The cheapest model is not the most accurate: a real tradeoff.
        let cheapest = ZOO
            .iter()
            .min_by(|a, b| a.gops.partial_cmp(&b.gops).unwrap())
            .unwrap();
        let best = ZOO
            .iter()
            .max_by(|a, b| a.top1.partial_cmp(&b.top1).unwrap())
            .unwrap();
        assert_ne!(cheapest.name, best.name);
    }
}

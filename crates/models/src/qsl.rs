//! `QuerySampleLibrary` adapters for the reference tasks.

use crate::registry::TaskId;
use mlperf_datasets::SampleTracker;
use mlperf_loadgen::qsl::QuerySampleLibrary;
use mlperf_loadgen::query::SampleIndex;

/// Performance sample counts mirroring the official per-task settings
/// (how many samples are guaranteed to fit in memory during a
/// performance run).
fn default_performance_count(task: TaskId) -> usize {
    match task {
        TaskId::ImageClassificationHeavy | TaskId::ImageClassificationLight => 1_024,
        TaskId::ObjectDetectionHeavy => 64,
        TaskId::ObjectDetectionLight => 256,
        TaskId::MachineTranslation => 3_903,
    }
}

/// A QSL for one reference task, with load/unload accounting.
///
/// # Examples
///
/// ```
/// use mlperf_models::qsl::TaskQsl;
/// use mlperf_models::TaskId;
/// use mlperf_loadgen::qsl::QuerySampleLibrary;
///
/// let mut qsl = TaskQsl::for_task(TaskId::ImageClassificationHeavy, 512);
/// assert_eq!(qsl.total_sample_count(), 512);
/// assert!(qsl.performance_sample_count() <= 512);
/// qsl.load_samples(&[0, 1]);
/// assert!(qsl.tracker().is_loaded(1));
/// ```
#[derive(Debug, Clone)]
pub struct TaskQsl {
    name: String,
    total: usize,
    performance: usize,
    tracker: SampleTracker,
}

impl TaskQsl {
    /// Creates the QSL for `task` with `total` samples; the performance
    /// sample count follows the official per-task settings, capped by
    /// `total`.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn for_task(task: TaskId, total: usize) -> Self {
        assert!(total > 0, "QSL needs at least one sample");
        Self {
            name: format!("{}-qsl", task.spec().model_name),
            total,
            performance: default_performance_count(task).min(total),
            tracker: SampleTracker::new(total),
        }
    }

    /// Creates a QSL with an explicit performance sample count.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`, `performance == 0`, or
    /// `performance > total`.
    pub fn with_performance_count(task: TaskId, total: usize, performance: usize) -> Self {
        assert!(total > 0 && performance > 0 && performance <= total);
        Self {
            name: format!("{}-qsl", task.spec().model_name),
            total,
            performance,
            tracker: SampleTracker::new(total),
        }
    }

    /// Read access to the load/unload accounting.
    pub fn tracker(&self) -> &SampleTracker {
        &self.tracker
    }
}

impl QuerySampleLibrary for TaskQsl {
    fn name(&self) -> &str {
        &self.name
    }

    fn total_sample_count(&self) -> usize {
        self.total
    }

    fn performance_sample_count(&self) -> usize {
        self.performance
    }

    fn load_samples(&mut self, indices: &[SampleIndex]) {
        self.tracker
            .load(indices)
            .expect("LoadGen only loads in-range indices");
    }

    fn unload_samples(&mut self, indices: &[SampleIndex]) {
        self.tracker.unload(indices);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_capped_by_total() {
        let q = TaskQsl::for_task(TaskId::ImageClassificationHeavy, 100);
        assert_eq!(q.performance_sample_count(), 100);
        let q = TaskQsl::for_task(TaskId::ImageClassificationHeavy, 5_000);
        assert_eq!(q.performance_sample_count(), 1_024);
    }

    #[test]
    fn per_task_defaults() {
        assert_eq!(
            TaskQsl::for_task(TaskId::ObjectDetectionHeavy, 10_000).performance_sample_count(),
            64
        );
        assert_eq!(
            TaskQsl::for_task(TaskId::MachineTranslation, 10_000).performance_sample_count(),
            3_903
        );
    }

    #[test]
    fn loading_tracks() {
        let mut q = TaskQsl::for_task(TaskId::ObjectDetectionLight, 50);
        q.load_samples(&[3, 4, 5]);
        assert_eq!(q.tracker().resident(), 3);
        q.unload_samples(&[4]);
        assert_eq!(q.tracker().resident(), 2);
        assert!(q.name().contains("SSD-MobileNet"));
    }

    #[test]
    fn explicit_performance_count() {
        let q = TaskQsl::with_performance_count(TaskId::MachineTranslation, 100, 10);
        assert_eq!(q.performance_sample_count(), 10);
    }

    #[test]
    #[should_panic]
    fn zero_total_panics() {
        TaskQsl::for_task(TaskId::MachineTranslation, 0);
    }
}

//! The MLPerf Inference v0.5 reference-model suite.
//!
//! Two complementary representations of the five Table I workloads live
//! here:
//!
//! * [`registry`](mod@registry) — the paper's exact workload descriptors: parameter
//!   counts, operations per input, datasets, quality targets (Table I) and
//!   per-task latency constraints (Table III). The simulated device fleet
//!   computes service times from these real numbers.
//! * [`proxy`] — *runnable* miniature stand-ins (MiniResNet, MiniMobileNet,
//!   MiniSSD, MiniGNMT) built on `mlperf-nn` over the synthetic datasets.
//!   Their teacher networks define the ground truth, so FP32 reference
//!   quality and the INT8 quantization gap are *measured*, not asserted —
//!   which is what the benchmark's quality-window rules (Section III-B)
//!   need in order to be exercised honestly.
//! * [`workload`] — per-sample operation counts (constant for vision,
//!   sequence-length-dependent for GNMT) feeding the latency simulation.
//! * [`quality`] — the 99%/98%-of-FP32 quality windows and their checks.
//! * [`qsl`] — `QuerySampleLibrary` adapters for the proxy datasets.
//! * [`zoo`] — a Figure 1-style catalog of classifier design points
//!   (accuracy vs complexity Pareto context).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proxy;
pub mod qsl;
pub mod quality;
pub mod registry;
pub mod workload;
pub mod zoo;

pub use quality::QualityTarget;
pub use registry::{registry, ReferenceModel, TaskId};
pub use workload::Workload;

//! Quality targets and windows (Section III-B).

use crate::registry::TaskId;

/// A task's quality requirement: a fraction of the FP32 reference quality.
///
/// "We require that almost all implementations achieve a quality target
/// within 1% of the FP32 reference model's accuracy" — 2% for the
/// quantization-sensitive MobileNet classifier, and SSD-MobileNet's absolute
/// target was reduced to 22.0 mAP (represented here as its own reference
/// value with a 99% window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityTarget {
    reference: f64,
    window: f64,
}

impl QualityTarget {
    /// Creates a target: `window` fraction of `reference` quality.
    ///
    /// # Panics
    ///
    /// Panics unless `reference > 0` and `0 < window <= 1`.
    pub fn new(reference: f64, window: f64) -> Self {
        assert!(reference > 0.0, "reference quality must be positive");
        assert!(
            window > 0.0 && window <= 1.0,
            "quality window must be in (0, 1], got {window}"
        );
        Self { reference, window }
    }

    /// The paper's target for a task, against the paper's FP32 reference.
    pub fn for_task(task: TaskId) -> Self {
        let spec = task.spec();
        Self::new(spec.fp32_quality, spec.quality_window)
    }

    /// The paper's *window* for a task applied to a measured FP32 reference
    /// quality — what this reproduction uses, since the proxy models have
    /// their own (measured) FP32 reference quality.
    pub fn for_task_with_reference(task: TaskId, measured_fp32: f64) -> Self {
        Self::new(measured_fp32, task.spec().quality_window)
    }

    /// The FP32 reference quality.
    pub fn reference(&self) -> f64 {
        self.reference
    }

    /// The minimum admissible quality.
    pub fn threshold(&self) -> f64 {
        self.reference * self.window
    }

    /// Whether a measured quality meets the target.
    pub fn is_met(&self, measured: f64) -> bool {
        measured >= self.threshold()
    }
}

impl std::fmt::Display for QualityTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% of {:.3} (>= {:.3})",
            self.window * 100.0,
            self.reference,
            self.threshold()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_example_from_the_paper() {
        // "the ResNet-50 v1.5 model achieves 76.46% Top-1 accuracy, and an
        // equivalent model must achieve at least 75.70% Top-1 accuracy."
        let t = QualityTarget::for_task(TaskId::ImageClassificationHeavy);
        assert!((t.threshold() - 75.69).abs() < 0.01);
        assert!(t.is_met(75.70));
        assert!(!t.is_met(75.60));
    }

    #[test]
    fn mobilenet_gets_the_wider_window() {
        let t = QualityTarget::for_task(TaskId::ImageClassificationLight);
        assert!((t.threshold() - 71.676 * 0.98).abs() < 1e-9);
    }

    #[test]
    fn measured_reference_window() {
        let t = QualityTarget::for_task_with_reference(TaskId::ImageClassificationHeavy, 0.90);
        assert!(t.is_met(0.893));
        assert!(!t.is_met(0.88));
    }

    #[test]
    fn boundary_is_inclusive() {
        let t = QualityTarget::new(100.0, 0.99);
        assert!(t.is_met(99.0));
        assert!(!t.is_met(98.999_999));
    }

    #[test]
    #[should_panic(expected = "quality window")]
    fn bad_window_panics() {
        QualityTarget::new(1.0, 1.5);
    }

    #[test]
    fn display_mentions_threshold() {
        let t = QualityTarget::new(76.456, 0.99);
        assert!(t.to_string().contains("99.0%"));
    }
}

//! Property-based tests for the simulated devices and engines.

use mlperf_loadgen::query::{Query, QuerySample};
use mlperf_loadgen::sut::SimSut;
use mlperf_loadgen::time::Nanos;
use mlperf_models::{TaskId, Workload};
use mlperf_stats::Rng64;
use mlperf_sut::device::{Architecture, DeviceSpec};
use mlperf_sut::engine::{BatchPolicy, DeviceSut};
use proptest::prelude::*;
use std::collections::HashSet;

fn spec(peak: f64, work_half: f64, units: usize) -> DeviceSpec {
    DeviceSpec::new(
        "prop-dev",
        Architecture::Gpu,
        peak,
        work_half,
        32,
        units,
        Nanos::from_micros(100),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn utilization_is_monotone_and_bounded(
        work_half in 0.0f64..100.0,
        w1 in 0.01f64..1_000.0,
        delta in 0.01f64..1_000.0,
    ) {
        let d = spec(1_000.0, work_half, 1);
        let (u1, u2) = (d.utilization(w1), d.utilization(w1 + delta));
        prop_assert!(u1 > 0.0 && u1 <= 1.0);
        prop_assert!(u2 >= u1);
    }

    #[test]
    fn service_time_monotone_in_work(
        peak in 10.0f64..50_000.0,
        work_half in 0.0f64..50.0,
        w in 0.1f64..500.0,
        delta in 0.1f64..500.0,
    ) {
        let d = spec(peak, work_half, 1);
        let mut rng = Rng64::new(1);
        let t1 = d.service_time(w, 1, Nanos::ZERO, &mut rng);
        let t2 = d.service_time(w + delta, 1, Nanos::ZERO, &mut rng);
        prop_assert!(t2 >= t1, "{} !>= {}", t2, t1);
    }

    #[test]
    fn tuned_for_clamps_and_scales(ops in 0.0001f64..100_000.0) {
        let d = spec(1_000.0, 10.0, 1);
        let tuned = d.tuned_for(ops);
        let factor = tuned.work_half_gops / d.work_half_gops;
        prop_assert!((0.2..=8.0).contains(&factor), "factor {}", factor);
    }

    #[test]
    fn engine_completes_every_sample_exactly_once(
        seed in any::<u64>(),
        queries in 1usize..40,
        samples_per_query in 1usize..6,
        use_batcher in any::<bool>(),
    ) {
        let policy = if use_batcher {
            BatchPolicy::DynamicBatch {
                timeout: Nanos::from_millis(1),
                max_batch: 8,
            }
        } else {
            BatchPolicy::Immediate
        };
        let mut sut = DeviceSut::new(
            spec(1_000.0, 2.0, 2),
            Workload::new(TaskId::ImageClassificationLight),
            policy,
        )
        .with_seed(seed);
        let mut rng = Rng64::new(seed ^ 1);
        let mut expected: HashSet<u64> = HashSet::new();
        let mut seen: HashSet<u64> = HashSet::new();
        // All emitted wakeups stay live, exactly like the DES heap.
        let mut wakeups: std::collections::BinaryHeap<std::cmp::Reverse<Nanos>> =
            Default::default();
        let mut now = Nanos::ZERO;
        let mut sid = 0u64;
        for q in 0..queries {
            now += Nanos::from_micros(rng.next_below(2_000));
            let query = Query {
                id: q as u64,
                samples: (0..samples_per_query)
                    .map(|_| {
                        let s = QuerySample { id: sid, index: rng.next_index(64) };
                        sid += 1;
                        s
                    })
                    .collect(),
                scheduled_at: now,
                tenant: 0,
            };
            expected.extend(query.samples.iter().map(|s| s.id));
            let reaction = sut.on_query(now, &query);
            for c in &reaction.completions {
                prop_assert!(c.finished_at >= now);
                for s in &c.samples {
                    prop_assert!(seen.insert(s.sample_id), "sample {} completed twice", s.sample_id);
                }
            }
            if let Some(w) = reaction.wakeup_at {
                wakeups.push(std::cmp::Reverse(w));
            }
        }
        // Drain: keep firing wakeups until the engine settles.
        let mut guard = 0;
        while let Some(std::cmp::Reverse(at)) = wakeups.pop() {
            guard += 1;
            prop_assert!(guard < 10_000, "wakeup loop did not converge");
            now = now.max(at);
            let reaction = sut.on_wakeup(now);
            for c in &reaction.completions {
                for s in &c.samples {
                    prop_assert!(seen.insert(s.sample_id), "sample {} completed twice", s.sample_id);
                }
            }
            if let Some(w) = reaction.wakeup_at {
                wakeups.push(std::cmp::Reverse(w));
            }
        }
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn engine_is_deterministic_given_seed(seed in any::<u64>()) {
        let run = || {
            let mut sut = DeviceSut::new(
                spec(500.0, 1.0, 1),
                Workload::new(TaskId::ImageClassificationHeavy),
                BatchPolicy::Immediate,
            )
            .with_seed(seed);
            (0..10)
                .map(|q| {
                    let query = Query {
                        id: q,
                        samples: vec![QuerySample { id: q, index: q as usize }],
                        scheduled_at: Nanos::from_micros(q * 100),
                        tenant: 0,
                    };
                    sut.on_query(Nanos::from_micros(q * 100), &query).completions[0].finished_at
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn variable_workload_padding_never_cheaper_than_sum(
        seed in any::<u64>(),
        n in 2usize..32,
    ) {
        // A padded batch of GNMT samples must cost at least the longest
        // sample times the batch size; completing n samples unsorted takes
        // at least as long as sorted.
        let w = Workload::new(TaskId::MachineTranslation);
        let query = Query {
            id: 0,
            samples: (0..n)
                .map(|i| QuerySample {
                    id: i as u64,
                    index: Rng64::new(seed ^ i as u64).next_index(1_000),
                })
                .collect(),
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let unsorted = DeviceSut::new(spec(1_000.0, 1.0, 1), w.clone(), BatchPolicy::Immediate)
            .on_query(Nanos::ZERO, &query)
            .completions[0]
            .finished_at;
        let sorted = DeviceSut::new(spec(1_000.0, 1.0, 1), w, BatchPolicy::Immediate)
            .with_length_sorting()
            .on_query(Nanos::ZERO, &query)
            .completions[0]
            .finished_at;
        prop_assert!(sorted <= unsorted, "sorted {} > unsorted {}", sorted, unsorted);
    }
}

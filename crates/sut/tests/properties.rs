//! Property-style tests for the simulated devices and engines.
//!
//! Seeded `Rng64` case loops replace the former property-testing
//! framework; every assertion message carries enough parameters to
//! replay the failing case.

use mlperf_loadgen::query::{Query, QuerySample};
use mlperf_loadgen::sut::SimSut;
use mlperf_loadgen::time::Nanos;
use mlperf_models::{TaskId, Workload};
use mlperf_stats::Rng64;
use mlperf_sut::device::{Architecture, DeviceSpec};
use mlperf_sut::engine::{BatchPolicy, DeviceSut};
use std::collections::HashSet;

const CASES: u64 = 32;

fn spec(peak: f64, work_half: f64, units: usize) -> DeviceSpec {
    DeviceSpec::new(
        "prop-dev",
        Architecture::Gpu,
        peak,
        work_half,
        32,
        units,
        Nanos::from_micros(100),
    )
}

#[test]
fn utilization_is_monotone_and_bounded() {
    let mut rng = Rng64::new(0x5355_0001);
    for case in 0..CASES {
        let work_half = rng.next_f64() * 100.0;
        let w1 = 0.01 + rng.next_f64() * 999.99;
        let delta = 0.01 + rng.next_f64() * 999.99;
        let d = spec(1_000.0, work_half, 1);
        let (u1, u2) = (d.utilization(w1), d.utilization(w1 + delta));
        let ctx = format!("case {case}: work_half={work_half} w1={w1} delta={delta}");
        assert!(u1 > 0.0 && u1 <= 1.0, "{ctx}: u1={u1}");
        assert!(u2 >= u1, "{ctx}: u2={u2} < u1={u1}");
    }
}

#[test]
fn service_time_monotone_in_work() {
    let mut rng = Rng64::new(0x5355_0002);
    for case in 0..CASES {
        let peak = 10.0 + rng.next_f64() * 49_990.0;
        let work_half = rng.next_f64() * 50.0;
        let w = 0.1 + rng.next_f64() * 499.9;
        let delta = 0.1 + rng.next_f64() * 499.9;
        let d = spec(peak, work_half, 1);
        let mut srng = Rng64::new(1);
        let t1 = d.service_time(w, 1, Nanos::ZERO, &mut srng);
        let t2 = d.service_time(w + delta, 1, Nanos::ZERO, &mut srng);
        assert!(
            t2 >= t1,
            "case {case}: peak={peak} w={w} delta={delta}: {t2} !>= {t1}"
        );
    }
}

#[test]
fn tuned_for_clamps_and_scales() {
    let mut rng = Rng64::new(0x5355_0003);
    for case in 0..CASES {
        let ops = 0.0001 + rng.next_f64() * 99_999.999_9;
        let d = spec(1_000.0, 10.0, 1);
        let tuned = d.tuned_for(ops);
        let factor = tuned.work_half_gops / d.work_half_gops;
        assert!(
            (0.2..=8.0).contains(&factor),
            "case {case}: ops={ops} factor {factor}"
        );
    }
}

#[test]
fn engine_completes_every_sample_exactly_once() {
    let mut seeder = Rng64::new(0x5355_0004);
    for case in 0..CASES {
        let seed = seeder.next_u64();
        let queries = 1 + seeder.next_index(39);
        let samples_per_query = 1 + seeder.next_index(5);
        let use_batcher = seeder.next_bool(0.5);
        let ctx = format!(
            "case {case}: seed={seed} queries={queries} spq={samples_per_query} batcher={use_batcher}"
        );
        let policy = if use_batcher {
            BatchPolicy::DynamicBatch {
                timeout: Nanos::from_millis(1),
                max_batch: 8,
            }
        } else {
            BatchPolicy::Immediate
        };
        let mut sut = DeviceSut::new(
            spec(1_000.0, 2.0, 2),
            Workload::new(TaskId::ImageClassificationLight),
            policy,
        )
        .with_seed(seed);
        let mut rng = Rng64::new(seed ^ 1);
        let mut expected: HashSet<u64> = HashSet::new();
        let mut seen: HashSet<u64> = HashSet::new();
        // All emitted wakeups stay live, exactly like the DES heap.
        let mut wakeups: std::collections::BinaryHeap<std::cmp::Reverse<Nanos>> =
            Default::default();
        let mut now = Nanos::ZERO;
        let mut sid = 0u64;
        for q in 0..queries {
            now += Nanos::from_micros(rng.next_below(2_000));
            let query = Query {
                id: q as u64,
                samples: (0..samples_per_query)
                    .map(|_| {
                        let s = QuerySample {
                            id: sid,
                            index: rng.next_index(64),
                        };
                        sid += 1;
                        s
                    })
                    .collect(),
                scheduled_at: now,
                tenant: 0,
            };
            expected.extend(query.samples.iter().map(|s| s.id));
            let reaction = sut.on_query(now, &query);
            for c in &reaction.completions {
                assert!(c.finished_at >= now, "{ctx}");
                for s in &c.samples {
                    assert!(
                        seen.insert(s.sample_id),
                        "{ctx}: sample {} twice",
                        s.sample_id
                    );
                }
            }
            if let Some(w) = reaction.wakeup_at {
                wakeups.push(std::cmp::Reverse(w));
            }
        }
        // Drain: keep firing wakeups until the engine settles.
        let mut guard = 0;
        while let Some(std::cmp::Reverse(at)) = wakeups.pop() {
            guard += 1;
            assert!(guard < 10_000, "{ctx}: wakeup loop did not converge");
            now = now.max(at);
            let reaction = sut.on_wakeup(now);
            for c in &reaction.completions {
                for s in &c.samples {
                    assert!(
                        seen.insert(s.sample_id),
                        "{ctx}: sample {} twice",
                        s.sample_id
                    );
                }
            }
            if let Some(w) = reaction.wakeup_at {
                wakeups.push(std::cmp::Reverse(w));
            }
        }
        assert_eq!(seen, expected, "{ctx}");
    }
}

#[test]
fn engine_is_deterministic_given_seed() {
    let mut seeder = Rng64::new(0x5355_0005);
    for case in 0..CASES {
        let seed = seeder.next_u64();
        let run = || {
            let mut sut = DeviceSut::new(
                spec(500.0, 1.0, 1),
                Workload::new(TaskId::ImageClassificationHeavy),
                BatchPolicy::Immediate,
            )
            .with_seed(seed);
            (0..10)
                .map(|q| {
                    let query = Query {
                        id: q,
                        samples: vec![QuerySample {
                            id: q,
                            index: q as usize,
                        }],
                        scheduled_at: Nanos::from_micros(q * 100),
                        tenant: 0,
                    };
                    sut.on_query(Nanos::from_micros(q * 100), &query)
                        .completions[0]
                        .finished_at
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "case {case}: seed={seed}");
    }
}

#[test]
fn variable_workload_padding_never_cheaper_than_sum() {
    let mut seeder = Rng64::new(0x5355_0006);
    for case in 0..CASES {
        let seed = seeder.next_u64();
        let n = 2 + seeder.next_index(30);
        // A padded batch of GNMT samples must cost at least the longest
        // sample times the batch size; completing n samples unsorted takes
        // at least as long as sorted.
        let w = Workload::new(TaskId::MachineTranslation);
        let query = Query {
            id: 0,
            samples: (0..n)
                .map(|i| QuerySample {
                    id: i as u64,
                    index: Rng64::new(seed ^ i as u64).next_index(1_000),
                })
                .collect(),
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let unsorted = DeviceSut::new(spec(1_000.0, 1.0, 1), w.clone(), BatchPolicy::Immediate)
            .on_query(Nanos::ZERO, &query)
            .completions[0]
            .finished_at;
        let sorted = DeviceSut::new(spec(1_000.0, 1.0, 1), w, BatchPolicy::Immediate)
            .with_length_sorting()
            .on_query(Nanos::ZERO, &query)
            .completions[0]
            .finished_at;
        assert!(
            sorted <= unsorted,
            "case {case}: seed={seed} n={n}: sorted {sorted} > unsorted {unsorted}"
        );
    }
}

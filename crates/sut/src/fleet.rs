//! The simulated submission fleet.
//!
//! Stands in for the paper's 30+ real systems: named devices spanning four
//! orders of magnitude in peak throughput (Section VI-D), each tagged with
//! the vendor/framework/market-segment metadata the synthetic submission
//! round aggregates into Tables VI–VII and Figures 5–8.

use crate::device::{Architecture, DeviceSpec, ThermalModel};
use crate::engine::{BatchPolicy, DeviceSut};
use mlperf_loadgen::scenario::Scenario;
use mlperf_loadgen::time::Nanos;
use mlperf_models::{TaskId, Workload};

/// Deployment segment, which drives which tasks and scenarios a system's
/// vendor cares to submit (Section VI-A: submitters pick subsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarketSegment {
    /// IoT and deeply embedded devices.
    Embedded,
    /// Smartphones and tablets.
    Mobile,
    /// Edge servers, gateways, vehicles.
    Edge,
    /// Cloud and datacenter systems.
    Datacenter,
}

impl MarketSegment {
    /// All segments.
    pub const ALL: [MarketSegment; 4] = [
        MarketSegment::Embedded,
        MarketSegment::Mobile,
        MarketSegment::Edge,
        MarketSegment::Datacenter,
    ];
}

/// One system of the simulated fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSystem {
    /// The device model.
    pub spec: DeviceSpec,
    /// Submitting organization (fictional).
    pub vendor: &'static str,
    /// Software framework (Table VII rows).
    pub framework: &'static str,
    /// Deployment segment.
    pub segment: MarketSegment,
}

impl FleetSystem {
    /// Whether this system can meet the task's server QoS bound: its
    /// worst-case single-sample latency must fit well inside the bound
    /// (0.35×), or no operating point passes the p99/p97 check.
    pub fn can_serve(&self, task: TaskId) -> bool {
        let workload = Workload::new(task);
        let bound = task.spec().server_latency_bound.as_secs_f64();
        self.spec
            .tuned_for(workload.mean_ops(1_024))
            .batch1_latency(workload.worst_case_ops())
            .as_secs_f64()
            <= bound * 0.35
    }

    /// Whether this system can sustain at least one multistream stream:
    /// worst-case single-sample latency within 80% of the arrival interval.
    pub fn can_multistream(&self, task: TaskId) -> bool {
        let workload = Workload::new(task);
        self.spec
            .tuned_for(workload.mean_ops(1_024))
            .batch1_latency(workload.worst_case_ops())
            .as_secs_f64()
            <= task.spec().multistream_interval.as_secs_f64() * 0.8
    }

    /// Builds the execution engine for one task/scenario combination.
    ///
    /// Server runs get an *adaptive* dynamic batcher: the target batch is
    /// the largest power of two whose service time fits inside 45% of the
    /// task's QoS bound, and models that already saturate the device at
    /// batch 1 (heavy models on small devices, any model on
    /// latency-oriented silicon) skip batching entirely — "dynamically
    /// switching between one or more batch sizes" is an explicitly allowed
    /// technique (Section IV-A). Offline runs get immediate execution with
    /// length sorting (legal "arbitrary data arrangement"); the rest run
    /// immediately, unsorted.
    pub fn sut_for(&self, task: TaskId, scenario: Scenario) -> DeviceSut {
        let workload = Workload::new(task);
        let spec = self.spec.tuned_for(workload.mean_ops(1_024));
        let policy = match scenario {
            Scenario::Server => {
                let bound = task.spec().server_latency_bound;
                // Batches must be sized for the worst-case sample: an RNN
                // batch pads to its longest sequence, and the p99/p97 bound
                // must hold even for unlucky batches.
                let sizing_ops = workload.worst_case_ops();
                // Largest power-of-two batch whose worst-case service time
                // fits in 40% of the QoS bound: big enough to amortize,
                // small enough that wait + service + queueing still meets
                // the bound.
                let budget = bound.as_secs_f64() * 0.4;
                let mut batch = 1usize;
                while batch * 2 <= spec.max_batch
                    && spec
                        .batch1_latency(sizing_ops * (batch * 2) as f64)
                        .as_secs_f64()
                        <= budget
                {
                    batch *= 2;
                }
                if batch == 1 {
                    BatchPolicy::Immediate
                } else {
                    // Waiting longer than the batch's own service time never
                    // pays: at peak rates the batch fills before the timeout,
                    // and at low rates latency stays ~2x the batch service.
                    let service = spec.batch1_latency(sizing_ops * batch as f64);
                    BatchPolicy::DynamicBatch {
                        timeout: service,
                        max_batch: batch,
                    }
                }
            }
            _ => BatchPolicy::Immediate,
        };
        let seed = 0xf1ee_7000 ^ fnv(self.spec.name.as_bytes());
        let sut = DeviceSut::new(spec, workload, policy).with_seed(seed);
        if scenario == Scenario::Offline {
            sut.with_length_sorting()
        } else {
            sut
        }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full fleet, ordered roughly from smallest to largest.
pub fn fleet() -> Vec<FleetSystem> {
    let mobile_thermal = ThermalModel {
        boost: 1.35,
        decay_secs: 8.0,
    };
    vec![
        FleetSystem {
            spec: DeviceSpec::new(
                "iot-cpu",
                Architecture::Cpu,
                2.5,
                0.05,
                2,
                1,
                Nanos::from_millis(1),
            )
            .with_jitter(0.10),
            vendor: "Thistle Micro",
            framework: "TensorFlow Lite",
            segment: MarketSegment::Embedded,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "embedded-dsp",
                Architecture::Dsp,
                9.0,
                0.1,
                4,
                1,
                Nanos::from_micros(800),
            )
            .with_jitter(0.08),
            vendor: "Quarrel Wireless",
            framework: "SNPE",
            segment: MarketSegment::Embedded,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "mobile-cpu",
                Architecture::Cpu,
                24.0,
                0.1,
                4,
                1,
                Nanos::from_micros(400),
            )
            .with_jitter(0.10)
            .with_thermal(mobile_thermal),
            vendor: "Arbor Designs",
            framework: "Arm NN",
            segment: MarketSegment::Mobile,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "mobile-npu",
                Architecture::Asic,
                48.0,
                0.2,
                8,
                1,
                Nanos::from_micros(500),
            )
            .with_jitter(0.09)
            .with_thermal(mobile_thermal),
            vendor: "Quarrel Wireless",
            framework: "SNPE",
            segment: MarketSegment::Mobile,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "smartphone-gpu",
                Architecture::Gpu,
                70.0,
                1.5,
                16,
                1,
                Nanos::from_micros(700),
            )
            .with_jitter(0.10)
            .with_thermal(mobile_thermal),
            vendor: "Arbor Designs",
            framework: "Arm NN",
            segment: MarketSegment::Mobile,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "nuc-cpu",
                Architecture::Cpu,
                130.0,
                0.2,
                8,
                1,
                Nanos::from_micros(250),
            )
            .with_jitter(0.06),
            vendor: "Gable Systems",
            framework: "ONNX",
            segment: MarketSegment::Edge,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "laptop-cpu",
                Architecture::Cpu,
                210.0,
                0.2,
                16,
                1,
                Nanos::from_micros(200),
            )
            .with_jitter(0.07),
            vendor: "Gable Systems",
            framework: "PyTorch",
            segment: MarketSegment::Edge,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "edge-asic",
                Architecture::Asic,
                550.0,
                0.4,
                16,
                1,
                Nanos::from_micros(100),
            )
            .with_jitter(0.05),
            vendor: "Halcyon AI",
            framework: "Hailo SDK",
            segment: MarketSegment::Edge,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "desktop-cpu",
                Architecture::Cpu,
                420.0,
                0.25,
                32,
                1,
                Nanos::from_micros(150),
            )
            .with_jitter(0.06),
            vendor: "Vantage Compute",
            framework: "OpenVINO",
            segment: MarketSegment::Edge,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "edge-gpu",
                Architecture::Gpu,
                1_000.0,
                4.0,
                32,
                1,
                Nanos::from_micros(250),
            )
            .with_jitter(0.08),
            vendor: "Nimbus Graphics",
            framework: "TensorRT",
            segment: MarketSegment::Edge,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "fpga-card",
                Architecture::Fpga,
                1_900.0,
                2.0,
                16,
                1,
                Nanos::from_micros(120),
            )
            .with_jitter(0.04),
            vendor: "Firth Logic",
            framework: "FuriosaAI",
            segment: MarketSegment::Datacenter,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "server-cpu",
                Architecture::Cpu,
                1_400.0,
                0.3,
                32,
                2,
                Nanos::from_micros(100),
            )
            .with_jitter(0.06),
            vendor: "Vantage Compute",
            framework: "TensorFlow",
            segment: MarketSegment::Datacenter,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "workstation-gpu",
                Architecture::Gpu,
                4_200.0,
                6.0,
                64,
                1,
                Nanos::from_micros(180),
            )
            .with_jitter(0.08),
            vendor: "Nimbus Graphics",
            framework: "TensorFlow",
            segment: MarketSegment::Datacenter,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "habana-style-asic",
                Architecture::Asic,
                8_500.0,
                2.0,
                64,
                1,
                Nanos::from_micros(60),
            )
            .with_jitter(0.05),
            vendor: "Sable Labs",
            framework: "Synapse",
            segment: MarketSegment::Datacenter,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "datacenter-gpu",
                Architecture::Gpu,
                14_000.0,
                8.0,
                128,
                1,
                Nanos::from_micros(150),
            )
            .with_jitter(0.07),
            vendor: "Nimbus Graphics",
            framework: "TensorRT",
            segment: MarketSegment::Datacenter,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "multi-gpu-server",
                Architecture::Gpu,
                14_000.0,
                8.0,
                128,
                8,
                Nanos::from_micros(200),
            )
            .with_jitter(0.07),
            vendor: "Nimbus Graphics",
            framework: "TensorRT",
            segment: MarketSegment::Datacenter,
        },
        FleetSystem {
            spec: DeviceSpec::new(
                "cloud-asic-pod",
                Architecture::Asic,
                26_000.0,
                3.0,
                64,
                4,
                Nanos::from_micros(80),
            )
            .with_jitter(0.05),
            vendor: "Pagoda Cloud",
            framework: "TensorFlow",
            segment: MarketSegment::Datacenter,
        },
    ]
}

/// The eleven systems plotted in Figure 6 (server-to-offline degradation).
pub fn figure6_systems() -> Vec<FleetSystem> {
    let all = fleet();
    let names = [
        "smartphone-gpu",
        "edge-asic",
        "desktop-cpu",
        "fpga-card",
        "server-cpu",
        "workstation-gpu",
        "habana-style-asic",
        "datacenter-gpu",
        "multi-gpu-server",
        "cloud-asic-pod",
        "edge-gpu",
    ];
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|s| s.spec.name == *n)
                .expect("figure 6 system exists in fleet")
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_spans_four_orders_of_magnitude() {
        let systems = fleet();
        let totals: Vec<f64> = systems
            .iter()
            .map(|s| s.spec.peak_gops * s.spec.units as f64)
            .collect();
        let min = totals.iter().fold(f64::INFINITY, |a, b| a.min(*b));
        let max = totals.iter().fold(0.0f64, |a, b| a.max(*b));
        assert!(max / min >= 1e4, "spread {} too small", max / min);
    }

    #[test]
    fn names_are_unique() {
        let systems = fleet();
        let names: std::collections::HashSet<&str> =
            systems.iter().map(|s| s.spec.name.as_str()).collect();
        assert_eq!(names.len(), systems.len());
    }

    #[test]
    fn covers_all_architectures_and_segments() {
        let systems = fleet();
        for arch in Architecture::ALL {
            assert!(
                systems.iter().any(|s| s.spec.architecture == arch),
                "no {arch} system"
            );
        }
        for segment in MarketSegment::ALL {
            assert!(systems.iter().any(|s| s.segment == segment));
        }
    }

    #[test]
    fn tensorflow_has_most_architectural_variety() {
        // Section VI-C: "TensorFlow has the most architectural variety."
        let systems = fleet();
        let mut variety: std::collections::HashMap<&str, std::collections::HashSet<Architecture>> =
            std::collections::HashMap::new();
        for s in &systems {
            variety
                .entry(s.framework)
                .or_default()
                .insert(s.spec.architecture);
        }
        let tf = variety["TensorFlow"].len();
        assert!(variety.values().all(|v| v.len() <= tf));
        assert!(tf >= 3);
    }

    #[test]
    fn figure6_selection_is_eleven_distinct_systems() {
        let systems = figure6_systems();
        assert_eq!(systems.len(), 11);
        let names: std::collections::HashSet<&str> =
            systems.iter().map(|s| s.spec.name.as_str()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn sut_for_applies_scenario_policy() {
        let system = &fleet()[0];
        let server = system.sut_for(TaskId::ImageClassificationLight, Scenario::Server);
        let offline = system.sut_for(TaskId::ImageClassificationLight, Scenario::Offline);
        // Smoke: both run a query through the LoadGen without issue.
        use mlperf_loadgen::config::TestSettings;
        use mlperf_loadgen::des::run_simulated;
        use mlperf_loadgen::qsl::MemoryQsl;
        let mut qsl = MemoryQsl::new("q", 32, 32);
        let settings = TestSettings::offline()
            .with_min_duration(Nanos::from_millis(1))
            .with_offline_min_sample_count(64);
        let mut offline = offline;
        let out = run_simulated(&settings, &mut qsl, &mut offline).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        drop(server);
    }
}

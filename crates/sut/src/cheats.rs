//! Deliberately rule-breaking SUTs.
//!
//! The result-review process exists because submissions can violate the
//! rules in ways a single performance number hides (Section V-B). These
//! SUTs implement the abuses the LoadGen's validation suite targets, so
//! `mlperf-audit`'s tests have something real to catch:
//!
//! * [`CachingSut`] — caches query results; repeated sample indices run
//!   ~10× faster (the rules prohibit caching; duplicate-vs-unique index
//!   traffic exposes it).
//! * [`SeedSniffingSut`] — precomputed against the official schedule seed;
//!   fast only when the incoming sample sequence matches it (the
//!   alternate-random-seed test exposes it).
//! * [`SloppyAccuracySut`] — runs a degraded model in performance mode and
//!   the honest model in accuracy mode (randomly sampled performance-mode
//!   response logging exposes it).
//! * [`SilentDropperSut`] — quietly discards its slowest queries so the
//!   reported latency distribution contains only the flattering tail
//!   (the completeness audit's issued-vs-resolved count exposes it).

use crate::engine::DeviceSut;
use mlperf_loadgen::query::{
    Query, QueryCompletion, ResponsePayload, SampleCompletion, SampleIndex,
};
use mlperf_loadgen::sut::{SimSut, SutReaction};
use mlperf_loadgen::time::Nanos;
use mlperf_stats::Rng64;

/// Wraps an `Immediate`-policy engine with a result cache: a query whose
/// samples were all seen before is answered *from the cache*, without
/// touching the device at all — completing in a fraction of the honest
/// latency and leaving the device free for other work.
pub struct CachingSut {
    inner: DeviceSut,
    cache: std::collections::HashMap<SampleIndex, ResponsePayload>,
    last_honest_latency: Nanos,
    speedup: u64,
}

impl CachingSut {
    /// Wraps `inner` with a result cache giving `speedup`× on hits.
    ///
    /// # Panics
    ///
    /// Panics if `speedup == 0`.
    pub fn new(inner: DeviceSut, speedup: u64) -> Self {
        assert!(speedup > 0, "speedup must be positive");
        Self {
            inner,
            cache: std::collections::HashMap::new(),
            last_honest_latency: Nanos::from_micros(100),
            speedup,
        }
    }
}

impl SimSut for CachingSut {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        let all_cached = query
            .samples
            .iter()
            .all(|s| self.cache.contains_key(&s.index));
        if all_cached {
            let latency =
                Nanos::from_nanos((self.last_honest_latency.as_nanos() / self.speedup).max(1));
            return SutReaction::complete(QueryCompletion::ok(
                query.id,
                now + latency,
                query
                    .samples
                    .iter()
                    .map(|s| SampleCompletion {
                        sample_id: s.id,
                        payload: self.cache[&s.index].clone(),
                    })
                    .collect(),
            ));
        }
        let reaction = self.inner.on_query(now, query);
        for completion in &reaction.completions {
            self.last_honest_latency = completion.finished_at.saturating_sub(now);
            for (sc, qs) in completion.samples.iter().zip(&query.samples) {
                self.cache.insert(qs.index, sc.payload.clone());
            }
        }
        reaction
    }

    fn on_wakeup(&mut self, now: Nanos) -> SutReaction {
        self.inner.on_wakeup(now)
    }

    fn reset(&mut self) {
        // Deliberately keeps the cache: real result caches survive runs.
        self.inner.reset();
    }
}

/// Precomputes against the official sample-index stream: while incoming
/// indices match its prediction it answers fast; on the first mismatch it
/// falls back to honest (slower) execution forever.
pub struct SeedSniffingSut {
    inner: DeviceSut,
    expected: Vec<SampleIndex>,
    position: usize,
    on_script: bool,
    speedup: u64,
}

impl SeedSniffingSut {
    /// Wraps `inner`, precomputed for the index stream that `qsl_seed`
    /// yields over `population` samples (one sample per query).
    pub fn new(inner: DeviceSut, qsl_seed: u64, population: usize, horizon: usize) -> Self {
        let mut rng = Rng64::new(qsl_seed);
        let expected = rng.sample_with_replacement(population, horizon);
        Self {
            inner,
            expected,
            position: 0,
            on_script: true,
            speedup: 8,
        }
    }
}

impl SimSut for SeedSniffingSut {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        if self.on_script {
            for s in &query.samples {
                if self.expected.get(self.position) == Some(&s.index) {
                    self.position += 1;
                } else {
                    self.on_script = false;
                    break;
                }
            }
        }
        if self.on_script {
            // Precomputed: answer from the prepared buffer without touching
            // the device at all.
            let fast = Nanos::from_nanos(20_000 * query.samples.len() as u64 / self.speedup.max(1));
            return SutReaction::complete(QueryCompletion::ok(
                query.id,
                now + fast,
                query
                    .samples
                    .iter()
                    .map(|s| SampleCompletion {
                        sample_id: s.id,
                        payload: ResponsePayload::Empty,
                    })
                    .collect(),
            ));
        }
        self.inner.on_query(now, query)
    }

    fn on_wakeup(&mut self, now: Nanos) -> SutReaction {
        self.inner.on_wakeup(now)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.position = 0;
        self.on_script = true;
    }
}

/// Answers honestly in accuracy-shaped traffic but swaps in garbage
/// payloads during performance-shaped traffic (single-sample queries),
/// assuming nobody checks. The accuracy-verification audit's sampled
/// performance-mode logging defeats the assumption.
pub struct SloppyAccuracySut {
    inner: DeviceSut,
    degraded_classes: usize,
}

impl SloppyAccuracySut {
    /// Wraps `inner`; performance-mode answers become `Class(index % k)`.
    pub fn new(inner: DeviceSut, degraded_classes: usize) -> Self {
        Self {
            inner,
            degraded_classes: degraded_classes.max(1),
        }
    }
}

impl SimSut for SloppyAccuracySut {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        let mut reaction = self.inner.on_query(now, query);
        // Heuristic a cheater would use: full-dataset batch queries are
        // accuracy runs; everything else is performance traffic.
        let looks_like_performance = query.samples.len() <= 64;
        if looks_like_performance {
            for completion in &mut reaction.completions {
                for (sample, orig) in completion.samples.iter_mut().zip(&query.samples) {
                    sample.payload = ResponsePayload::Class(orig.index % self.degraded_classes);
                }
            }
        }
        reaction
    }

    fn on_wakeup(&mut self, now: Nanos) -> SutReaction {
        self.inner.on_wakeup(now)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Silently discards completions for its slowest queries: a query whose
/// latency lands beyond `slow_factor`× the running mean of everything
/// reported so far simply never completes (up to a `drop_fraction` budget),
/// so the latency distribution the run reports is built only from the
/// queries the cheater chose to answer. No error, no log line — the query
/// vanishes. The completeness audit compares the LoadGen's issued count
/// against the SUT's resolved count to expose the gap.
pub struct SilentDropperSut {
    inner: DeviceSut,
    issued_at: std::collections::HashMap<u64, Nanos>,
    seen: u64,
    dropped: u64,
    mean_latency_ns: f64,
    drop_fraction: f64,
    slow_factor: f64,
}

impl SilentDropperSut {
    /// Wraps `inner`; up to `drop_fraction` of queries vanish when their
    /// latency exceeds `slow_factor`× the running mean.
    ///
    /// # Panics
    ///
    /// Panics if `drop_fraction` is outside `[0, 1]` or `slow_factor < 1`.
    pub fn new(inner: DeviceSut, drop_fraction: f64, slow_factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_fraction),
            "drop_fraction must be a fraction"
        );
        assert!(slow_factor >= 1.0, "slow_factor must be at least 1");
        Self {
            inner,
            issued_at: std::collections::HashMap::new(),
            seen: 0,
            dropped: 0,
            mean_latency_ns: 0.0,
            drop_fraction,
            slow_factor,
        }
    }

    /// How many queries have vanished so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn censor(&mut self, mut reaction: SutReaction) -> SutReaction {
        let mut kept = Vec::with_capacity(reaction.completions.len());
        for completion in reaction.completions.drain(..) {
            let Some(issued) = self.issued_at.remove(&completion.query_id) else {
                kept.push(completion);
                continue;
            };
            let latency = completion.finished_at.saturating_sub(issued).as_nanos() as f64;
            self.seen += 1;
            let slow =
                self.mean_latency_ns > 0.0 && latency > self.slow_factor * self.mean_latency_ns;
            let within_budget = (self.dropped as f64) < self.drop_fraction * self.seen as f64;
            if slow && within_budget {
                self.dropped += 1;
                continue; // the query simply never completes
            }
            // The running mean covers only what the cheater reports, so the
            // censored tail never drags the threshold upward.
            self.mean_latency_ns += (latency - self.mean_latency_ns) / self.seen as f64;
            kept.push(completion);
        }
        reaction.completions = kept;
        reaction
    }
}

impl SimSut for SilentDropperSut {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        self.issued_at.insert(query.id, now);
        let reaction = self.inner.on_query(now, query);
        self.censor(reaction)
    }

    fn on_wakeup(&mut self, now: Nanos) -> SutReaction {
        let reaction = self.inner.on_wakeup(now);
        self.censor(reaction)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.issued_at.clear();
        self.seen = 0;
        self.dropped = 0;
        self.mean_latency_ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Architecture, DeviceSpec};
    use crate::engine::BatchPolicy;
    use mlperf_loadgen::query::QuerySample;
    use mlperf_models::{TaskId, Workload};

    fn engine() -> DeviceSut {
        DeviceSut::new(
            DeviceSpec::new(
                "cheat-dev",
                Architecture::Cpu,
                100.0,
                0.5,
                8,
                1,
                Nanos::from_micros(100),
            ),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::Immediate,
        )
    }

    fn query(id: u64, index: usize) -> Query {
        Query {
            id,
            samples: vec![QuerySample { id, index }],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        }
    }

    #[test]
    fn caching_sut_speeds_up_repeats() {
        let mut sut = CachingSut::new(engine(), 10);
        let fresh = sut.on_query(Nanos::ZERO, &query(0, 5)).completions[0].finished_at;
        sut.reset();
        let repeat = sut.on_query(Nanos::ZERO, &query(1, 5)).completions[0].finished_at;
        assert!(
            repeat.as_nanos() * 5 < fresh.as_nanos(),
            "cache hit {repeat} not much faster than miss {fresh}"
        );
    }

    #[test]
    fn seed_sniffer_fast_on_script_slow_off() {
        let seed = 42;
        let population = 16;
        let mut rng = Rng64::new(seed);
        let script = rng.sample_with_replacement(population, 4);
        let mut sut = SeedSniffingSut::new(engine(), seed, population, 64);
        let on_script = sut.on_query(Nanos::ZERO, &query(0, script[0])).completions[0].finished_at;
        sut.reset();
        let off = (script[0] + 1) % population;
        let off_script = sut.on_query(Nanos::ZERO, &query(0, off)).completions[0].finished_at;
        assert!(
            on_script.as_nanos() * 4 < off_script.as_nanos(),
            "{on_script} vs {off_script}"
        );
    }

    #[test]
    fn silent_dropper_vanishes_slow_queries() {
        // A burst at t=0 on a serial device queues up, so latencies climb
        // query by query; the tail should silently disappear.
        let mut sut = SilentDropperSut::new(engine(), 0.25, 1.5);
        let mut completed = 0usize;
        for id in 0..16 {
            completed += sut
                .on_query(Nanos::ZERO, &query(id, id as usize % 4))
                .completions
                .len();
        }
        assert!(completed < 16, "no query was dropped");
        assert!(sut.dropped() > 0);
        assert_eq!(completed + sut.dropped() as usize, 16);
        // The drop budget bounds the damage.
        assert!(sut.dropped() <= 5, "dropped {} of 16", sut.dropped());
        // After reset the first (unqueued) query completes normally.
        sut.reset();
        assert_eq!(
            sut.on_query(Nanos::ZERO, &query(99, 0)).completions.len(),
            1
        );
    }

    #[test]
    fn sloppy_sut_swaps_payloads_on_small_queries_only() {
        let inner = engine().with_payloads(std::sync::Arc::new(|_| ResponsePayload::Class(7)));
        let mut sut = SloppyAccuracySut::new(inner, 3);
        let perf = sut.on_query(Nanos::ZERO, &query(0, 4));
        assert_eq!(
            perf.completions[0].samples[0].payload,
            ResponsePayload::Class(1)
        );
        // A big accuracy-style batch keeps honest payloads.
        let big = Query {
            id: 1,
            samples: (0..100)
                .map(|i| QuerySample {
                    id: 100 + i as u64,
                    index: i,
                })
                .collect(),
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let acc = sut.on_query(Nanos::ZERO, &big);
        assert!(acc.completions[0]
            .samples
            .iter()
            .all(|s| s.payload == ResponsePayload::Class(7)));
    }
}

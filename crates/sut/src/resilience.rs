//! Recovery policies over unreliable engines.
//!
//! Fault injection ([`crate::faults`]) makes degraded runs producible;
//! this module adds the serving-layer countermeasures a production stack
//! would deploy against exactly those faults, so experiments can measure
//! *which* policies rescue a run's validity and at what latency cost:
//!
//! * **Per-query timeout** — a client-side deadline; work that misses it
//!   is abandoned and handled by the next policy in the chain.
//! * **Bounded retry with backoff** — failed or timed-out queries are
//!   re-dispatched to the primary engine up to a retry budget, each
//!   attempt waiting one backoff step longer.
//! * **Failover** — once retries are exhausted, the query runs once on a
//!   sibling device (the fleet's spare), if one is attached.
//! * **Load shedding** — past a queue-depth threshold, arriving queries
//!   of the lowest-priority tenant resolve immediately as errors instead
//!   of queueing, protecting higher-priority tenants' tail latency.
//!
//! Every recovery decision is emitted as a
//! [`TraceEvent::RecoveryAction`] and a `recovery_*` counter, so the
//! PR 1/2 observability pipeline shows exactly when and why each policy
//! fired.
//!
//! Retries are re-issued under a *salted* query id (the attempt number
//! XOR-ed into bits 48..56, below the tenant byte) and translated back
//! before delivery, so the LoadGen sees exactly one completion per query
//! while the fault plan sees each attempt as a distinct query and rolls
//! fresh, still-deterministic fault verdicts.

use mlperf_loadgen::query::{Query, QueryCompletion};
use mlperf_loadgen::sut::{SimSut, SutReaction};
use mlperf_loadgen::time::Nanos;
use mlperf_trace::{MetricsRegistry, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Tunable recovery behaviour. The default is entirely inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResiliencePolicy {
    /// Client-side per-attempt deadline; `None` disables timeouts.
    pub timeout: Option<Nanos>,
    /// Retry budget per query (0 = fail fast to failover/error).
    pub max_retries: u32,
    /// Backoff before attempt `n` retries: `backoff × n`.
    pub backoff: Nanos,
    /// Queue depth at which arriving lowest-priority queries are shed;
    /// `None` disables shedding.
    pub shed_threshold: Option<usize>,
}

impl ResiliencePolicy {
    /// Whether any policy is active. An inert policy makes
    /// [`ResilientSut`] a pass-through.
    pub fn is_armed(&self) -> bool {
        self.timeout.is_some() || self.max_retries > 0 || self.shed_threshold.is_some()
    }
}

/// Attempt salts live in the byte below the tenant byte, so salted ids
/// collide with genuine ids only after 2^48 queries.
const SALT_SHIFT: u32 = 48;

fn salted(id: u64, attempt: u32) -> u64 {
    id ^ (u64::from(attempt) << SALT_SHIFT)
}

#[derive(Debug, Clone)]
struct Flight {
    /// The original query, for retries and final errored delivery.
    query: Query,
    /// When this attempt was dispatched.
    issued_at: Nanos,
    /// 0 for the first attempt.
    attempt: u32,
    /// Whether this attempt runs on the sibling.
    on_sibling: bool,
}

/// A [`SimSut`] decorator applying a [`ResiliencePolicy`] over a primary
/// engine and an optional failover sibling.
pub struct ResilientSut<S> {
    primary: S,
    sibling: Option<S>,
    policy: ResiliencePolicy,
    name: String,
    /// In-flight attempts keyed by wire (salted) id.
    in_flight: HashMap<u64, Flight>,
    /// Wire ids whose late completions must be swallowed (abandoned by a
    /// timeout that already triggered recovery).
    abandoned: HashSet<u64>,
    /// Deadlines for armed timeouts: (deadline, wire id).
    deadlines: BinaryHeap<Reverse<(Nanos, u64)>>,
    /// Every wakeup time owed to the driver — inner engines' requests plus
    /// timeout deadlines. A reaction can carry only one `wakeup_at`, and
    /// the engines deduplicate their own requests (they assume an armed
    /// wakeup will fire), so any candidate not surfaced immediately must be
    /// re-armed later instead of dropped.
    wakeups: BinaryHeap<Reverse<Nanos>>,
    /// Finish times of accepted completions, for queue-depth shedding.
    busy: BinaryHeap<Reverse<Nanos>>,
    /// Lowest-priority (highest-numbered) tenant observed so far.
    max_tenant_seen: u32,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<S: SimSut> ResilientSut<S> {
    /// Wraps `primary` with `policy` and no failover sibling.
    pub fn new(primary: S, policy: ResiliencePolicy) -> Self {
        let name = format!("{}+resilient", primary.name());
        Self {
            primary,
            sibling: None,
            policy,
            name,
            in_flight: HashMap::new(),
            abandoned: HashSet::new(),
            deadlines: BinaryHeap::new(),
            wakeups: BinaryHeap::new(),
            busy: BinaryHeap::new(),
            max_tenant_seen: 0,
            trace: None,
            metrics: None,
        }
    }

    /// Attaches a failover sibling: queries that exhaust their retry
    /// budget on the primary run once on this device.
    pub fn with_sibling(mut self, sibling: S) -> Self {
        self.sibling = Some(sibling);
        self
    }

    /// Attaches a trace sink for [`TraceEvent::RecoveryAction`] records.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attaches a metrics registry for `recovery_*` counters.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    fn note(&self, at: Nanos, query_id: u64, action: &str, attempt: u32) {
        if let Some(m) = self.metrics.as_deref() {
            m.incr("recovery_actions", 1);
            m.incr(&format!("recovery_{action}"), 1);
        }
        if let Some(sink) = self.trace.as_deref() {
            if sink.enabled() {
                sink.record(
                    at.as_nanos(),
                    &TraceEvent::RecoveryAction {
                        query_id,
                        action: action.to_string(),
                        attempt,
                    },
                );
            }
        }
    }

    /// Dispatches one attempt, registering flight state and deadline.
    /// Returns the raw inner reaction for recursive processing.
    fn dispatch(
        &mut self,
        at: Nanos,
        query: &Query,
        attempt: u32,
        on_sibling: bool,
    ) -> SutReaction {
        let wire_id = salted(query.id, attempt);
        let mut wire_query = query.clone();
        wire_query.id = wire_id;
        self.in_flight.insert(
            wire_id,
            Flight {
                query: query.clone(),
                issued_at: at,
                attempt,
                on_sibling,
            },
        );
        if let Some(timeout) = self.policy.timeout {
            let deadline = at + timeout;
            self.deadlines.push(Reverse((deadline, wire_id)));
            self.wakeups.push(Reverse(deadline));
        }
        let target = if on_sibling {
            self.sibling.as_mut().expect("sibling present")
        } else {
            &mut self.primary
        };
        target.on_query(at, &wire_query)
    }

    /// Handles one failed attempt (errored completion or timeout),
    /// escalating retry → failover → errored delivery. `detected` is the
    /// simulated instant the failure became known.
    fn recover(&mut self, flight: Flight, detected: Nanos, out: &mut SutReaction) {
        let original = &flight.query;
        if !flight.on_sibling && flight.attempt < self.policy.max_retries {
            let attempt = flight.attempt + 1;
            let retry_at = detected + self.policy.backoff.mul(u64::from(attempt));
            self.note(detected, original.id, "retry", attempt);
            let query = original.clone();
            let reaction = self.dispatch(retry_at, &query, attempt, false);
            self.process(retry_at, reaction, out);
        } else if !flight.on_sibling && self.sibling.is_some() {
            let attempt = flight.attempt + 1;
            let retry_at = detected + self.policy.backoff.mul(u64::from(attempt));
            self.note(detected, original.id, "failover", attempt);
            let query = original.clone();
            let reaction = self.dispatch(retry_at, &query, attempt, true);
            self.process(retry_at, reaction, out);
        } else {
            // Out of options: the query resolves as an error.
            self.note(detected, original.id, "exhausted", flight.attempt);
            out.completions
                .push(QueryCompletion::errored(original, detected));
            self.busy.push(Reverse(detected));
        }
    }

    /// Folds an inner reaction into `out`, applying timeout detection and
    /// failure recovery to each completion.
    fn process(&mut self, now: Nanos, mut reaction: SutReaction, out: &mut SutReaction) {
        if let Some(at) = reaction.wakeup_at {
            self.wakeups.push(Reverse(at));
        }
        for mut completion in reaction.completions.drain(..) {
            if self.abandoned.remove(&completion.query_id) {
                // A timeout already recovered this attempt; the late
                // completion is noise.
                continue;
            }
            let Some(flight) = self.in_flight.remove(&completion.query_id) else {
                // Not ours (pass-through mode raced a policy change);
                // forward untouched.
                out.completions.push(completion);
                continue;
            };
            let timed_out = self
                .policy
                .timeout
                .is_some_and(|t| completion.finished_at > flight.issued_at + t);
            if completion.error || timed_out {
                // The failure is known at the deadline (timeout) or when
                // the error surfaces; never earlier than `now`.
                let detected = if completion.error {
                    completion.finished_at.max(now)
                } else {
                    self.note(now, flight.query.id, "timeout", flight.attempt);
                    (flight.issued_at + self.policy.timeout.expect("timed_out")).max(now)
                };
                self.recover(flight, detected, out);
            } else {
                completion.query_id = flight.query.id;
                self.busy.push(Reverse(completion.finished_at));
                out.completions.push(completion);
            }
        }
    }

    /// Fires timeouts whose deadline has passed without a completion.
    fn expire_deadlines(&mut self, now: Nanos, out: &mut SutReaction) {
        while let Some(Reverse((deadline, wire_id))) = self.deadlines.peek().copied() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            // Only an attempt still in flight has timed out; completed or
            // already-recovered attempts left a stale entry.
            let Some(flight) = self.in_flight.get(&wire_id) else {
                continue;
            };
            if now < flight.issued_at + self.policy.timeout.expect("deadline armed") {
                continue;
            }
            let flight = self.in_flight.remove(&wire_id).expect("checked above");
            self.abandoned.insert(wire_id);
            self.note(deadline, flight.query.id, "timeout", flight.attempt);
            self.recover(flight, deadline.max(now), out);
        }
    }

    /// Arms the earliest still-future owed wakeup on the outgoing reaction.
    /// Entries at or before `now` are satisfied by this very invocation
    /// (the engines were just serviced) and discarded.
    fn arm_next_wakeup(&mut self, now: Nanos, out: &mut SutReaction) {
        while let Some(Reverse(t)) = self.wakeups.peek().copied() {
            if t > now {
                break;
            }
            self.wakeups.pop();
        }
        if let Some(Reverse(t)) = self.wakeups.peek() {
            merge_wakeup(out, Some(*t));
        }
    }

    /// Current queue depth: accepted completions still in the simulated
    /// future plus attempts with no completion yet.
    fn depth(&mut self, now: Nanos) -> usize {
        while let Some(Reverse(t)) = self.busy.peek().copied() {
            if t > now {
                break;
            }
            self.busy.pop();
        }
        self.busy.len() + self.in_flight.len()
    }
}

fn merge_wakeup(out: &mut SutReaction, at: Option<Nanos>) {
    out.wakeup_at = match (out.wakeup_at, at) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
}

impl<S: SimSut> SimSut for ResilientSut<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        if !self.policy.is_armed() {
            return self.primary.on_query(now, query);
        }
        let mut out = SutReaction::none();
        self.expire_deadlines(now, &mut out);
        self.max_tenant_seen = self.max_tenant_seen.max(query.tenant);
        if let Some(threshold) = self.policy.shed_threshold {
            // Shed lowest-priority work first: only the highest-numbered
            // tenant's arrivals are refused. (With one tenant, everyone is
            // lowest priority and overload sheds across the board.)
            if query.tenant == self.max_tenant_seen && self.depth(now) >= threshold {
                self.note(now, query.id, "shed", 0);
                out.completions.push(QueryCompletion::errored(query, now));
                return out;
            }
        }
        let reaction = self.dispatch(now, query, 0, false);
        self.process(now, reaction, &mut out);
        // Arrivals reach only the primary, but `arm_next_wakeup` treats this
        // invocation as satisfying every wakeup due by `now` — so give the
        // sibling its due service too.
        if self.sibling.is_some() {
            let reaction = self.sibling.as_mut().expect("checked above").on_wakeup(now);
            self.process(now, reaction, &mut out);
        }
        self.arm_next_wakeup(now, &mut out);
        out
    }

    fn on_wakeup(&mut self, now: Nanos) -> SutReaction {
        if !self.policy.is_armed() {
            return self.primary.on_wakeup(now);
        }
        let mut out = SutReaction::none();
        self.expire_deadlines(now, &mut out);
        let reaction = self.primary.on_wakeup(now);
        self.process(now, reaction, &mut out);
        if self.sibling.is_some() {
            let reaction = self.sibling.as_mut().expect("checked above").on_wakeup(now);
            self.process(now, reaction, &mut out);
        }
        self.arm_next_wakeup(now, &mut out);
        out
    }

    fn reset(&mut self) {
        self.primary.reset();
        if let Some(s) = self.sibling.as_mut() {
            s.reset();
        }
        self.in_flight.clear();
        self.abandoned.clear();
        self.deadlines.clear();
        self.wakeups.clear();
        self.busy.clear();
        self.max_tenant_seen = 0;
    }
}

impl<S: SimSut> std::fmt::Debug for ResilientSut<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientSut")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultySut};
    use mlperf_loadgen::config::TestSettings;
    use mlperf_loadgen::des::run_simulated;
    use mlperf_loadgen::multitenant::run_multitenant_server;
    use mlperf_loadgen::qsl::MemoryQsl;
    use mlperf_loadgen::sut::FixedLatencySut;
    use mlperf_loadgen::validate::ValidityIssue;

    fn server_settings() -> TestSettings {
        TestSettings::server(500.0, Nanos::from_millis(20))
            .with_min_query_count(200)
            .with_min_duration(Nanos::from_millis(50))
    }

    fn fixed() -> FixedLatencySut {
        FixedLatencySut::new("fixed", Nanos::from_micros(300))
    }

    #[test]
    fn inert_policy_is_a_pass_through() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let baseline = run_simulated(&server_settings(), &mut qsl, &mut fixed()).unwrap();
        let mut resilient = ResilientSut::new(fixed(), ResiliencePolicy::default());
        assert!(!resilient.policy().is_armed());
        let out = run_simulated(&server_settings(), &mut qsl, &mut resilient).unwrap();
        // Identical apart from the decorator suffix on the SUT name.
        let strip = |line: String| line.split_once(" | ").expect("name field").1.to_string();
        assert_eq!(
            strip(baseline.result.summary_line()),
            strip(out.result.summary_line())
        );
    }

    #[test]
    fn retries_recover_transient_errors() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        // 20% transient errors, unrecovered: the run is INVALID.
        let plan = FaultPlan::new(17).with_transient_errors(0.2);
        let mut bare = FaultySut::new(fixed(), plan.clone());
        let broken = run_simulated(&server_settings(), &mut qsl, &mut bare).unwrap();
        assert!(broken.result.error_count > 0);
        assert!(!broken.result.is_valid());

        // Six retries push per-query failure odds to 0.2^7 ≈ 0.001%, so
        // a ~200-query run recovers everything with margin to spare.
        let policy = ResiliencePolicy {
            max_retries: 6,
            backoff: Nanos::from_micros(100),
            ..ResiliencePolicy::default()
        };
        let mut recovered = ResilientSut::new(FaultySut::new(fixed(), plan), policy);
        let out = run_simulated(&server_settings(), &mut qsl, &mut recovered).unwrap();
        assert_eq!(
            out.result.error_count, 0,
            "retries must absorb every transient error: {:?}",
            out.result.validity
        );
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
    }

    #[test]
    fn failover_survives_device_death() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let plan = FaultPlan::new(5).with_death_at(Nanos::from_millis(20));
        // Without failover the dead device leaves queries incomplete.
        let mut bare = FaultySut::new(fixed(), plan.clone());
        let broken = run_simulated(&server_settings(), &mut qsl, &mut bare).unwrap();
        assert!(!broken.result.is_valid());

        // With a timeout and a sibling, every abandoned query reruns on
        // the spare and the run stays VALID.
        let policy = ResiliencePolicy {
            timeout: Some(Nanos::from_millis(2)),
            max_retries: 0,
            backoff: Nanos::ZERO,
            shed_threshold: None,
        };
        let mut resilient =
            ResilientSut::new(FaultySut::new(fixed(), plan), policy).with_sibling(FaultySut::new(
                FixedLatencySut::new("spare", Nanos::from_micros(300)),
                FaultPlan::new(6),
            ));
        let out = run_simulated(&server_settings(), &mut qsl, &mut resilient).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        assert_eq!(out.result.error_count, 0);
    }

    #[test]
    fn shedding_protects_the_high_priority_tenant() {
        // One serial 500 us device shared by two tenants at 900 qps each:
        // 1.8x overload. Shedding refuses tenant-1 work past a shallow
        // queue, keeping tenant 0 inside its bound.
        let a = TestSettings::server(900.0, Nanos::from_millis(10))
            .with_min_query_count(300)
            .with_min_duration(Nanos::from_millis(5));
        let b = TestSettings::server(900.0, Nanos::from_millis(10))
            .with_min_query_count(300)
            .with_min_duration(Nanos::from_millis(5));
        let mut qa = MemoryQsl::new("a", 16, 16);
        let mut qb = MemoryQsl::new("b", 16, 16);
        let policy = ResiliencePolicy {
            shed_threshold: Some(4),
            ..ResiliencePolicy::default()
        };
        let mut sut = ResilientSut::new(
            FixedLatencySut::new("shared", Nanos::from_micros(500)),
            policy,
        );
        let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> = vec![(&a, &mut qa), (&b, &mut qb)];
        let outcomes = run_multitenant_server(&mut tenants, &mut sut).unwrap();
        assert!(
            outcomes[0].result.is_valid(),
            "tenant 0 must be protected: {:?}",
            outcomes[0].result.validity
        );
        assert!(outcomes[1].result.error_count > 0, "tenant 1 work was shed");
        assert!(outcomes[1]
            .result
            .validity
            .iter()
            .any(|i| matches!(i, ValidityIssue::ErrorFractionExceeded { .. })));
    }

    #[test]
    fn recovery_actions_are_observable() {
        use mlperf_trace::RingBufferSink;
        let sink = Arc::new(RingBufferSink::unbounded());
        let metrics = Arc::new(MetricsRegistry::new());
        let plan = FaultPlan::new(17).with_transient_errors(0.2);
        let policy = ResiliencePolicy {
            max_retries: 4,
            backoff: Nanos::from_micros(100),
            ..ResiliencePolicy::default()
        };
        let mut sut = ResilientSut::new(FaultySut::new(fixed(), plan), policy)
            .with_trace(sink.clone())
            .with_metrics(metrics.clone());
        let mut qsl = MemoryQsl::new("q", 16, 16);
        run_simulated(&server_settings(), &mut qsl, &mut sut).unwrap();
        let retries: u64 = metrics.snapshot().counter("recovery_retry");
        assert!(retries > 0, "20% error rate must trigger retries");
        assert!(sink.snapshot().iter().any(|r| matches!(
            &r.event,
            TraceEvent::RecoveryAction { action, .. } if action == "retry"
        )));
    }
}

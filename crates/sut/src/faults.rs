//! Fault injection: seeded, deterministic degradation of any [`SimSut`].
//!
//! Real submission hardware misbehaves: queries fail transiently, firmware
//! hiccups stall a device for milliseconds, sustained thermal throttling
//! halves throughput, and sometimes an accelerator falls off the bus
//! entirely. The LoadGen's validity rules exist to catch exactly these
//! degraded runs, so the simulator needs a way to *produce* them on
//! demand. A [`FaultPlan`] describes a reproducible schedule of faults and
//! [`FaultySut`] applies it as a decorator around any inner engine —
//! composing with the jitter and thermal models in [`crate::device`],
//! which model *healthy* variance, not failure.
//!
//! Determinism: per-query fault decisions are drawn from a hash of the
//! plan seed and the query id, never from shared mutable RNG state, so a
//! decision does not depend on the order in which queries reach the
//! decorator. Two runs with the same plan, seeds, and settings produce
//! byte-identical detail logs.

use mlperf_loadgen::query::{Query, QueryCompletion};
use mlperf_loadgen::sut::{SimSut, SutReaction};
use mlperf_loadgen::time::Nanos;
use mlperf_stats::Rng64;
use mlperf_trace::{MetricsRegistry, TraceEvent, TraceSink};
use std::sync::Arc;

/// A window during which the device is completely paused (a GC pause, a
/// firmware hiccup, a PCIe retrain): work finishing inside the window
/// slides to its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// When the stall begins.
    pub start: Nanos,
    /// How long the device stays frozen.
    pub duration: Nanos,
}

impl StallWindow {
    /// First instant after the stall.
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }
}

/// A sustained throttle episode (thermal or power capping): service time
/// spent inside the episode is stretched by `slowdown`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleEpisode {
    /// When throttling begins.
    pub start: Nanos,
    /// How long it lasts.
    pub duration: Nanos,
    /// Service-time multiplier (> 1.0) applied to work inside the episode.
    pub slowdown: f64,
}

impl ThrottleEpisode {
    /// First instant after the episode.
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }
}

/// A reproducible schedule of faults, applied by [`FaultySut`].
///
/// The default plan (any seed, no faults armed) is inert: the decorator
/// forwards reactions untouched and [`FaultPlan::is_armed`] is false.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-query probability that the query resolves as an error.
    pub transient_error_prob: f64,
    /// Per-query probability of a latency spike.
    pub latency_spike_prob: f64,
    /// Service-duration multiplier for spiked queries (> 1.0).
    pub latency_spike_factor: f64,
    /// Scheduled full-pause windows.
    pub stalls: Vec<StallWindow>,
    /// Scheduled sustained-throttle episodes.
    pub throttles: Vec<ThrottleEpisode>,
    /// The instant the device dies: queries issued at or after this time
    /// are never answered, and in-flight work never completes.
    pub death_at: Option<Nanos>,
}

impl FaultPlan {
    /// An inert plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_error_prob: 0.0,
            latency_spike_prob: 0.0,
            latency_spike_factor: 1.0,
            stalls: Vec::new(),
            throttles: Vec::new(),
            death_at: None,
        }
    }

    /// Arms transient query errors with per-query probability `p`.
    pub fn with_transient_errors(mut self, p: f64) -> Self {
        self.transient_error_prob = p;
        self
    }

    /// Arms latency spikes: with probability `p` a query's service
    /// duration stretches by `factor`.
    pub fn with_latency_spikes(mut self, p: f64, factor: f64) -> Self {
        self.latency_spike_prob = p;
        self.latency_spike_factor = factor;
        self
    }

    /// Adds a full-pause window.
    pub fn with_stall(mut self, start: Nanos, duration: Nanos) -> Self {
        self.stalls.push(StallWindow { start, duration });
        self
    }

    /// Adds a sustained throttle episode.
    pub fn with_throttle(mut self, start: Nanos, duration: Nanos, slowdown: f64) -> Self {
        self.throttles.push(ThrottleEpisode {
            start,
            duration,
            slowdown,
        });
        self
    }

    /// Arms hard device death at `t`.
    pub fn with_death_at(mut self, t: Nanos) -> Self {
        self.death_at = Some(t);
        self
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any fault is armed. An unarmed plan makes [`FaultySut`]
    /// a pass-through.
    pub fn is_armed(&self) -> bool {
        self.transient_error_prob > 0.0
            || self.latency_spike_prob > 0.0
            || !self.stalls.is_empty()
            || !self.throttles.is_empty()
            || self.death_at.is_some()
    }

    /// Order-independent per-query RNG: a hash of the plan seed and the
    /// query id, so the verdict for query N is identical however queries
    /// interleave.
    fn query_rng(&self, query_id: u64) -> Rng64 {
        Rng64::new(splitmix64(self.seed ^ splitmix64(query_id)))
    }
}

/// One round of splitmix64 — enough avalanche to decorrelate adjacent
/// query ids before they seed [`Rng64`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Decorator injecting a [`FaultPlan`] into any inner [`SimSut`].
///
/// The decorator rewrites the *reaction stream*: completions returned by
/// the inner engine (from `on_query` or a later batched `on_wakeup`) are
/// errored, delayed, stretched, or dropped per the plan; the inner engine
/// never knows. Injected faults are emitted as
/// [`TraceEvent::FaultInjected`] records and `fault_*` counters when a
/// sink/registry is attached.
pub struct FaultySut<S> {
    inner: S,
    plan: FaultPlan,
    name: String,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<S: SimSut> FaultySut<S> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let name = format!("{}+faults", inner.name());
        Self {
            inner,
            plan,
            name,
            trace: None,
            metrics: None,
        }
    }

    /// Attaches a trace sink for [`TraceEvent::FaultInjected`] records.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attaches a metrics registry for `fault_*` counters.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn note(&self, at: Nanos, query_id: u64, fault: &str) {
        if let Some(m) = self.metrics.as_deref() {
            m.incr("faults_injected", 1);
            m.incr(&format!("fault_{fault}"), 1);
        }
        if let Some(sink) = self.trace.as_deref() {
            if sink.enabled() {
                sink.record(
                    at.as_nanos(),
                    &TraceEvent::FaultInjected {
                        query_id,
                        fault: fault.to_string(),
                    },
                );
            }
        }
    }

    /// Applies the plan to one reaction. `now` is the event time at which
    /// the inner engine produced it.
    fn mangle(&mut self, now: Nanos, mut reaction: SutReaction) -> SutReaction {
        let mut kept = Vec::with_capacity(reaction.completions.len());
        for mut completion in reaction.completions.drain(..) {
            // Per-query verdicts, in a fixed draw order so each fault's
            // decision stream is independent of the others' probabilities.
            let mut rng = self.plan.query_rng(completion.query_id);
            let roll_error = rng.next_f64();
            let roll_spike = rng.next_f64();
            if self.plan.latency_spike_prob > 0.0 && roll_spike < self.plan.latency_spike_prob {
                let service = completion.finished_at.saturating_sub(now);
                let stretched =
                    Nanos::from_secs_f64(service.as_secs_f64() * self.plan.latency_spike_factor);
                completion.finished_at = now + stretched;
                self.note(now, completion.query_id, "latency_spike");
            }
            // Sustained throttling stretches the part of the service
            // interval that overlaps each episode.
            for episode in &self.plan.throttles {
                let overlap_start = now.max(episode.start);
                let overlap_end = completion.finished_at.min(episode.end());
                if overlap_end > overlap_start {
                    let inside = overlap_end.saturating_sub(overlap_start);
                    let extra =
                        Nanos::from_secs_f64(inside.as_secs_f64() * (episode.slowdown - 1.0));
                    if extra > Nanos::ZERO {
                        completion.finished_at += extra;
                        self.note(now, completion.query_id, "throttle");
                    }
                }
            }
            // A stall freezes the device: anything finishing inside the
            // window is delivered at its end. Applied after throttling so
            // a throttle-deferred finish can still land in a stall.
            for stall in &self.plan.stalls {
                if completion.finished_at >= stall.start && completion.finished_at < stall.end() {
                    completion.finished_at = stall.end();
                    self.note(now, completion.query_id, "stall");
                }
            }
            if self.plan.transient_error_prob > 0.0 && roll_error < self.plan.transient_error_prob {
                completion.error = true;
                self.note(now, completion.query_id, "transient_error");
            }
            // Death: completions that would land at or after the death
            // instant are never delivered.
            if let Some(death) = self.plan.death_at {
                if completion.finished_at >= death {
                    self.note(now, completion.query_id, "death");
                    continue;
                }
            }
            kept.push(completion);
        }
        reaction.completions = kept;
        if let (Some(death), Some(at)) = (self.plan.death_at, reaction.wakeup_at) {
            if at >= death {
                reaction.wakeup_at = None;
            }
        }
        reaction
    }
}

impl<S: SimSut> SimSut for FaultySut<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        if !self.plan.is_armed() {
            return self.inner.on_query(now, query);
        }
        if let Some(death) = self.plan.death_at {
            if now >= death {
                // The device is gone: the query is accepted by the
                // harness but never answered.
                self.note(now, query.id, "death");
                return SutReaction::none();
            }
        }
        let reaction = self.inner.on_query(now, query);
        self.mangle(now, reaction)
    }

    fn on_wakeup(&mut self, now: Nanos) -> SutReaction {
        if !self.plan.is_armed() {
            return self.inner.on_wakeup(now);
        }
        if let Some(death) = self.plan.death_at {
            if now >= death {
                return SutReaction::none();
            }
        }
        let reaction = self.inner.on_wakeup(now);
        self.mangle(now, reaction)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

impl<S: SimSut> std::fmt::Debug for FaultySut<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultySut")
            .field("name", &self.name)
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// Convenience: wraps a completion in an errored copy (used by resilience
/// policies that synthesize failures, e.g. load shedding).
pub fn errored_copy(completion: &QueryCompletion, finished_at: Nanos) -> QueryCompletion {
    let mut c = completion.clone();
    c.error = true;
    c.finished_at = finished_at;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_loadgen::config::TestSettings;
    use mlperf_loadgen::des::run_simulated;
    use mlperf_loadgen::qsl::MemoryQsl;
    use mlperf_loadgen::sut::FixedLatencySut;
    use mlperf_loadgen::validate::ValidityIssue;

    fn server_settings() -> TestSettings {
        TestSettings::server(500.0, Nanos::from_millis(10))
            .with_min_query_count(200)
            .with_min_duration(Nanos::from_millis(50))
    }

    fn inner() -> FixedLatencySut {
        FixedLatencySut::new("fixed", Nanos::from_micros(300))
    }

    #[test]
    fn unarmed_plan_is_a_pass_through() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let baseline = run_simulated(&server_settings(), &mut qsl, &mut inner()).unwrap();
        let mut faulty = FaultySut::new(inner(), FaultPlan::new(42));
        assert!(!faulty.plan().is_armed());
        let out = run_simulated(&server_settings(), &mut qsl, &mut faulty).unwrap();
        // Identical apart from the decorator suffix on the SUT name.
        let strip = |line: String| line.split_once(" | ").expect("name field").1.to_string();
        assert_eq!(
            strip(baseline.result.summary_line()),
            strip(out.result.summary_line()),
            "inert plan must not change the run"
        );
    }

    #[test]
    fn transient_errors_invalidate_past_threshold() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let plan = FaultPlan::new(7).with_transient_errors(0.10);
        let mut faulty = FaultySut::new(inner(), plan);
        let out = run_simulated(&server_settings(), &mut qsl, &mut faulty).unwrap();
        assert!(out.result.error_count > 0, "some queries must error");
        assert!(out
            .result
            .validity
            .iter()
            .any(|i| matches!(i, ValidityIssue::ErrorFractionExceeded { .. })));
    }

    #[test]
    fn fault_decisions_are_order_independent() {
        let plan = FaultPlan::new(99).with_transient_errors(0.2);
        let verdicts: Vec<bool> = (0..64)
            .map(|id| plan.query_rng(id).next_f64() < 0.2)
            .collect();
        let reversed: Vec<bool> = (0..64)
            .rev()
            .map(|id| plan.query_rng(id).next_f64() < 0.2)
            .collect();
        let mut reversed = reversed;
        reversed.reverse();
        assert_eq!(verdicts, reversed);
        assert!(verdicts.iter().any(|v| *v) && verdicts.iter().any(|v| !*v));
    }

    #[test]
    fn stall_slides_completions_to_window_end() {
        let plan = FaultPlan::new(1).with_stall(Nanos::from_millis(1), Nanos::from_millis(5));
        let mut faulty = FaultySut::new(inner(), plan);
        let q = Query {
            id: 3,
            samples: vec![mlperf_loadgen::query::QuerySample { id: 30, index: 0 }],
            scheduled_at: Nanos::from_millis(1),
            tenant: 0,
        };
        let r = faulty.on_query(Nanos::from_millis(1), &q);
        assert_eq!(r.completions.len(), 1);
        assert_eq!(
            r.completions[0].finished_at,
            Nanos::from_millis(6),
            "finish inside the stall window slides to its end"
        );
    }

    #[test]
    fn throttle_stretches_overlapping_service() {
        // 300 us of service fully inside a 3x-slowdown episode gains 600 us.
        let plan = FaultPlan::new(1).with_throttle(Nanos::ZERO, Nanos::from_secs(1), 3.0);
        let mut faulty = FaultySut::new(inner(), plan);
        let q = Query {
            id: 5,
            samples: vec![mlperf_loadgen::query::QuerySample { id: 50, index: 0 }],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let r = faulty.on_query(Nanos::ZERO, &q);
        assert_eq!(r.completions[0].finished_at, Nanos::from_micros(900));
    }

    #[test]
    fn death_stops_all_responses() {
        let mut qsl = MemoryQsl::new("q", 16, 16);
        let plan = FaultPlan::new(11).with_death_at(Nanos::from_millis(20));
        let mut faulty = FaultySut::new(inner(), plan);
        let out = run_simulated(&server_settings(), &mut qsl, &mut faulty).unwrap();
        assert!(!out.result.is_valid());
        assert!(out
            .result
            .validity
            .iter()
            .any(|i| matches!(i, ValidityIssue::IncompleteQueries { .. })));
    }

    #[test]
    fn faults_emit_trace_events_and_counters() {
        use mlperf_trace::RingBufferSink;
        let sink = Arc::new(RingBufferSink::unbounded());
        let metrics = Arc::new(MetricsRegistry::new());
        let plan = FaultPlan::new(3).with_transient_errors(1.0);
        let mut faulty = FaultySut::new(inner(), plan)
            .with_trace(sink.clone())
            .with_metrics(metrics.clone());
        let q = Query {
            id: 0,
            samples: vec![mlperf_loadgen::query::QuerySample { id: 1, index: 0 }],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        };
        let r = faulty.on_query(Nanos::ZERO, &q);
        assert!(r.completions[0].error);
        let records = sink.snapshot();
        assert!(records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::FaultInjected { fault, .. } if fault == "transient_error"
        )));
        assert_eq!(metrics.snapshot().counter("faults_injected"), 1);
    }

    /// The headline reproducibility contract: two runs with the same fault
    /// seed produce *byte-identical* detail logs — every issue, completion,
    /// error, and injected fault lands at the same nanosecond with the same
    /// payload, so a degraded run can be replayed exactly from its seed.
    #[test]
    fn same_seed_replays_to_byte_identical_detail_logs() {
        use mlperf_loadgen::des::run_simulated_traced;
        use mlperf_trace::{RingBufferSink, ToJson};

        let detail_log = || {
            let plan = FaultPlan::new(0xD15EA5E)
                .with_transient_errors(0.15)
                .with_latency_spikes(0.05, 10.0)
                .with_stall(Nanos::from_millis(10), Nanos::from_millis(5));
            let sink = Arc::new(RingBufferSink::unbounded());
            let mut faulty = FaultySut::new(inner(), plan).with_trace(sink.clone());
            let mut qsl = MemoryQsl::new("q", 16, 16);
            run_simulated_traced(&server_settings(), &mut qsl, &mut faulty, &*sink).unwrap();
            let mut log = String::new();
            for record in sink.snapshot() {
                log.push_str(&record.to_json_string());
                log.push('\n');
            }
            log
        };

        let first = detail_log();
        let second = detail_log();
        assert!(
            first.lines().any(|l| l.contains("FaultInjected")),
            "armed plan must inject observable faults:\n{}",
            first.lines().take(5).collect::<Vec<_>>().join("\n")
        );
        assert_eq!(
            first, second,
            "same fault seed must replay to a byte-identical detail log"
        );
    }
}

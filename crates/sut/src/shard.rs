//! Fleet-scale sharded serving.
//!
//! The paper's LoadGen drove 30+ heterogeneous systems spanning four
//! orders of magnitude of throughput; [`ShardedSut`] is the serving-side
//! composition that makes one scenario's traffic fan out across such a
//! fleet. It is a [`RealtimeSut`] *router*: every shard is itself a
//! `RealtimeSut` (a local engine, or a `RemoteSut` wire connection), so
//! the decorator graph composes freely — `Faulty` under a shard,
//! `Sharded` over `Remote`, and so on.
//!
//! Three concerns live here:
//!
//! * **Balancing** — a pluggable [`BalancePolicy`] picks the shard for
//!   each query: round-robin, least-outstanding, latency-EWMA, or
//!   weighted by preset throughput. Every policy is a pure function of
//!   the call sequence, so a sequentially driven run yields a
//!   byte-identical routing trace.
//! * **Health** — each shard walks the state machine
//!   `Up → Suspect → Down → Draining → Up`. Failures debounce through
//!   `Suspect` before a shard is declared `Down`; an optional liveness
//!   probe (wire heartbeat / clock-probe health) can both fast-fail a
//!   shard and readmit it. A rejoined shard `Draining`s back under a
//!   warm-up cap before it is trusted as `Up`.
//! * **Failover** — when a shard answers [`IssueOutcome::Errored`] or
//!   [`IssueOutcome::Vanished`], the router re-routes the query to the
//!   next eligible shard, at most once per shard. Wire clients swallow
//!   late completions of failed attempts and the daemon journal answers
//!   replays exactly once, so the merged detail log stays exactly-once
//!   (TEST06). If every shard fails, the *last* structural outcome is
//!   returned — the run degrades to `ErrorFractionExceeded` /
//!   `IncompleteQueries`, never a hang.
//!
//! Every routing decision and health transition is emitted as a
//! [`TraceEvent::ShardEvent`] plus `shard_*` counters, so `analyze` can
//! attribute per-shard latency and name the failover window.

use mlperf_loadgen::query::{Query, SampleCompletion};
use mlperf_loadgen::sut::{IssueOutcome, RealtimeSut};
use mlperf_trace::{MetricsRegistry, TraceEvent, TraceSink};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How the router picks a shard for each query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Strict rotation over the eligible shards.
    RoundRobin,
    /// The eligible shard with the fewest queries in flight (ties go to
    /// the lowest shard index).
    LeastOutstanding,
    /// The eligible shard with the lowest exponentially weighted moving
    /// average service latency; unmeasured shards are preferred.
    LatencyEwma,
    /// The eligible shard with the lowest routed-count-to-weight ratio,
    /// so long-run traffic shares converge to the configured weights
    /// (preset peak throughput).
    WeightedThroughput,
}

impl BalancePolicy {
    /// Stable snake_case label used in trace rows and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BalancePolicy::RoundRobin => "round_robin",
            BalancePolicy::LeastOutstanding => "least_outstanding",
            BalancePolicy::LatencyEwma => "latency_ewma",
            BalancePolicy::WeightedThroughput => "weighted",
        }
    }
}

/// Per-shard health as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Up,
    /// At least one recent failure; still routable while the failure
    /// count debounces toward [`ShardConfig::down_after`].
    Suspect,
    /// Declared dead: receives no traffic until a probe readmits it.
    Down,
    /// Readmitted after `Down`; takes at most
    /// [`ShardConfig::warmup_cap`] queries in flight until
    /// [`ShardConfig::warmup_queries`] successes promote it to `Up`.
    Draining,
}

impl ShardHealth {
    /// Stable snake_case label used in trace rows and stats tables.
    pub fn label(&self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Down => "down",
            ShardHealth::Draining => "draining",
        }
    }
}

/// Health state machine tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Consecutive failures after which a `Suspect` shard is declared
    /// `Down` (the debounce depth; 1 = first failure past `Suspect`).
    pub down_after: u32,
    /// Maximum queries in flight on a `Draining` shard.
    pub warmup_cap: usize,
    /// Successful queries a `Draining` shard must serve before it is
    /// promoted back to `Up`.
    pub warmup_queries: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            down_after: 2,
            warmup_cap: 1,
            warmup_queries: 3,
        }
    }
}

/// A liveness probe: `true` means the endpoint looks reachable. Wire
/// shards use `RemoteSut::is_connected` (heartbeat/clock-probe driven).
pub type ShardProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// One endpoint of the fleet, as handed to [`ShardedSut::with_endpoint`].
#[derive(Clone)]
pub struct ShardEndpoint {
    label: String,
    sut: Arc<dyn RealtimeSut>,
    weight: f64,
    probe: Option<ShardProbe>,
}

impl ShardEndpoint {
    /// An endpoint with weight 1 and no liveness probe.
    pub fn new(label: &str, sut: Arc<dyn RealtimeSut>) -> Self {
        Self {
            label: label.to_string(),
            sut,
            weight: 1.0,
            probe: None,
        }
    }

    /// Sets the throughput weight (e.g. the preset's `peak_gops ×
    /// units`); only ratios matter. Non-positive weights are clamped.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = if weight > 0.0 {
            weight
        } else {
            f64::MIN_POSITIVE
        };
        self
    }

    /// Attaches a liveness probe consulted on every routing decision.
    pub fn with_probe(mut self, probe: ShardProbe) -> Self {
        self.probe = Some(probe);
        self
    }
}

impl std::fmt::Debug for ShardEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardEndpoint")
            .field("label", &self.label)
            .field("weight", &self.weight)
            .field("probed", &self.probe.is_some())
            .finish_non_exhaustive()
    }
}

/// Mutable health state, all under one lock per shard.
#[derive(Debug)]
struct ShardState {
    health: ShardHealth,
    /// Consecutive failures since the last success.
    consecutive_failures: u32,
    /// Successes served while `Draining`.
    drained: u64,
}

struct Shard {
    label: String,
    sut: Arc<dyn RealtimeSut>,
    weight: f64,
    probe: Option<ShardProbe>,
    state: Mutex<ShardState>,
    /// Queries currently in flight on this shard.
    outstanding: AtomicUsize,
    /// EWMA of service latency in nanoseconds (0 = unmeasured).
    ewma_ns: AtomicU64,
    /// Queries ever routed here (attempts, not successes).
    routed: AtomicU64,
}

/// A fleet snapshot row, for stats tables and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatus {
    /// The shard's label.
    pub label: String,
    /// Current health.
    pub health: ShardHealth,
    /// Queries in flight right now.
    pub outstanding: usize,
    /// Queries ever routed to this shard.
    pub routed: u64,
    /// EWMA service latency in nanoseconds (0 = unmeasured).
    pub ewma_ns: u64,
}

/// A [`RealtimeSut`] router fanning one scenario's traffic across N
/// shards under a [`BalancePolicy`], with health tracking and failover.
pub struct ShardedSut {
    name: String,
    policy: BalancePolicy,
    shards: Vec<Shard>,
    config: ShardConfig,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    origin: Instant,
    rr: AtomicUsize,
}

impl ShardedSut {
    /// An empty router; add endpoints with [`with_endpoint`].
    ///
    /// [`with_endpoint`]: ShardedSut::with_endpoint
    pub fn new(name: &str, policy: BalancePolicy) -> Self {
        Self {
            name: name.to_string(),
            policy,
            shards: Vec::new(),
            config: ShardConfig::default(),
            sink: None,
            metrics: None,
            origin: Instant::now(),
            rr: AtomicUsize::new(0),
        }
    }

    /// Adds one shard to the fleet.
    pub fn with_endpoint(mut self, endpoint: ShardEndpoint) -> Self {
        self.shards.push(Shard {
            label: endpoint.label,
            sut: endpoint.sut,
            weight: endpoint.weight,
            probe: endpoint.probe,
            state: Mutex::new(ShardState {
                health: ShardHealth::Up,
                consecutive_failures: 0,
                drained: 0,
            }),
            outstanding: AtomicUsize::new(0),
            ewma_ns: AtomicU64::new(0),
            routed: AtomicU64::new(0),
        });
        self
    }

    /// Overrides the health state machine tuning.
    pub fn with_config(mut self, config: ShardConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a trace sink for [`TraceEvent::ShardEvent`] rows.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a metrics registry for `shard_*` counters.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Pins the trace clock origin (pass the wire client's
    /// `clock_origin()` so shard rows share the run's axis).
    pub fn with_origin(mut self, origin: Instant) -> Self {
        self.origin = origin;
        self
    }

    /// The balancing policy in force.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A point-in-time snapshot of every shard, in endpoint order.
    pub fn status(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .map(|s| ShardStatus {
                label: s.label.clone(),
                health: s.state.lock().expect("shard lock").health,
                outstanding: s.outstanding.load(Ordering::SeqCst),
                routed: s.routed.load(Ordering::SeqCst),
                ewma_ns: s.ewma_ns.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Current health of the labelled shard, if it exists.
    pub fn health_of(&self, label: &str) -> Option<ShardHealth> {
        self.shards
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.state.lock().expect("shard lock").health)
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn emit(&self, shard: &str, kind: &str, query_id: u64, detail: &str) {
        if let Some(m) = self.metrics.as_deref() {
            m.incr(&format!("shard_{kind}"), 1);
            m.incr(&format!("shard_{kind}_{shard}"), 1);
        }
        if let Some(sink) = self.sink.as_deref() {
            if sink.enabled() {
                sink.record(
                    self.now_ns(),
                    &TraceEvent::ShardEvent {
                        shard: shard.to_string(),
                        kind: kind.to_string(),
                        query_id,
                        detail: detail.to_string(),
                    },
                );
            }
        }
    }

    /// Applies the liveness probes: a failing probe downs a live shard
    /// immediately (no debounce — the transport itself says dead), a
    /// passing probe readmits a `Down` shard into `Draining`.
    fn refresh_probes(&self) {
        for shard in &self.shards {
            let Some(probe) = shard.probe.as_ref() else {
                continue;
            };
            let alive = probe();
            let mut state = shard.state.lock().expect("shard lock");
            match (state.health, alive) {
                (ShardHealth::Up | ShardHealth::Suspect, false) => {
                    state.health = ShardHealth::Down;
                    state.consecutive_failures = 0;
                    drop(state);
                    self.emit(&shard.label, "down", 0, "probe failed");
                }
                (ShardHealth::Draining, false) => {
                    state.health = ShardHealth::Down;
                    state.drained = 0;
                    drop(state);
                    self.emit(&shard.label, "down", 0, "probe failed while draining");
                }
                (ShardHealth::Down, true) => {
                    state.health = ShardHealth::Draining;
                    state.drained = 0;
                    drop(state);
                    self.emit(&shard.label, "rejoin", 0, "probe recovered");
                }
                _ => {}
            }
        }
    }

    /// Whether shard `i` may take one more query right now.
    fn eligible(&self, i: usize) -> bool {
        let shard = &self.shards[i];
        let state = shard.state.lock().expect("shard lock");
        match state.health {
            ShardHealth::Up | ShardHealth::Suspect => true,
            ShardHealth::Down => false,
            ShardHealth::Draining => {
                shard.outstanding.load(Ordering::SeqCst) < self.config.warmup_cap
            }
        }
    }

    /// Picks the next shard for a query, skipping indices in `tried`.
    /// Falls back to any non-`Down` shard (ignoring the drain cap) so a
    /// degraded fleet still routes rather than stalls; `None` only when
    /// every untried shard is `Down`.
    fn pick(&self, tried: &[usize]) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.shards.len())
            .filter(|i| !tried.contains(i) && self.eligible(*i))
            .collect();
        let candidates = if candidates.is_empty() {
            (0..self.shards.len())
                .filter(|i| {
                    !tried.contains(i)
                        && self.shards[*i].state.lock().expect("shard lock").health
                            != ShardHealth::Down
                })
                .collect()
        } else {
            candidates
        };
        if candidates.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            BalancePolicy::RoundRobin => {
                let n = self.rr.fetch_add(1, Ordering::SeqCst);
                candidates[n % candidates.len()]
            }
            BalancePolicy::LeastOutstanding => *candidates
                .iter()
                .min_by_key(|i| (self.shards[**i].outstanding.load(Ordering::SeqCst), **i))
                .expect("non-empty"),
            BalancePolicy::LatencyEwma => *candidates
                .iter()
                .min_by_key(|i| (self.shards[**i].ewma_ns.load(Ordering::SeqCst), **i))
                .expect("non-empty"),
            BalancePolicy::WeightedThroughput => *candidates
                .iter()
                .min_by(|a, b| {
                    let ka = self.shards[**a].routed.load(Ordering::SeqCst) as f64
                        / self.shards[**a].weight;
                    let kb = self.shards[**b].routed.load(Ordering::SeqCst) as f64
                        / self.shards[**b].weight;
                    ka.partial_cmp(&kb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                })
                .expect("non-empty"),
        };
        Some(chosen)
    }

    /// Records a successful attempt: failure streak resets, `Suspect`
    /// recovers to `Up`, `Draining` counts toward its warm-up promotion.
    fn note_success(&self, i: usize, elapsed_ns: u64) {
        let shard = &self.shards[i];
        // EWMA with alpha = 1/8; first sample seeds the average.
        let _ = shard
            .ewma_ns
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |old| {
                Some(if old == 0 {
                    elapsed_ns
                } else {
                    old - old / 8 + elapsed_ns / 8
                })
            });
        let mut state = shard.state.lock().expect("shard lock");
        state.consecutive_failures = 0;
        match state.health {
            ShardHealth::Suspect => {
                state.health = ShardHealth::Up;
                drop(state);
                self.emit(&shard.label, "up", 0, "recovered");
            }
            ShardHealth::Draining => {
                state.drained += 1;
                if state.drained >= self.config.warmup_queries {
                    let served = state.drained;
                    state.health = ShardHealth::Up;
                    state.drained = 0;
                    drop(state);
                    self.emit(
                        &shard.label,
                        "drained",
                        0,
                        &format!("warmed up after {served}"),
                    );
                }
            }
            _ => {}
        }
    }

    /// Records a failed attempt, debouncing `Up → Suspect → Down`.
    fn note_failure(&self, i: usize, query_id: u64, why: &str) {
        let shard = &self.shards[i];
        let mut state = shard.state.lock().expect("shard lock");
        state.consecutive_failures += 1;
        let failures = state.consecutive_failures;
        match state.health {
            ShardHealth::Up => {
                state.health = ShardHealth::Suspect;
                drop(state);
                self.emit(&shard.label, "suspect", query_id, why);
            }
            ShardHealth::Suspect if failures > self.config.down_after => {
                state.health = ShardHealth::Down;
                state.consecutive_failures = 0;
                drop(state);
                self.emit(&shard.label, "down", query_id, why);
            }
            ShardHealth::Draining => {
                state.health = ShardHealth::Down;
                state.drained = 0;
                drop(state);
                self.emit(&shard.label, "down", query_id, "failed while draining");
            }
            _ => {}
        }
    }
}

impl RealtimeSut for ShardedSut {
    fn name(&self) -> &str {
        &self.name
    }

    fn issue(&self, query: &Query) -> Vec<SampleCompletion> {
        match self.issue_outcome(query) {
            IssueOutcome::Completed(samples) => samples,
            IssueOutcome::Errored | IssueOutcome::Vanished => Vec::new(),
        }
    }

    fn issue_outcome(&self, query: &Query) -> IssueOutcome {
        self.refresh_probes();
        let mut tried: Vec<usize> = Vec::new();
        let mut last_failure: Option<IssueOutcome> = None;
        loop {
            let Some(i) = self.pick(&tried) else {
                // Every shard tried or Down. The last structural outcome
                // (or Vanished for an all-Down fleet) surfaces so the run
                // degrades to a verdict instead of hanging.
                return last_failure.unwrap_or(IssueOutcome::Vanished);
            };
            let shard = &self.shards[i];
            shard.routed.fetch_add(1, Ordering::SeqCst);
            shard.outstanding.fetch_add(1, Ordering::SeqCst);
            self.emit(&shard.label, "route", query.id, self.policy.label());
            let started = Instant::now();
            let outcome = shard.sut.issue_outcome(query);
            let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shard.outstanding.fetch_sub(1, Ordering::SeqCst);
            match outcome {
                IssueOutcome::Completed(samples) => {
                    self.note_success(i, elapsed_ns);
                    return IssueOutcome::Completed(samples);
                }
                IssueOutcome::Errored => {
                    self.note_failure(i, query.id, "errored");
                    self.emit(&shard.label, "failover", query.id, "errored; rerouting");
                    last_failure = Some(IssueOutcome::Errored);
                }
                IssueOutcome::Vanished => {
                    self.note_failure(i, query.id, "vanished");
                    self.emit(&shard.label, "failover", query.id, "vanished; rerouting");
                    last_failure = Some(IssueOutcome::Vanished);
                }
            }
            tried.push(i);
        }
    }
}

impl std::fmt::Debug for ShardedSut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSut")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_loadgen::query::{QuerySample, ResponsePayload};
    use mlperf_loadgen::time::Nanos;
    use mlperf_trace::{RingBufferSink, ToJson};
    use std::sync::atomic::AtomicBool;

    fn query(id: u64) -> Query {
        Query {
            id,
            samples: vec![QuerySample {
                id: id * 100,
                index: 0,
            }],
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        }
    }

    /// Completes instantly; optionally fails while `broken` is set.
    struct ToggleSut {
        name: String,
        broken: Arc<AtomicBool>,
        vanish: bool,
    }

    impl ToggleSut {
        fn healthy(name: &str) -> Arc<Self> {
            Arc::new(Self {
                name: name.to_string(),
                broken: Arc::new(AtomicBool::new(false)),
                vanish: false,
            })
        }

        fn switchable(name: &str, vanish: bool) -> (Arc<Self>, Arc<AtomicBool>) {
            let broken = Arc::new(AtomicBool::new(false));
            (
                Arc::new(Self {
                    name: name.to_string(),
                    broken: broken.clone(),
                    vanish,
                }),
                broken,
            )
        }
    }

    impl RealtimeSut for ToggleSut {
        fn name(&self) -> &str {
            &self.name
        }

        fn issue(&self, query: &Query) -> Vec<SampleCompletion> {
            match self.issue_outcome(query) {
                IssueOutcome::Completed(s) => s,
                _ => Vec::new(),
            }
        }

        fn issue_outcome(&self, query: &Query) -> IssueOutcome {
            if self.broken.load(Ordering::SeqCst) {
                if self.vanish {
                    return IssueOutcome::Vanished;
                }
                return IssueOutcome::Errored;
            }
            IssueOutcome::Completed(
                query
                    .samples
                    .iter()
                    .map(|s| SampleCompletion {
                        sample_id: s.id,
                        payload: ResponsePayload::Empty,
                    })
                    .collect(),
            )
        }
    }

    fn fleet(policy: BalancePolicy, sink: Arc<RingBufferSink>) -> ShardedSut {
        ShardedSut::new("fleet", policy)
            .with_endpoint(ShardEndpoint::new("shard-0", ToggleSut::healthy("a")).with_weight(4.0))
            .with_endpoint(ShardEndpoint::new("shard-1", ToggleSut::healthy("b")).with_weight(2.0))
            .with_endpoint(ShardEndpoint::new("shard-2", ToggleSut::healthy("c")).with_weight(1.0))
            .with_sink(sink)
    }

    /// The routing trace with timestamps masked: deterministic policies
    /// must reproduce it byte-for-byte across runs.
    fn routing_trace(sink: &RingBufferSink) -> String {
        sink.snapshot()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ShardEvent { .. }))
            .map(|r| r.event.to_json_value().to_compact())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn routing_is_deterministic_per_policy() {
        for policy in [
            BalancePolicy::RoundRobin,
            BalancePolicy::LeastOutstanding,
            BalancePolicy::WeightedThroughput,
        ] {
            let traces: Vec<String> = (0..2)
                .map(|_| {
                    let sink = Arc::new(RingBufferSink::unbounded());
                    let sut = fleet(policy, sink.clone());
                    for id in 1..=40 {
                        assert!(matches!(
                            sut.issue_outcome(&query(id)),
                            IssueOutcome::Completed(_)
                        ));
                    }
                    routing_trace(&sink)
                })
                .collect();
            assert_eq!(
                traces[0], traces[1],
                "{:?} routing trace must be byte-identical",
                policy
            );
            assert!(!traces[0].is_empty());
        }
    }

    #[test]
    fn weighted_policy_converges_to_the_weight_ratios() {
        let sink = Arc::new(RingBufferSink::unbounded());
        let sut = fleet(BalancePolicy::WeightedThroughput, sink);
        for id in 1..=70 {
            sut.issue_outcome(&query(id));
        }
        let status = sut.status();
        // Weights 4:2:1 over 70 queries → 40/20/10.
        assert_eq!(status[0].routed, 40, "{status:?}");
        assert_eq!(status[1].routed, 20, "{status:?}");
        assert_eq!(status[2].routed, 10, "{status:?}");
    }

    #[test]
    fn round_robin_rotates_evenly() {
        let sink = Arc::new(RingBufferSink::unbounded());
        let sut = fleet(BalancePolicy::RoundRobin, sink);
        for id in 1..=30 {
            sut.issue_outcome(&query(id));
        }
        for s in sut.status() {
            assert_eq!(s.routed, 10, "{:?}", sut.status());
        }
    }

    #[test]
    fn failures_debounce_through_suspect_before_down() {
        let sink = Arc::new(RingBufferSink::unbounded());
        let (bad, broken) = ToggleSut::switchable("bad", false);
        let sut = ShardedSut::new("fleet", BalancePolicy::LeastOutstanding)
            .with_endpoint(ShardEndpoint::new("shard-0", bad))
            .with_endpoint(ShardEndpoint::new("shard-1", ToggleSut::healthy("ok")))
            .with_config(ShardConfig {
                down_after: 2,
                ..ShardConfig::default()
            })
            .with_sink(sink.clone());
        broken.store(true, Ordering::SeqCst);
        // Least-outstanding ties go to shard-0, which fails over to
        // shard-1 each time; the run still completes every query.
        assert!(matches!(
            sut.issue_outcome(&query(1)),
            IssueOutcome::Completed(_)
        ));
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Suspect));
        assert!(matches!(
            sut.issue_outcome(&query(2)),
            IssueOutcome::Completed(_)
        ));
        assert_eq!(
            sut.health_of("shard-0"),
            Some(ShardHealth::Suspect),
            "one failure past Suspect must not down the shard yet"
        );
        assert!(matches!(
            sut.issue_outcome(&query(3)),
            IssueOutcome::Completed(_)
        ));
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Down));
        // Down shards receive no further traffic.
        let before = sut.status()[0].routed;
        sut.issue_outcome(&query(4));
        assert_eq!(sut.status()[0].routed, before);
        let kinds: Vec<String> = sink
            .snapshot()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::ShardEvent { shard, kind, .. } if shard == "shard-0" => {
                    Some(kind.clone())
                }
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&"suspect".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"down".to_string()), "{kinds:?}");
    }

    #[test]
    fn suspect_recovers_to_up_on_success() {
        let (flaky, broken) = ToggleSut::switchable("flaky", false);
        let sut = ShardedSut::new("fleet", BalancePolicy::RoundRobin)
            .with_endpoint(ShardEndpoint::new("shard-0", flaky))
            .with_endpoint(ShardEndpoint::new("shard-1", ToggleSut::healthy("ok")));
        broken.store(true, Ordering::SeqCst);
        sut.issue_outcome(&query(1));
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Suspect));
        broken.store(false, Ordering::SeqCst);
        // Round-robin returns to shard-0 soon; a success clears Suspect.
        for id in 2..=4 {
            sut.issue_outcome(&query(id));
        }
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Up));
    }

    #[test]
    fn probe_downs_and_rejoins_with_warmup_cap() {
        let sink = Arc::new(RingBufferSink::unbounded());
        let alive = Arc::new(AtomicBool::new(true));
        let probe_alive = alive.clone();
        let sut = ShardedSut::new("fleet", BalancePolicy::RoundRobin)
            .with_endpoint(
                ShardEndpoint::new("shard-0", ToggleSut::healthy("a"))
                    .with_probe(Arc::new(move || probe_alive.load(Ordering::SeqCst))),
            )
            .with_endpoint(ShardEndpoint::new("shard-1", ToggleSut::healthy("b")))
            .with_config(ShardConfig {
                down_after: 2,
                warmup_cap: 1,
                warmup_queries: 2,
            })
            .with_sink(sink.clone());
        // Probe failure downs the shard without any query failing.
        alive.store(false, Ordering::SeqCst);
        sut.issue_outcome(&query(1));
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Down));
        // Probe recovery readmits it as Draining...
        alive.store(true, Ordering::SeqCst);
        sut.issue_outcome(&query(2));
        // ...and after warmup_queries successes it is Up again. (The
        // first post-rejoin query may land on either shard; drive a few.)
        let mut seen_draining = false;
        for id in 3..=8 {
            if sut.health_of("shard-0") == Some(ShardHealth::Draining) {
                seen_draining = true;
            }
            sut.issue_outcome(&query(id));
        }
        assert!(seen_draining, "rejoin must pass through Draining");
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Up));
        let kinds: Vec<String> = sink
            .snapshot()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::ShardEvent { shard, kind, .. } if shard == "shard-0" => {
                    Some(kind.clone())
                }
                _ => None,
            })
            .collect();
        for expect in ["down", "rejoin", "drained"] {
            assert!(kinds.contains(&expect.to_string()), "{kinds:?}");
        }
    }

    #[test]
    fn draining_shard_respects_the_warmup_cap() {
        // With warmup_cap = 0 a Draining shard is ineligible, so all
        // traffic goes to the healthy shard until the cap admits it.
        let alive = Arc::new(AtomicBool::new(false));
        let probe_alive = alive.clone();
        let sut = ShardedSut::new("fleet", BalancePolicy::LeastOutstanding)
            .with_endpoint(
                ShardEndpoint::new("shard-0", ToggleSut::healthy("a"))
                    .with_probe(Arc::new(move || probe_alive.load(Ordering::SeqCst))),
            )
            .with_endpoint(ShardEndpoint::new("shard-1", ToggleSut::healthy("b")))
            .with_config(ShardConfig {
                down_after: 2,
                warmup_cap: 0,
                warmup_queries: 1,
            });
        sut.issue_outcome(&query(1));
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Down));
        alive.store(true, Ordering::SeqCst);
        let routed_before = sut.status()[0].routed;
        for id in 2..=6 {
            sut.issue_outcome(&query(id));
        }
        assert_eq!(sut.health_of("shard-0"), Some(ShardHealth::Draining));
        assert_eq!(
            sut.status()[0].routed,
            routed_before,
            "a zero-cap Draining shard must receive no traffic"
        );
    }

    #[test]
    fn all_shards_failing_returns_structured_outcomes_not_a_hang() {
        let (a, break_a) = ToggleSut::switchable("a", false);
        let (b, break_b) = ToggleSut::switchable("b", true);
        let sut = ShardedSut::new("fleet", BalancePolicy::RoundRobin)
            .with_endpoint(ShardEndpoint::new("shard-0", a))
            .with_endpoint(ShardEndpoint::new("shard-1", b));
        break_a.store(true, Ordering::SeqCst);
        break_b.store(true, Ordering::SeqCst);
        // Both shards fail: each attempt is tried once, the last failure
        // surfaces (order here: shard-0 errored, then shard-1 vanished).
        assert_eq!(sut.issue_outcome(&query(1)), IssueOutcome::Vanished);
        // Once every shard is Down, the fleet reports Vanished outright.
        while sut.health_of("shard-0") != Some(ShardHealth::Down)
            || sut.health_of("shard-1") != Some(ShardHealth::Down)
        {
            sut.issue_outcome(&query(2));
        }
        assert_eq!(sut.issue_outcome(&query(3)), IssueOutcome::Vanished);
    }

    #[test]
    fn failover_completes_the_query_exactly_once() {
        let sink = Arc::new(RingBufferSink::unbounded());
        let (bad, broken) = ToggleSut::switchable("bad", false);
        let sut = ShardedSut::new("fleet", BalancePolicy::LeastOutstanding)
            .with_endpoint(ShardEndpoint::new("shard-0", bad))
            .with_endpoint(ShardEndpoint::new("shard-1", ToggleSut::healthy("ok")))
            .with_sink(sink.clone());
        broken.store(true, Ordering::SeqCst);
        let IssueOutcome::Completed(samples) = sut.issue_outcome(&query(7)) else {
            panic!("failover must rescue the query");
        };
        assert_eq!(samples.len(), 1);
        // Exactly one failover row and exactly two route rows for id 7.
        let rows: Vec<(String, String)> = sink
            .snapshot()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::ShardEvent {
                    shard,
                    kind,
                    query_id: 7,
                    ..
                } => Some((shard.clone(), kind.clone())),
                _ => None,
            })
            .collect();
        let routes = rows.iter().filter(|(_, k)| k == "route").count();
        let failovers = rows.iter().filter(|(_, k)| k == "failover").count();
        assert_eq!(routes, 2, "{rows:?}");
        assert_eq!(failovers, 1, "{rows:?}");
    }

    #[test]
    fn metrics_count_routes_and_failovers_per_shard() {
        let metrics = Arc::new(MetricsRegistry::new());
        let (bad, broken) = ToggleSut::switchable("bad", false);
        let sut = ShardedSut::new("fleet", BalancePolicy::LeastOutstanding)
            .with_endpoint(ShardEndpoint::new("shard-0", bad))
            .with_endpoint(ShardEndpoint::new("shard-1", ToggleSut::healthy("ok")))
            .with_metrics(metrics.clone());
        broken.store(true, Ordering::SeqCst);
        sut.issue_outcome(&query(1));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("shard_route_shard-0"), 1);
        assert_eq!(snap.counter("shard_route_shard-1"), 1);
        assert_eq!(snap.counter("shard_failover_shard-0"), 1);
        assert_eq!(snap.counter("shard_failover"), 1);
    }

    #[test]
    fn latency_ewma_prefers_the_faster_shard() {
        let fast = Arc::new(mlperf_loadgen::sut::SleepSut::new(
            "fast",
            std::time::Duration::from_micros(50),
        ));
        let slow = Arc::new(mlperf_loadgen::sut::SleepSut::new(
            "slow",
            std::time::Duration::from_millis(3),
        ));
        let sut = ShardedSut::new("fleet", BalancePolicy::LatencyEwma)
            .with_endpoint(ShardEndpoint::new("shard-0", slow))
            .with_endpoint(ShardEndpoint::new("shard-1", fast));
        for id in 1..=20 {
            sut.issue_outcome(&query(id));
        }
        let status = sut.status();
        // Both get probed while unmeasured; after that the fast shard
        // wins every pick.
        assert!(
            status[1].routed > status[0].routed * 3,
            "fast shard must dominate: {status:?}"
        );
    }
}

//! The simulated execution engine.

use crate::device::DeviceSpec;
use mlperf_loadgen::query::{Query, QueryCompletion, ResponsePayload, SampleCompletion};
use mlperf_loadgen::sut::{SimSut, SutReaction};
use mlperf_loadgen::time::Nanos;
use mlperf_models::Workload;
use mlperf_stats::Rng64;
use mlperf_trace::{profile_span, MetricsRegistry, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::Arc;

/// Produces a per-sample accuracy payload (see
/// [`crate::proxy_sut`] for proxy-backed providers).
pub type PayloadFn = Arc<dyn Fn(usize) -> ResponsePayload + Send + Sync>;

/// Per-query response-handling cost paid by the online (batched) path:
/// every server query gets its own completion callback, while an offline
/// run answers one giant query for the whole data set. This keeps server
/// throughput strictly below offline even on devices that saturate at the
/// server's feasible batch size.
const RESPONSE_HANDLING: Nanos = Nanos::from_micros(2);

/// How the engine forms batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Execute each query on arrival, chunked to the device's `max_batch`.
    /// The right policy for single-stream, multistream, and offline.
    Immediate,
    /// Accumulate queries until `max_batch` samples are queued or the
    /// oldest query has waited `timeout` — the server-scenario dynamic
    /// batcher. "Most inference systems require a minimum batch size to
    /// fully utilize the underlying computational resources ... so they
    /// must optimize for tail latency and potentially process inferences
    /// with a suboptimal batch size" (Section III-C). `max_batch` is the
    /// *policy* target (chosen to fit the latency budget), bounded by the
    /// device's memory limit.
    DynamicBatch {
        /// Longest a query may wait for batch-mates.
        timeout: Nanos,
        /// Samples per dispatched batch.
        max_batch: usize,
    },
}

#[derive(Debug, Clone)]
struct Pending {
    query_id: u64,
    tenant: u32,
    arrival: Nanos,
    samples: Vec<(u64, usize)>,
}

/// A [`SimSut`] over a [`DeviceSpec`] and a task [`Workload`].
///
/// For variable-cost workloads (GNMT), a batch pays the *padded* cost —
/// `batch_size × max(sample cost)` — the way RNN batching pads to the
/// longest sequence. With [`DeviceSut::with_length_sorting`] the engine
/// sorts each query's samples by cost before chunking, an "arbitrary data
/// arrangement" legal under the rules and effective only when all the data
/// is available up front (offline); the FIFO dynamic batcher cannot sort,
/// which is precisely why NMT loses the most throughput in the server
/// scenario (Figure 6, Section VI-B).
pub struct DeviceSut {
    spec: DeviceSpec,
    workloads: Vec<Workload>,
    policy: BatchPolicy,
    length_sorting: bool,
    payloads: Option<PayloadFn>,
    seed: u64,
    rng: Rng64,
    busy_until: Vec<Nanos>,
    queue: VecDeque<Pending>,
    queued_samples: usize,
    mean_ops: Vec<f64>,
    armed_wakeup: Option<Nanos>,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    last_dvfs_milli: Vec<Option<u32>>,
}

impl std::fmt::Debug for DeviceSut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSut")
            .field("spec", &self.spec)
            .field("policy", &self.policy)
            .field("queue_len", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl DeviceSut {
    /// Creates an engine for `spec` running `workload` under `policy`.
    pub fn new(spec: DeviceSpec, workload: Workload, policy: BatchPolicy) -> Self {
        let seed = 0x5d5d_0001;
        let mean_ops = vec![workload.mean_ops(1_024)];
        Self {
            busy_until: vec![Nanos::ZERO; spec.units],
            last_dvfs_milli: vec![None; spec.units],
            rng: Rng64::new(seed),
            seed,
            spec,
            workloads: vec![workload],
            policy,
            length_sorting: false,
            payloads: None,
            queue: VecDeque::new(),
            queued_samples: 0,
            mean_ops,
            armed_wakeup: None,
            trace: None,
            metrics: None,
        }
    }

    /// Adds a further tenant's workload (multitenancy extension): queries
    /// tagged `tenant = n` use the `n`-th workload's per-sample costs, and
    /// the dynamic batcher never mixes tenants within one dispatch.
    pub fn with_tenant_workload(mut self, workload: Workload) -> Self {
        self.mean_ops.push(workload.mean_ops(1_024));
        self.workloads.push(workload);
        self
    }

    fn workload_for(&self, tenant: u32) -> &Workload {
        self.workloads
            .get(tenant as usize)
            .unwrap_or(&self.workloads[0])
    }

    /// Chunk size minimizing the estimated makespan of an `n`-sample query
    /// over the available units: small chunks parallelize a multistream
    /// query across accelerators; huge offline queries converge to full
    /// batches automatically.
    fn best_chunk(&self, tenant: u32, n: usize) -> usize {
        if n <= 1 {
            return 1;
        }
        let mean = self
            .mean_ops
            .get(tenant as usize)
            .copied()
            .unwrap_or(self.mean_ops[0]);
        let units = self.spec.units;
        let mut best = (f64::INFINITY, 1usize);
        let mut c = 1usize;
        while c <= self.spec.max_batch {
            let dispatches = n.div_ceil(c);
            let rounds = dispatches.div_ceil(units);
            let span = rounds as f64
                * self
                    .spec
                    .batch1_latency(mean * c.min(n) as f64)
                    .as_secs_f64();
            if span < best.0 {
                best = (span, c);
            }
            if c == self.spec.max_batch {
                break;
            }
            c = (c * 2).min(self.spec.max_batch);
        }
        best.1
    }

    /// Enables sorting a query's samples by cost before chunking (offline
    /// optimization; no effect on fixed-cost workloads).
    pub fn with_length_sorting(mut self) -> Self {
        self.length_sorting = true;
        self
    }

    /// Attaches an accuracy-payload provider.
    pub fn with_payloads(mut self, payloads: PayloadFn) -> Self {
        self.payloads = Some(payloads);
        self
    }

    /// Attaches a trace sink: every dispatch emits a
    /// [`TraceEvent::BatchFormed`] on its execution unit's timeline, and a
    /// [`TraceEvent::DvfsStateChange`] whenever a unit's thermal throughput
    /// multiplier (quantized to 1/1000ths) moves — the device-side half of
    /// the detail log.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attaches a metrics registry: every dispatch bumps `batches_formed`
    /// and `batched_samples`, observes `batch_service_ns`, and mirrors the
    /// most recent thermal multiplier into the `dvfs_multiplier_milli`
    /// gauge. Share the registry with the LoadGen run (via
    /// `Instruments::with_metrics`) and a time-series sampler sees device
    /// state alongside query state.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Overrides the jitter RNG seed (distinct fleet systems use distinct
    /// seeds so their jitter is uncorrelated).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rng = Rng64::new(seed);
        self
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn payload(&self, index: usize) -> ResponsePayload {
        match &self.payloads {
            Some(f) => f(index),
            None => ResponsePayload::Empty,
        }
    }

    /// Earliest-free execution unit.
    fn pick_unit(&self) -> usize {
        self.busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one unit")
    }

    /// Dispatches `count` samples with a given padded/summed cost on the
    /// best unit; returns the finish time.
    fn dispatch_batch(&mut self, now: Nanos, ops: f64, count: usize) -> Nanos {
        self.dispatch_batch_taxed(now, ops, count, Nanos::ZERO)
    }

    /// [`DeviceSut::dispatch_batch`] plus a fixed extra occupancy (the
    /// online path's per-query response handling).
    fn dispatch_batch_taxed(&mut self, now: Nanos, ops: f64, count: usize, tax: Nanos) -> Nanos {
        profile_span!("sut/dispatch_batch");
        let unit = self.pick_unit();
        let start = now.max(self.busy_until[unit]);
        let service = self.spec.service_time(ops, count, start, &mut self.rng);
        let finish = start + service + tax;
        self.busy_until[unit] = finish;
        let sink_enabled = self.trace.as_deref().is_some_and(|s| s.enabled());
        if sink_enabled || self.metrics.is_some() {
            if let Some(thermal) = self.spec.thermal {
                let milli = (thermal.multiplier(start) * 1_000.0).round() as u32;
                if let Some(m) = self.metrics.as_deref() {
                    m.set_gauge("dvfs_multiplier_milli", f64::from(milli));
                }
                if sink_enabled && self.last_dvfs_milli[unit] != Some(milli) {
                    self.last_dvfs_milli[unit] = Some(milli);
                    self.trace.as_deref().expect("sink_enabled").record(
                        start.as_nanos(),
                        &TraceEvent::DvfsStateChange {
                            unit,
                            multiplier_milli: milli,
                        },
                    );
                }
            }
            if let Some(m) = self.metrics.as_deref() {
                m.incr("batches_formed", 1);
                m.incr("batched_samples", count as u64);
                m.observe("batch_service_ns", (service + tax).as_nanos());
            }
            if sink_enabled {
                self.trace.as_deref().expect("sink_enabled").record(
                    start.as_nanos(),
                    &TraceEvent::BatchFormed {
                        unit,
                        batch_size: count,
                        service_ns: (service + tax).as_nanos(),
                    },
                );
            }
        }
        finish
    }

    /// Cost of a chunk of sample indices, with padding for variable loads.
    fn chunk_ops(&self, tenant: u32, indices: &[usize]) -> f64 {
        let workload = self.workload_for(tenant);
        if workload.is_variable() {
            let max = indices
                .iter()
                .map(|i| workload.ops_for_sample(*i))
                .fold(0.0f64, f64::max);
            max * indices.len() as f64
        } else {
            indices.iter().map(|i| workload.ops_for_sample(*i)).sum()
        }
    }

    /// Runs a whole query immediately, chunked across units.
    fn run_immediate(&mut self, now: Nanos, query: &Query) -> QueryCompletion {
        profile_span!("sut/run_immediate");
        let mut order: Vec<usize> = (0..query.samples.len()).collect();
        let workload = self.workload_for(query.tenant);
        if self.length_sorting && workload.is_variable() {
            order.sort_by(|a, b| {
                let ca = workload.ops_for_sample(query.samples[*a].index);
                let cb = workload.ops_for_sample(query.samples[*b].index);
                ca.partial_cmp(&cb).expect("finite costs")
            });
        }
        let mut finish = now;
        let chunk_size = self.best_chunk(query.tenant, order.len());
        for chunk in order.chunks(chunk_size) {
            let indices: Vec<usize> = chunk.iter().map(|i| query.samples[*i].index).collect();
            let ops = self.chunk_ops(query.tenant, &indices);
            let done = self.dispatch_batch(now, ops, indices.len());
            finish = finish.max(done);
        }
        QueryCompletion::ok(
            query.id,
            finish,
            query
                .samples
                .iter()
                .map(|s| SampleCompletion {
                    sample_id: s.id,
                    payload: self.payload(s.index),
                })
                .collect(),
        )
    }

    /// Drains full batches (and, when `force_due`, everything whose timeout
    /// has expired); returns completions and the next wakeup needed.
    fn drain_queue(
        &mut self,
        now: Nanos,
        timeout: Nanos,
        target_batch: usize,
        force_due: bool,
    ) -> SutReaction {
        profile_span!("sut/drain_queue");
        let target_batch = target_batch.min(self.spec.max_batch).max(1);
        let mut reaction = SutReaction::none();
        loop {
            let full = self.queued_samples >= target_batch;
            let due = force_due
                && self
                    .queue
                    .front()
                    .is_some_and(|p| p.arrival + timeout <= now);
            if !(full || due) {
                break;
            }
            // Pop queries until max_batch samples are gathered; never mix
            // tenants (models) within one dispatch.
            let mut batch: Vec<Pending> = Vec::new();
            let mut samples = 0usize;
            let batch_tenant = self.queue.front().map(|p| p.tenant);
            while let Some(front) = self.queue.front() {
                let next = front.samples.len();
                if !batch.is_empty()
                    && (samples + next > target_batch || Some(front.tenant) != batch_tenant)
                {
                    break;
                }
                samples += next;
                self.queued_samples -= next;
                batch.push(self.queue.pop_front().expect("front exists"));
                if samples >= target_batch {
                    break;
                }
            }
            let indices: Vec<usize> = batch
                .iter()
                .flat_map(|p| p.samples.iter().map(|(_, idx)| *idx))
                .collect();
            let ops = self.chunk_ops(batch_tenant.unwrap_or(0), &indices);
            // Per-query response handling (see RESPONSE_HANDLING).
            let tax = RESPONSE_HANDLING.mul(batch.len() as u64);
            let finish = self.dispatch_batch_taxed(now, ops, indices.len(), tax);
            for pending in batch {
                reaction.completions.push(QueryCompletion::ok(
                    pending.query_id,
                    finish,
                    pending
                        .samples
                        .iter()
                        .map(|(sid, idx)| SampleCompletion {
                            sample_id: *sid,
                            payload: self.payload(*idx),
                        })
                        .collect(),
                ));
            }
        }
        if let Some(front) = self.queue.front() {
            let needed = (front.arrival + timeout).max(now);
            // Deduplicate: re-requesting a wakeup on every drain floods the
            // event queue at overload (each firing re-arms, lineages
            // multiply). Only emit when no armed wakeup already covers the
            // needed time.
            let covered = self
                .armed_wakeup
                .is_some_and(|armed| armed >= now && armed <= needed);
            if !covered {
                self.armed_wakeup = Some(needed);
                reaction.wakeup_at = Some(needed);
            }
        }
        reaction
    }
}

impl SimSut for DeviceSut {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn on_query(&mut self, now: Nanos, query: &Query) -> SutReaction {
        match self.policy {
            BatchPolicy::Immediate => SutReaction::complete(self.run_immediate(now, query)),
            BatchPolicy::DynamicBatch { timeout, max_batch } => {
                self.queued_samples += query.samples.len();
                self.queue.push_back(Pending {
                    query_id: query.id,
                    tenant: query.tenant,
                    arrival: now,
                    samples: query.samples.iter().map(|s| (s.id, s.index)).collect(),
                });
                self.drain_queue(now, timeout, max_batch, false)
            }
        }
    }

    fn on_wakeup(&mut self, now: Nanos) -> SutReaction {
        if self.armed_wakeup.is_some_and(|armed| armed <= now) {
            self.armed_wakeup = None;
        }
        match self.policy {
            BatchPolicy::Immediate => SutReaction::none(),
            BatchPolicy::DynamicBatch { timeout, max_batch } => {
                self.drain_queue(now, timeout, max_batch, true)
            }
        }
    }

    fn reset(&mut self) {
        self.busy_until = vec![Nanos::ZERO; self.spec.units];
        self.last_dvfs_milli = vec![None; self.spec.units];
        self.queue.clear();
        self.queued_samples = 0;
        self.armed_wakeup = None;
        self.rng = Rng64::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Architecture;
    use mlperf_loadgen::config::TestSettings;
    use mlperf_loadgen::des::run_simulated;
    use mlperf_loadgen::qsl::MemoryQsl;
    use mlperf_loadgen::query::QuerySample;
    use mlperf_loadgen::results::ScenarioMetric;
    use mlperf_models::TaskId;

    fn spec(units: usize, max_batch: usize) -> DeviceSpec {
        DeviceSpec::new(
            "engine-test",
            Architecture::Gpu,
            100.0,
            2.0,
            max_batch,
            units,
            Nanos::from_micros(50),
        )
    }

    fn query(id: u64, n: usize) -> Query {
        Query {
            id,
            samples: (0..n)
                .map(|i| QuerySample {
                    id: id * 1000 + i as u64,
                    index: i,
                })
                .collect(),
            scheduled_at: Nanos::ZERO,
            tenant: 0,
        }
    }

    #[test]
    fn immediate_single_sample() {
        let mut sut = DeviceSut::new(
            spec(1, 8),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::Immediate,
        );
        let r = sut.on_query(Nanos::ZERO, &query(0, 1));
        assert_eq!(r.completions.len(), 1);
        assert!(r.completions[0].finished_at > Nanos::ZERO);
        assert!(r.wakeup_at.is_none());
    }

    #[test]
    fn immediate_chunks_across_units() {
        // 2 units, max batch 4: an 8-sample query splits into 2 parallel
        // chunks and finishes in about half the single-unit time.
        let single = {
            let mut sut = DeviceSut::new(
                spec(1, 4),
                Workload::new(TaskId::ImageClassificationHeavy),
                BatchPolicy::Immediate,
            );
            sut.on_query(Nanos::ZERO, &query(0, 8)).completions[0].finished_at
        };
        let dual = {
            let mut sut = DeviceSut::new(
                spec(2, 4),
                Workload::new(TaskId::ImageClassificationHeavy),
                BatchPolicy::Immediate,
            );
            sut.on_query(Nanos::ZERO, &query(0, 8)).completions[0].finished_at
        };
        assert!(
            dual.as_nanos() * 10 < single.as_nanos() * 7,
            "parallel {dual} vs serial {single}"
        );
    }

    #[test]
    fn dynamic_batcher_waits_for_timeout() {
        let mut sut = DeviceSut::new(
            spec(1, 8),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::DynamicBatch {
                timeout: Nanos::from_millis(2),
                max_batch: 8,
            },
        );
        // One query: no completion yet, wakeup armed at arrival+timeout.
        let r = sut.on_query(Nanos::from_millis(1), &query(0, 1));
        assert!(r.completions.is_empty());
        assert_eq!(r.wakeup_at, Some(Nanos::from_millis(3)));
        // Spurious early wakeup: nothing dispatches and no *new* wakeup is
        // emitted — the 3 ms one armed at arrival is still pending.
        let r = sut.on_wakeup(Nanos::from_millis(2));
        assert!(r.completions.is_empty());
        assert_eq!(r.wakeup_at, None);
        // Due wakeup: dispatches.
        let r = sut.on_wakeup(Nanos::from_millis(3));
        assert_eq!(r.completions.len(), 1);
        assert!(r.wakeup_at.is_none());
    }

    #[test]
    fn dynamic_batcher_dispatches_on_full_batch() {
        let mut sut = DeviceSut::new(
            spec(1, 4),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::DynamicBatch {
                timeout: Nanos::from_millis(100),
                max_batch: 4,
            },
        );
        for i in 0..3 {
            let r = sut.on_query(Nanos::from_micros(i), &query(i, 1));
            assert!(r.completions.is_empty(), "batch not full yet");
        }
        let r = sut.on_query(Nanos::from_micros(3), &query(3, 1));
        assert_eq!(r.completions.len(), 4, "full batch dispatches immediately");
        // All four complete at the same time (one batch).
        let t = r.completions[0].finished_at;
        assert!(r.completions.iter().all(|c| c.finished_at == t));
    }

    #[test]
    fn batched_dispatch_is_cheaper_per_sample() {
        // 4 singles dispatched separately vs one batch of 4.
        let w = Workload::new(TaskId::ImageClassificationHeavy);
        let mut serial = DeviceSut::new(spec(1, 4), w.clone(), BatchPolicy::Immediate);
        let mut t_serial = Nanos::ZERO;
        for i in 0..4 {
            t_serial = serial.on_query(Nanos::ZERO, &query(i, 1)).completions[0].finished_at;
        }
        let mut batched = DeviceSut::new(spec(1, 4), w, BatchPolicy::Immediate);
        let t_batch = batched.on_query(Nanos::ZERO, &query(0, 4)).completions[0].finished_at;
        assert!(t_batch < t_serial, "{t_batch} vs {t_serial}");
    }

    #[test]
    fn variable_workload_pays_padding_unless_sorted() {
        let w = Workload::new(TaskId::MachineTranslation);
        let q = query(0, 64);
        let unsorted = DeviceSut::new(spec(1, 8), w.clone(), BatchPolicy::Immediate)
            .on_query(Nanos::ZERO, &q)
            .completions[0]
            .finished_at;
        let sorted = DeviceSut::new(spec(1, 8), w, BatchPolicy::Immediate)
            .with_length_sorting()
            .on_query(Nanos::ZERO, &q)
            .completions[0]
            .finished_at;
        assert!(
            sorted < unsorted,
            "length sorting should reduce padding: {sorted} vs {unsorted}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut sut = DeviceSut::new(
            spec(1, 8),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::Immediate,
        )
        .with_seed(7);
        let t1 = sut.on_query(Nanos::ZERO, &query(0, 4)).completions[0].finished_at;
        sut.reset();
        let t2 = sut.on_query(Nanos::ZERO, &query(0, 4)).completions[0].finished_at;
        assert_eq!(t1, t2);
    }

    #[test]
    fn trace_sink_sees_batches_and_dvfs_changes() {
        use crate::device::ThermalModel;
        use mlperf_trace::RingBufferSink;
        let sink = Arc::new(RingBufferSink::unbounded());
        let spec = spec(1, 8).with_thermal(ThermalModel {
            boost: 1.5,
            decay_secs: 1.0,
        });
        let mut sut = DeviceSut::new(
            spec,
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::Immediate,
        )
        .with_trace(sink.clone());
        // Three dispatches spread over decaying-boost time: one BatchFormed
        // each, and a DvfsStateChange whenever the quantized multiplier moves.
        for (i, at) in [Nanos::ZERO, Nanos::from_secs(1), Nanos::from_secs(2)]
            .into_iter()
            .enumerate()
        {
            sut.on_query(at, &query(i as u64, 4));
        }
        let records = sink.snapshot();
        let batches: Vec<_> = records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::BatchFormed {
                    batch_size,
                    service_ns,
                    unit,
                } => Some((*unit, *batch_size, *service_ns, r.ts_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(batches.len(), 3);
        for (unit, batch_size, service_ns, _) in &batches {
            assert_eq!(*unit, 0);
            assert_eq!(*batch_size, 4);
            assert!(*service_ns > 0);
        }
        let dvfs: Vec<u32> = records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::DvfsStateChange {
                    multiplier_milli, ..
                } => Some(*multiplier_milli),
                _ => None,
            })
            .collect();
        assert!(
            dvfs.len() >= 2,
            "boost decay across seconds must change the quantized multiplier"
        );
        assert_eq!(dvfs[0], 1_500, "cold start emits the full boost");
        assert!(
            dvfs.windows(2).all(|w| w[0] != w[1]),
            "only changes are emitted"
        );
    }

    #[test]
    fn trace_sink_silent_without_thermal_model_dvfs() {
        use mlperf_trace::RingBufferSink;
        let sink = Arc::new(RingBufferSink::unbounded());
        let mut sut = DeviceSut::new(
            spec(2, 8),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::Immediate,
        )
        .with_trace(sink.clone());
        sut.on_query(Nanos::ZERO, &query(0, 2));
        let records = sink.snapshot();
        assert!(records
            .iter()
            .all(|r| matches!(r.event, TraceEvent::BatchFormed { .. })));
        assert!(!records.is_empty());
    }

    #[test]
    fn full_single_stream_run_through_loadgen() {
        let settings = TestSettings::single_stream()
            .with_min_query_count(100)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let mut sut = DeviceSut::new(
            spec(1, 8),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::Immediate,
        );
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
    }

    #[test]
    fn overloaded_server_run_terminates_within_event_budget() {
        // Regression: wakeup storms at overload once exhausted the DES
        // event budget (each drain re-armed a wakeup; lineages multiplied).
        // An over-capacity run must complete and simply be INVALID.
        let slow = DeviceSpec::new(
            "overloaded",
            Architecture::Gpu,
            200.0,
            2.0,
            32,
            1,
            Nanos::from_micros(100),
        );
        let mut sut = DeviceSut::new(
            slow,
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::DynamicBatch {
                timeout: Nanos::from_millis(2),
                max_batch: 32,
            },
        );
        // ~176 sps capacity, hammered at 5,000 qps for 2 simulated seconds.
        let settings = TestSettings::server(5_000.0, Nanos::from_millis(10))
            .with_min_query_count(64)
            .with_min_duration(Nanos::from_secs(2));
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let out = run_simulated(&settings, &mut qsl, &mut sut)
            .expect("overload must terminate, not exhaust the event budget");
        assert!(!out.result.is_valid());
    }

    #[test]
    fn full_server_run_with_dynamic_batching() {
        // 2000 GOPS at full batch runs MobileNet in ~0.57 ms/sample; 1000
        // Poisson qps with a 2 ms batching timeout sits at ~60% utilization,
        // comfortably inside the 15 ms p99 bound.
        let settings = TestSettings::server(1_000.0, Nanos::from_millis(15))
            .with_min_query_count(2_000)
            .with_min_duration(Nanos::from_millis(1));
        let mut qsl = MemoryQsl::new("q", 64, 64);
        let fast = DeviceSpec::new(
            "engine-test-fast",
            Architecture::Gpu,
            2_000.0,
            2.0,
            16,
            1,
            Nanos::from_micros(50),
        );
        let mut sut = DeviceSut::new(
            fast,
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::DynamicBatch {
                timeout: Nanos::from_millis(2),
                max_batch: 16,
            },
        );
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out.result.is_valid(), "{:?}", out.result.validity);
        match out.result.metric {
            ScenarioMetric::Server {
                overlatency_fraction,
                ..
            } => {
                assert!(overlatency_fraction <= 0.01);
            }
            ref m => panic!("wrong metric {m:?}"),
        }
    }
}

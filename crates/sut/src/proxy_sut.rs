//! Proxy-backed SUTs: simulated timing, real predictions.
//!
//! Accuracy mode and the audit tests need SUTs whose responses can be
//! scored. These constructors wire a [`DeviceSut`] to a proxy model so each
//! completed sample carries a genuine payload (class, boxes, or tokens) at
//! the chosen precision.

use crate::device::DeviceSpec;
use crate::engine::{BatchPolicy, DeviceSut};
use mlperf_loadgen::query::ResponsePayload;
use mlperf_models::proxy::{ClassifierProxy, DetectorProxy, Precision, TranslatorProxy};
use mlperf_models::Workload;
use std::sync::Arc;

/// A device SUT answering with a classifier proxy's predictions.
pub fn classifier_sut(
    spec: DeviceSpec,
    proxy: Arc<ClassifierProxy>,
    precision: Precision,
    policy: BatchPolicy,
) -> DeviceSut {
    let task = proxy.task();
    let len = proxy.len();
    DeviceSut::new(spec, Workload::new(task), policy).with_payloads(Arc::new(move |index| {
        ResponsePayload::Class(proxy.predict(precision, index % len))
    }))
}

/// A device SUT answering with a detector proxy's boxes.
pub fn detector_sut(
    spec: DeviceSpec,
    proxy: Arc<DetectorProxy>,
    precision: Precision,
    policy: BatchPolicy,
) -> DeviceSut {
    let task = proxy.task();
    let len = proxy.len();
    DeviceSut::new(spec, Workload::new(task), policy).with_payloads(Arc::new(move |index| {
        let boxes = proxy
            .detect(precision, index % len)
            .into_iter()
            .map(|d| {
                (
                    d.class,
                    d.score,
                    [d.bbox.x1, d.bbox.y1, d.bbox.x2, d.bbox.y2],
                )
            })
            .collect();
        ResponsePayload::Boxes(boxes)
    }))
}

/// A device SUT answering with a translator proxy's decodes.
pub fn translator_sut(
    spec: DeviceSpec,
    proxy: Arc<TranslatorProxy>,
    precision: Precision,
    policy: BatchPolicy,
) -> DeviceSut {
    let task = proxy.task();
    let len = proxy.len();
    DeviceSut::new(spec, Workload::new(task), policy).with_payloads(Arc::new(move |index| {
        ResponsePayload::Tokens(proxy.translate(precision, index % len))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Architecture;
    use mlperf_loadgen::config::{TestMode, TestSettings};
    use mlperf_loadgen::des::run_simulated;
    use mlperf_loadgen::qsl::MemoryQsl;
    use mlperf_loadgen::time::Nanos;
    use mlperf_models::TaskId;

    fn spec() -> DeviceSpec {
        DeviceSpec::new(
            "proxy-dev",
            Architecture::Cpu,
            100.0,
            0.5,
            8,
            1,
            Nanos::from_micros(100),
        )
    }

    #[test]
    fn classifier_accuracy_run_scores_close_to_direct_evaluation() {
        let proxy = Arc::new(ClassifierProxy::new(
            TaskId::ImageClassificationLight,
            80,
            11,
        ));
        let mut sut = classifier_sut(
            spec(),
            Arc::clone(&proxy),
            Precision::Fp32,
            BatchPolicy::Immediate,
        );
        let settings = TestSettings::offline().with_mode(TestMode::AccuracyOnly);
        let mut qsl = MemoryQsl::new("imagenet-syn", 80, 80);
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert_eq!(out.accuracy_log.len(), 80);
        // Score the logged payloads with the accuracy script path.
        let mut preds = vec![0usize; 80];
        for entry in &out.accuracy_log {
            match entry.payload {
                ResponsePayload::Class(c) => preds[entry.sample_index] = c,
                ref other => panic!("unexpected payload {other:?}"),
            }
        }
        let logged_acc = proxy.score(&preds);
        assert_eq!(logged_acc, proxy.accuracy(Precision::Fp32));
    }

    #[test]
    fn detector_payloads_are_boxes() {
        let proxy = Arc::new(DetectorProxy::new(TaskId::ObjectDetectionLight, 20, 12));
        let mut sut = detector_sut(spec(), proxy, Precision::Quantized, BatchPolicy::Immediate);
        let settings = TestSettings::offline().with_mode(TestMode::AccuracyOnly);
        let mut qsl = MemoryQsl::new("coco-syn", 20, 20);
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out
            .accuracy_log
            .iter()
            .all(|l| matches!(l.payload, ResponsePayload::Boxes(_))));
    }

    #[test]
    fn translator_payloads_are_tokens() {
        let proxy = Arc::new(TranslatorProxy::new(16, 13));
        let mut sut = translator_sut(spec(), proxy, Precision::Fp32, BatchPolicy::Immediate);
        let settings = TestSettings::offline().with_mode(TestMode::AccuracyOnly);
        let mut qsl = MemoryQsl::new("wmt-syn", 16, 16);
        let out = run_simulated(&settings, &mut qsl, &mut sut).unwrap();
        assert!(out
            .accuracy_log
            .iter()
            .all(|l| matches!(l.payload, ResponsePayload::Tokens(_))));
    }
}
